"""Tests for the gym reference agents."""

import pytest

from repro.analysis import CloudGym, public_subnet_task, running_instance_task
from repro.analysis.agents import (
    DecoderGuidedAgent,
    forgetful_instance_plan,
    PlanStep,
    public_subnet_plan,
    ScriptedAgent,
)
from repro.core import build_learned_emulator


@pytest.fixture(scope="module")
def build():
    return build_learned_emulator("ec2", seed=7)


class TestScriptedAgent:
    def test_solves_public_subnet(self, build):
        gym = CloudGym(emulator=build.make_backend(),
                       task=public_subnet_task())
        result = ScriptedAgent(public_subnet_plan()).run(gym)
        assert result.solved
        assert result.steps_used == len(public_subnet_plan())
        assert result.total_reward > 0.9

    def test_broken_plan_does_not_solve(self, build):
        plan = public_subnet_plan()[:-1]  # forget the gateway attach
        gym = CloudGym(emulator=build.make_backend(),
                       task=public_subnet_task())
        result = ScriptedAgent(plan).run(gym)
        assert not result.solved


class TestDecoderGuidedAgent:
    def test_recovers_from_state_precondition(self, build):
        """The plan resizes a running instance; the decoder names
        StopInstances as the driver and the agent retries."""
        gym = CloudGym(emulator=build.make_backend(),
                       task=running_instance_task())
        agent = DecoderGuidedAgent(forgetful_instance_plan())
        result = agent.run(gym)
        assert result.solved
        assert result.recoveries >= 1
        apis = [api for api, __ in result.transcript]
        assert "StopInstances" in apis  # learned from the error

    def test_scripted_agent_leaves_the_resize_undone(self, build):
        """Without recovery the resize step just fails: the instance
        stays t2.micro and the transcript records the failures."""
        gym = CloudGym(emulator=build.make_backend(),
                       task=running_instance_task())
        result = ScriptedAgent(forgetful_instance_plan()).run(gym)
        assert ("ModifyInstanceAttribute", False) in result.transcript
        instances = gym.observe()["instance"]
        assert instances[0]["instance_type"] == "t2.micro"

    def test_decoder_agent_completes_the_resize(self, build):
        gym = CloudGym(emulator=build.make_backend(),
                       task=running_instance_task())
        DecoderGuidedAgent(forgetful_instance_plan()).run(gym)
        instances = gym.observe()["instance"]
        assert instances[0]["instance_type"] == "m5.large"

    def test_recovery_factory_creates_missing_dependency(self, build):
        """A plan referencing a VPC that was never created recovers via
        the missing-resource factory."""
        plan = [
            PlanStep("CreateSubnet",
                     {"VpcId": "$vpc", "CidrBlock": "10.0.1.0/24"},
                     bind="subnet"),
            PlanStep("ModifySubnetAttribute",
                     {"SubnetId": "$subnet",
                      "MapPublicIpOnLaunch": True}),
            PlanStep("CreateInternetGateway", {}, bind="igw"),
            PlanStep("AttachInternetGateway",
                     {"InternetGatewayId": "$igw", "VpcId": "$vpc"}),
        ]
        factories = {
            "vpc": PlanStep("CreateVpc", {"CidrBlock": "10.0.0.0/16"},
                            bind="vpc"),
        }
        gym = CloudGym(emulator=build.make_backend(),
                       task=public_subnet_task())
        agent = DecoderGuidedAgent(plan, recovery_factories=factories)
        result = agent.run(gym)
        assert result.solved
        assert result.recoveries >= 1
