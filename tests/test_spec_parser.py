"""Tests for the SM spec lexer and parser against the paper's example."""

import pytest

from repro.spec import (
    Assert,
    Call,
    Compare,
    If,
    Name,
    Not,
    parse_module,
    parse_sm,
    Read,
    SelfRef,
    serialize_sm,
    SpecSyntaxError,
    Truthy,
    Write,
)

PAPER_EXAMPLE = """
SM public_ip {
  States status: enum, zone: str, NIC: SM
    Transitions {
      CreatePublicIP(arg); //Creates PublicIP
      AssociateNIC(arg); //attach with a NIC
      DestroyPublicIP(); } //unassign
    CreatePublicIP(region: str) {
      write(status, ASSIGNED);
      write(zone, region); }
    AssociateNIC(nic_ref: SM) {
      assert(zone == nic_ref.zone);
      call(nic_ref.AttachPublicIP(self));
      write(NIC, nic_ref); }
    DestroyPublicIP() {
      assert(!NIC);
      write(status, IDLE); } }
"""


class TestPaperExample:
    """The Fig. 1-style spec from §3 parses with its intended structure."""

    def test_parses(self):
        spec = parse_sm(PAPER_EXAMPLE)
        assert spec.name == "public_ip"

    def test_states(self):
        spec = parse_sm(PAPER_EXAMPLE)
        assert spec.state_names() == ["status", "zone", "NIC"]
        assert spec.state_type("status").kind == "enum"
        assert spec.state_type("zone").kind == "str"
        assert spec.state_type("NIC").kind == "sm"

    def test_transitions_defined_after_block_override_stubs(self):
        spec = parse_sm(PAPER_EXAMPLE)
        assert set(spec.transitions) == {
            "CreatePublicIP",
            "AssociateNIC",
            "DestroyPublicIP",
        }
        assert not any(t.is_stub for t in spec.transitions.values())

    def test_create_body(self):
        spec = parse_sm(PAPER_EXAMPLE)
        body = spec.transitions["CreatePublicIP"].body
        assert isinstance(body[0], Write)
        assert body[0].state == "status"
        assert isinstance(body[0].value, Name)
        assert body[0].value.ident == "ASSIGNED"

    def test_associate_has_cross_sm_call_with_self(self):
        spec = parse_sm(PAPER_EXAMPLE)
        body = spec.transitions["AssociateNIC"].body
        assert isinstance(body[0], Assert)
        assert isinstance(body[0].pred, Compare)
        call = body[1]
        assert isinstance(call, Call)
        assert call.transition == "AttachPublicIP"
        assert isinstance(call.args[0], SelfRef)

    def test_destroy_asserts_no_nic(self):
        spec = parse_sm(PAPER_EXAMPLE)
        body = spec.transitions["DestroyPublicIP"].body
        assert isinstance(body[0], Assert)
        assert isinstance(body[0].pred, Not)
        assert isinstance(body[0].pred.pred, Truthy)

    def test_complexity_metric(self):
        spec = parse_sm(PAPER_EXAMPLE)
        assert spec.complexity == 3 + 3


class TestGrammarFeatures:
    def test_contained_in_hierarchy(self):
        spec = parse_sm(
            "SM subnet contained_in vpc { States cidr: str Transitions { } }"
        )
        assert spec.parent == "vpc"

    def test_enum_with_values_and_default(self):
        spec = parse_sm(
            "SM x { States state: enum(pending, available) = pending "
            "Transitions { } }"
        )
        decl = spec.states[0]
        assert decl.type.enum_values == ("pending", "available")
        assert decl.default is not None

    def test_typed_sm_reference(self):
        spec = parse_sm("SM x { States v: SM<vpc> Transitions { } }")
        assert spec.states[0].type.sm_name == "vpc"
        assert spec.referenced_sms() == {"vpc"}

    def test_error_code_annotation(self):
        spec = parse_sm(
            "SM x { States s: str Transitions { "
            'T() { assert(s == "a") : DependencyViolation("still attached"); } } }'
        )
        stmt = spec.transitions["T"].body[0]
        assert stmt.error_code == "DependencyViolation"
        assert stmt.message == "still attached"

    def test_dotted_error_code(self):
        spec = parse_sm(
            "SM x { States s: str Transitions { "
            "T() { assert(!s) : InvalidSubnet.Range; } } }"
        )
        assert spec.transitions["T"].body[0].error_code == "InvalidSubnet.Range"

    def test_if_else(self):
        spec = parse_sm(
            "SM x { States s: str Transitions { "
            'T(v: str) { if (v == "a") { write(s, v); } else { read(s, out); } } } }'
        )
        stmt = spec.transitions["T"].body[0]
        assert isinstance(stmt, If)
        assert isinstance(stmt.then[0], Write)
        assert isinstance(stmt.orelse[0], Read)

    def test_category_annotation(self):
        spec = parse_sm(
            "SM x { States s: str Transitions { @create T() { write(s, null); } } }"
        )
        assert spec.transitions["T"].category == "create"

    def test_unknown_category_rejected(self):
        with pytest.raises(SpecSyntaxError):
            parse_sm("SM x { States s: str Transitions { @banana T(); } }")

    def test_builtin_function_in_predicate(self):
        spec = parse_sm(
            "SM x { States cidr: str Transitions { "
            "T(c: str) { assert(valid_cidr(c) && prefix_len(c) <= 28) "
            ": InvalidSubnet.Range; write(cidr, c); } } }"
        )
        assert spec.transitions["T"].body[0].error_code == "InvalidSubnet.Range"

    def test_boolean_operators_precedence(self):
        spec = parse_sm(
            "SM x { States a: bool, b: bool, c: bool Transitions { "
            "T() { assert(a && b || c); } } }"
        )
        pred = spec.transitions["T"].body[0].pred
        # (a && b) || c
        assert type(pred).__name__ == "Or"

    def test_emit(self):
        spec = parse_sm(
            "SM x { States s: str Transitions { T() { emit(vpcId, id); } } }"
        )
        assert spec.transitions["T"].body[0].key == "vpcId"

    def test_multiple_sms_in_module(self):
        module = parse_module(
            "SM a { States s: str Transitions { } } "
            "SM b { States t: str Transitions { } }"
        )
        assert set(module.machines) == {"a", "b"}

    def test_transition_index_maps_api_to_sm(self):
        module = parse_module(
            "SM a { States s: str Transitions { MakeA(); } } "
            "SM b { States t: str Transitions { MakeB(); } }"
        )
        index = module.transition_index()
        assert index["MakeA"][0] == "a"
        assert index["MakeB"][0] == "b"


class TestSyntaxErrors:
    @pytest.mark.parametrize(
        "source",
        [
            "SM {",  # missing name
            "SM x { States s str Transitions { } }",  # missing colon
            "SM x { States s: str Transitions { T() { write(s); } } }",  # arity
            "SM x { States s: str Transitions { T() { frobnicate(s, 1); } } }",
            'SM x { States s: str Transitions { T() { write(s, "unterminated); } } }',
            "SM x { States s: wibble Transitions { } }",  # unknown type
            "SM x { States s: str Transitions { T() { call(s); } } }",  # bad call
        ],
    )
    def test_rejected(self, source):
        with pytest.raises(SpecSyntaxError):
            parse_sm(source)

    def test_error_carries_location(self):
        with pytest.raises(SpecSyntaxError) as exc_info:
            parse_sm("SM x {\n  States s str\n}")
        assert exc_info.value.line >= 2


class TestRoundTrip:
    def test_paper_example_round_trips(self):
        spec = parse_sm(PAPER_EXAMPLE)
        text = serialize_sm(spec)
        again = parse_sm(text)
        assert again.state_names() == spec.state_names()
        assert set(again.transitions) == set(spec.transitions)
        assert serialize_sm(again) == text
