"""Tests for dependency analysis, incremental extraction, linking and
consistency checks."""

import pytest

from repro.docs import build_catalog, render_docs, wrangle
from repro.extraction import (
    build_dependency_graph,
    extraction_order,
    graph_metrics,
    resource_references,
    run_checks,
    run_extraction,
    transitive_dependencies,
)
from repro.llm import make_llm
from repro.spec import ast


@pytest.fixture(scope="module")
def ec2_docs():
    catalog = build_catalog("ec2")
    return wrangle(render_docs(catalog), provider="aws", service="ec2")


@pytest.fixture(scope="module")
def nfw_docs():
    catalog = build_catalog("network_firewall")
    return wrangle(render_docs(catalog), provider="aws",
                   service="network_firewall")


class TestDependencyGraph:
    def test_subnet_depends_on_vpc(self, ec2_docs):
        subnet = ec2_docs.resource("subnet")
        assert "vpc" in resource_references(subnet)

    def test_extraction_order_builds_dependencies_first(self, ec2_docs):
        order = extraction_order(ec2_docs)
        assert order.index("vpc") < order.index("subnet")
        assert order.index("subnet") < order.index("instance")
        assert order.index("instance") < order.index("elastic_ip")
        assert set(order) == set(ec2_docs.resource_names())

    def test_transitive_dependencies(self, ec2_docs):
        deps = transitive_dependencies(ec2_docs, "instance")
        assert "subnet" in deps
        assert "vpc" in deps  # transitively, via subnet

    def test_graph_metrics(self, ec2_docs):
        metrics = graph_metrics(ec2_docs)
        assert metrics["nodes"] == 28
        assert metrics["edges"] > 10
        assert 0 < metrics["edge_density"] < 1

    def test_nfw_graph_smaller(self, ec2_docs, nfw_docs):
        assert graph_metrics(nfw_docs)["nodes"] < graph_metrics(
            ec2_docs
        )["nodes"]

    def test_cross_service_reference_marked_external(self, nfw_docs):
        graph = build_dependency_graph(nfw_docs)
        # The firewall's VPC lives in another service's documentation.
        assert "vpc" in graph
        assert graph.nodes["vpc"].get("external")


class TestPipelinePerfect:
    @pytest.fixture(scope="class")
    def outcome(self, ec2_docs):
        return run_extraction("ec2", mode="perfect", service_doc=ec2_docs)

    def test_all_resources_extracted(self, outcome, ec2_docs):
        assert set(outcome.module.machines) == set(
            ec2_docs.resource_names()
        )

    def test_no_violations(self, outcome):
        assert outcome.initial_violations == []
        assert outcome.remaining_violations == []
        assert outcome.validator_violations == []

    def test_helpers_patched(self, outcome):
        vpc = outcome.module.get("vpc")
        assert "_Track_subnet_cidrs" in vpc.transitions
        assert "_Untrack_subnet_cidrs" in vpc.transitions
        assert "_Track_gateways" in vpc.transitions

    def test_helpers_not_public(self, outcome):
        assert all(
            not name.startswith("_")
            for name in outcome.module.api_names()
        )
        emulator = outcome.build_emulator()
        direct = emulator.invoke("_Track_gateways", {"value": "x"})
        assert direct.error_code == "InvalidAction"

    def test_notfound_codes_collected(self, outcome):
        assert outcome.notfound_codes["vpc"] == "InvalidVpcID.NotFound"

    def test_no_stubs_remain(self, outcome):
        for spec in outcome.module.machines.values():
            assert not any(
                t.is_stub for t in spec.transitions.values()
            ), spec.name


class TestConsistencyChecks:
    def _module_with_fault(self, ec2_docs, mutate):
        outcome = run_extraction("ec2", mode="perfect",
                                 service_doc=ec2_docs,
                                 checks_enabled=False)
        mutate(outcome.module)
        return run_checks(outcome.module, ec2_docs)

    def test_clean_module_passes(self, ec2_docs):
        violations = self._module_with_fault(ec2_docs, lambda m: None)
        assert violations == []

    def test_describe_with_write_flagged(self, ec2_docs):
        def mutate(module):
            transition = module.get("vpc").transitions["DescribeVpcs"]
            transition.body = transition.body + (
                ast.Write("state", ast.Literal("corrupted")),
            )

        violations = self._module_with_fault(ec2_docs, mutate)
        assert any(v.check == "describe_readonly" for v in violations)

    def test_missing_documented_code_flagged(self, ec2_docs):
        def mutate(module):
            transition = module.get("subnet").transitions["CreateSubnet"]
            transition.body = tuple(
                stmt for stmt in transition.body
                if not (isinstance(stmt, ast.Assert)
                        and stmt.error_code == "InvalidSubnet.Conflict")
            )

        violations = self._module_with_fault(ec2_docs, mutate)
        assert any(
            v.check == "missing_error_code"
            and "InvalidSubnet.Conflict" in v.detail
            for v in violations
        )

    def test_undocumented_code_flagged(self, ec2_docs):
        def mutate(module):
            transition = module.get("vpc").transitions["DeleteVpc"]
            first = transition.body[0]
            from dataclasses import replace
            transition.body = (
                replace(first, error_code="MadeUpError"),
            ) + transition.body[1:]

        violations = self._module_with_fault(ec2_docs, mutate)
        assert any(
            v.check in ("undocumented_error_code", "missing_error_code")
            for v in violations
        )

    def test_missing_resource_flagged(self, ec2_docs):
        def mutate(module):
            del module.machines["subnet"]

        violations = self._module_with_fault(ec2_docs, mutate)
        kinds = {v.check for v in violations}
        assert "completeness" in kinds

    def test_dropped_duplicate_code_rule_slips_through(self, ec2_docs):
        """DeleteVpc has three DependencyViolation guards; dropping one
        leaves the code present, so the template checks cannot see it —
        the gap alignment exists to close (§4.3)."""
        def mutate(module):
            transition = module.get("vpc").transitions["DeleteVpc"]
            kept = []
            dropped = False
            for stmt in transition.body:
                if (
                    not dropped
                    and isinstance(stmt, ast.Assert)
                    and stmt.error_code == "DependencyViolation"
                ):
                    dropped = True
                    continue
                kept.append(stmt)
            transition.body = tuple(kept)

        violations = self._module_with_fault(ec2_docs, mutate)
        assert violations == []


class TestCorrectionLoop:
    def test_constrained_faults_get_corrected(self, ec2_docs):
        outcome = run_extraction("ec2", mode="constrained", seed=7,
                                 service_doc=ec2_docs)
        assert outcome.initial_violations  # faults were injected
        assert outcome.remaining_violations == []
        assert outcome.corrected_resources

    def test_checks_disabled_leaves_faults(self, ec2_docs):
        outcome = run_extraction("ec2", mode="constrained", seed=7,
                                 service_doc=ec2_docs,
                                 checks_enabled=False)
        violations = run_checks(outcome.module, ec2_docs)
        assert violations

    def test_reprompt_mode_reaches_same_module_shape(self, ec2_docs):
        llm = make_llm("reprompt", seed=7)
        outcome = run_extraction("ec2", llm=llm, service_doc=ec2_docs)
        assert len(outcome.module.machines) == 28
        assert outcome.total_llm_attempts > 28  # some re-prompting happened
