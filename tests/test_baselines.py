"""Tests for the handcrafted (Moto-like) and direct-to-code baselines."""

import pytest

from repro.baselines import build_d2c_emulator, build_moto_like
from repro.cloud import make_cloud
from repro.core import wrangled_docs
from repro.docs import inventory, moto_emulated


class TestMotoLike:
    @pytest.fixture
    def moto(self):
        return build_moto_like("ec2")

    def test_coverage_matches_table1(self):
        for service, expected in (
            ("ec2", 177), ("dynamodb", 39),
            ("network_firewall", 5), ("eks", 15),
        ):
            moto = build_moto_like(service)
            supported = sum(
                1 for name in inventory(service) if moto.supports(name)
            )
            assert supported == expected, service

    def test_uncovered_api_fails(self, moto):
        uncovered = next(
            name for name in inventory("ec2")
            if name not in moto_emulated("ec2")
        )
        assert moto.invoke(uncovered, {}).error_code == "InvalidAction"

    def test_nfw_has_create_but_not_delete_firewall(self):
        moto = build_moto_like("network_firewall")
        policy = moto.invoke("CreateFirewallPolicy", {"PolicyName": "p"})
        firewall = moto.invoke(
            "CreateFirewall",
            {"FirewallName": "f", "FirewallPolicyId": policy.data["id"]},
        )
        assert firewall.success
        delete = moto.invoke("DeleteFirewall",
                             {"FirewallId": firewall.data["id"]})
        assert delete.error_code == "InvalidAction"

    def test_delete_vpc_bug_reproduced(self, moto):
        """The §2 fidelity bug: the real cloud refuses, Moto deletes."""
        vpc = moto.invoke("CreateVpc", {"CidrBlock": "10.0.0.0/16"})
        igw = moto.invoke("CreateInternetGateway", {})
        attach = moto.invoke(
            "AttachInternetGateway",
            {"InternetGatewayId": igw.data["id"], "VpcId": vpc.data["id"]},
        )
        assert attach.success
        delete = moto.invoke("DeleteVpc", {"VpcId": vpc.data["id"]})
        assert delete.success  # the bug

        cloud = make_cloud("ec2")
        cloud_vpc = cloud.invoke("CreateVpc", {"CidrBlock": "10.0.0.0/16"})
        cloud_igw = cloud.invoke("CreateInternetGateway", {})
        cloud.invoke(
            "AttachInternetGateway",
            {"InternetGatewayId": cloud_igw.data["id"],
             "VpcId": cloud_vpc.data["id"]},
        )
        cloud_delete = cloud.invoke("DeleteVpc",
                                    {"VpcId": cloud_vpc.data["id"]})
        assert cloud_delete.error_code == "DependencyViolation"

    def test_basic_lifecycle_works(self, moto):
        vpc = moto.invoke("CreateVpc", {"CidrBlock": "10.0.0.0/16"})
        subnet = moto.invoke(
            "CreateSubnet",
            {"VpcId": vpc.data["id"], "CidrBlock": "10.0.1.0/24"},
        )
        modify = moto.invoke(
            "ModifySubnetAttribute",
            {"SubnetId": subnet.data["id"], "MapPublicIpOnLaunch": True},
        )
        assert modify.success
        described = moto.invoke("DescribeSubnets",
                                {"SubnetId": subnet.data["id"]})
        assert described.data["map_public_ip_on_launch"] is True

    def test_reset(self, moto):
        moto.invoke("CreateVpc", {"CidrBlock": "10.0.0.0/16"})
        moto.reset()
        assert moto.resources == {}


class TestD2C:
    @pytest.fixture(scope="class")
    def d2c(self):
        return build_d2c_emulator(wrangled_docs("ec2"), seed=7)

    def test_covers_every_documented_api(self, d2c):
        docs = wrangled_docs("ec2")
        for name in docs.api_names():
            assert d2c.supports(name), name

    def test_generates_inspectable_python(self, d2c):
        source = d2c.generated_source("CreateVpc")
        assert "def handler(cloud, params):" in source
        assert "cidrblock" in source
        compile(source, "<generated>", "exec")

    def test_happy_path_works(self, d2c):
        d2c.reset()
        vpc = d2c.invoke("CreateVpc", {"CidrBlock": "10.0.0.0/16"})
        assert vpc.success
        subnet = d2c.invoke(
            "CreateSubnet",
            {"VpcId": vpc.data["id"], "CidrBlock": "10.0.1.0/24"},
        )
        assert subnet.success

    def test_silent_success_on_start_running_instance(self, d2c):
        """§5 transition error: the expected IncorrectInstanceState is
        missing; D2C answers success."""
        d2c.reset()
        vpc = d2c.invoke("CreateVpc", {"CidrBlock": "10.0.0.0/16"})
        subnet = d2c.invoke(
            "CreateSubnet",
            {"VpcId": vpc.data["id"], "CidrBlock": "10.0.1.0/24"},
        )
        run = d2c.invoke(
            "RunInstances",
            {"SubnetId": subnet.data["id"], "ImageId": "ami-1",
             "InstanceType": "t2.micro"},
        )
        start = d2c.invoke("StartInstances",
                           {"InstanceId": run.data["id"]})
        assert start.success  # the cloud would fail

    def test_shallow_validation(self, d2c):
        """§5: simple CIDR conflicts are caught, the /29 prefix is not."""
        d2c.reset()
        vpc = d2c.invoke("CreateVpc", {"CidrBlock": "10.0.0.0/16"})
        slash29 = d2c.invoke(
            "CreateSubnet",
            {"VpcId": vpc.data["id"], "CidrBlock": "10.0.0.0/29"},
        )
        assert slash29.success  # invalid prefix admitted
        first = d2c.invoke(
            "CreateSubnet",
            {"VpcId": vpc.data["id"], "CidrBlock": "10.0.1.0/24"},
        )
        assert first.success
        duplicate = d2c.invoke(
            "CreateSubnet",
            {"VpcId": vpc.data["id"], "CidrBlock": "10.0.1.0/24"},
        )
        assert duplicate.error_code == "InvalidSubnet.Conflict"

    def test_missing_state_variables(self, d2c):
        """§5 state error: InstanceTenancy/CreditSpecification absent."""
        d2c.reset()
        vpc = d2c.invoke("CreateVpc", {"CidrBlock": "10.0.0.0/16"})
        subnet = d2c.invoke(
            "CreateSubnet",
            {"VpcId": vpc.data["id"], "CidrBlock": "10.0.1.0/24"},
        )
        run = d2c.invoke(
            "RunInstances",
            {"SubnetId": subnet.data["id"], "ImageId": "ami-1",
             "InstanceType": "t2.micro"},
        )
        described = d2c.invoke("DescribeInstances",
                               {"InstanceId": run.data["id"]})
        assert "instance_tenancy" not in described.data
        assert "credit_specification" not in described.data

    def test_delete_vpc_misses_dependency_check(self, d2c):
        d2c.reset()
        vpc = d2c.invoke("CreateVpc", {"CidrBlock": "10.0.0.0/16"})
        igw = d2c.invoke("CreateInternetGateway", {})
        d2c.invoke(
            "AttachInternetGateway",
            {"InternetGatewayId": igw.data["id"], "VpcId": vpc.data["id"]},
        )
        delete = d2c.invoke("DeleteVpc", {"VpcId": vpc.data["id"]})
        assert delete.success  # the cloud would refuse

    def test_deterministic_generation(self):
        docs = wrangled_docs("network_firewall")
        first = build_d2c_emulator(docs, seed=3)
        second = build_d2c_emulator(docs, seed=3)
        for api in first.api_names():
            assert first.generated_source(api) == second.generated_source(
                api
            )
