"""Tests for grammar-prefix checking and constrained decoding (§4.2)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import wrangled_docs
from repro.llm import FaultModel, PERFECT_PROFILE, SpecSynthesizer
from repro.llm.constrained import ConstrainedDecoder, GrammarPrefixChecker

GOOD = (
    "SM x { States s: str, n: enum(a, b) = a Transitions { "
    '@modify T(x_id: str, v: str) { assert(exists(v)) : Bad("m"); '
    "write(s, v); } } }"
)


@pytest.fixture(scope="module")
def checker():
    return GrammarPrefixChecker()


@pytest.fixture(scope="module")
def spec_texts():
    synthesizer = SpecSynthesizer(FaultModel(PERFECT_PROFILE))
    texts = []
    for service in ("network_firewall", "azure_network"):
        for res in wrangled_docs(service).resources:
            text, __ = synthesizer.synthesize_text(res)
            texts.append(text)
    return texts


class TestPrefixChecker:
    def test_complete_spec_is_complete(self, checker):
        assert checker.is_complete(GOOD)
        assert checker.is_viable_prefix(GOOD)

    @settings(max_examples=80)
    @given(cut=st.integers(min_value=0, max_value=len(GOOD)))
    def test_every_true_prefix_is_viable(self, cut):
        assert GrammarPrefixChecker().is_viable_prefix(GOOD[:cut])

    def test_every_prefix_of_every_synthesized_spec(self, checker,
                                                    spec_texts):
        for text in spec_texts:
            for cut in range(0, len(text), 3):
                assert checker.is_viable_prefix(text[:cut]), (
                    text[max(0, cut - 40):cut]
                )

    @pytest.mark.parametrize("dead", [
        "SM x { States s str ,",        # missing colon, sealed by comma
        "SM x { } trailing",            # content after a closed block
        "SM x { States s: wibble ,",    # unknown type, comma follows
        "SM x { States s: str Transitions { T() { s ",  # bare name stmt
        "quack quack",                  # not an SM at all
    ])
    def test_dead_prefixes_rejected(self, checker, dead):
        assert not checker.is_viable_prefix(dead)

    def test_approximation_admits_extendable_last_tokens(self, checker):
        """The checker is complete for true prefixes and approximate
        for rejection: a dead prefix whose final token could still be
        extending (`str` might become an identifier) is admitted."""
        assert checker.is_viable_prefix("SM x { States s str")

    def test_illegal_character_is_dead(self, checker):
        assert not checker.is_viable_prefix("SM x { States # s: str")

    def test_partial_operator_at_end_is_viable(self, checker):
        assert checker.is_viable_prefix(
            "SM x { States a: bool, b: bool Transitions { "
            "T() { assert(a |"
        )

    def test_unterminated_string_is_viable(self, checker):
        assert checker.is_viable_prefix(
            'SM x { States s: str Transitions { T() { '
            'assert(exists(s)) : C("unfinished'
        )


class TestConstrainedDecoder:
    def test_clean_stream_untouched(self):
        decoder = ConstrainedDecoder()
        result = decoder.decode(decoder.chunk(GOOD, 10))
        assert result.text == GOOD
        assert result.interventions == 0

    def test_garbage_chunks_masked(self):
        decoder = ConstrainedDecoder()
        chunks = decoder.chunk(GOOD, 10)
        noisy = []
        for index, chunk in enumerate(chunks):
            noisy.append(chunk)
            if index in (1, 4, 7):
                noisy.append("#$%^GARBAGE")
        result = decoder.decode(noisy)
        assert result.interventions == 3
        assert result.text == GOOD
        assert GrammarPrefixChecker().is_complete(result.text)

    def test_masking_over_synthesized_specs(self, spec_texts):
        decoder = ConstrainedDecoder()
        checker = GrammarPrefixChecker()
        for text in spec_texts[:4]:
            # Chunk at line boundaries: garbage injected *inside* a
            # string literal is string content and cannot be masked —
            # a property real token-masking decoders share.
            chunks = [line + "\n" for line in text.splitlines()]
            noisy = []
            for index, chunk in enumerate(chunks):
                noisy.append(chunk)
                if index % 5 == 2:
                    noisy.append("#@!bad-token!@#")
            result = decoder.decode(noisy)
            assert result.text.rstrip("\n") == text.rstrip("\n")
            assert checker.is_complete(result.text)
            assert result.interventions == sum(
                1 for c in noisy if c == "#@!bad-token!@#"
            )
