"""Cross-cutting property-based tests over the core machinery."""

import pytest
from hypothesis import given, HealthCheck, settings, strategies as st

from repro.alignment import normalize_value
from repro.core import wrangled_docs
from repro.llm import FaultModel, PERFECT_PROFILE, SpecSynthesizer
from repro.spec import ast, parse_sm, serialize_sm
from repro.spec.parser import parse_module


@pytest.fixture(scope="module")
def ec2_module():
    docs = wrangled_docs("ec2")
    synthesizer = SpecSynthesizer(FaultModel(PERFECT_PROFILE))
    module = ast.SpecModule(service="ec2")
    for res in docs.resources:
        spec, __ = synthesizer.synthesize_sm(res)
        module.add(spec)
    return module


class TestSerializerProperties:
    def test_synthesized_specs_are_fixed_points(self, ec2_module):
        """serialize . parse . serialize == serialize for every SM."""
        for spec in ec2_module.machines.values():
            text = serialize_sm(spec)
            assert serialize_sm(parse_sm(text)) == text

    def test_module_round_trip_preserves_structure(self, ec2_module):
        from repro.spec import serialize_module

        text = serialize_module(ec2_module)
        again = parse_module(text, service="ec2")
        assert set(again.machines) == set(ec2_module.machines)
        for name, spec in ec2_module.machines.items():
            other = again.machines[name]
            assert other.state_names() == spec.state_names()
            assert set(other.transitions) == set(spec.transitions)


@st.composite
def cidr_blocks(draw):
    octets = draw(st.tuples(*[st.integers(0, 255)] * 2))
    prefix = draw(st.integers(16, 28))
    return f"{octets[0]}.{octets[1]}.0.0/{prefix}"


class TestEmulatorInvariants:
    """The emulator never crashes and never half-applies a call."""

    @pytest.fixture(scope="class")
    def emulator(self):
        from repro.core import build_learned_emulator

        build = build_learned_emulator("ec2", mode="perfect", align=False)
        return build.make_backend()

    @settings(max_examples=40,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(cidr=cidr_blocks(), junk=st.text(max_size=10))
    def test_create_vpc_total(self, emulator, cidr, junk):
        response = emulator.invoke(
            "CreateVpc", {"CidrBlock": cidr, "Noise": junk}
        )
        assert response.success
        assert response.data["id"].startswith("vpc-")

    @settings(max_examples=40,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(params=st.dictionaries(
        st.sampled_from(["VpcId", "CidrBlock", "SubnetId", "Junk"]),
        st.one_of(st.none(), st.text(max_size=12), st.integers(),
                  st.booleans()),
        max_size=4,
    ))
    def test_arbitrary_params_never_crash(self, emulator, params):
        for api in ("CreateVpc", "CreateSubnet", "DeleteVpc",
                    "DescribeSubnets", "ModifyVpcAttribute"):
            response = emulator.invoke(api, params)
            assert isinstance(response.success, bool)
            if not response.success:
                assert response.error_code

    @settings(max_examples=25,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(bad_cidr=st.text(max_size=12))
    def test_failed_create_leaves_no_state(self, emulator, bad_cidr):
        emulator.reset()
        response = emulator.invoke("CreateVpc", {"CidrBlock": bad_cidr})
        if not response.success:
            assert len(emulator.registry) == 0

    def test_failed_nested_call_is_atomic(self, emulator):
        """Asserts failing after a cross-SM call must undo it."""
        emulator.reset()
        vpc = emulator.invoke("CreateVpc", {"CidrBlock": "10.0.0.0/16"})
        # CreateSubnet tracks its CIDR into the VPC before a later
        # assert could fail; verify a failing run left nothing behind.
        emulator.invoke(
            "CreateSubnet",
            {"VpcId": vpc.data["id"], "CidrBlock": "10.0.1.0/24"},
        )
        failed = emulator.invoke(
            "CreateSubnet",
            {"VpcId": vpc.data["id"], "CidrBlock": "10.0.1.0/24"},
        )
        assert not failed.success
        # Exactly one subnet CIDR is tracked.
        vpc_instance = emulator.registry.get(vpc.data["id"])
        assert vpc_instance.state["subnet_cidrs"] == ["10.0.1.0/24"]


class TestNormalizeProperties:
    @settings(max_examples=60)
    @given(value=st.recursive(
        st.one_of(st.none(), st.booleans(), st.integers(),
                  st.text(max_size=15)),
        lambda children: st.one_of(
            st.lists(children, max_size=3),
            st.dictionaries(st.text(max_size=5), children, max_size=3),
        ),
        max_leaves=10,
    ))
    def test_normalize_is_idempotent(self, value):
        env: dict = {}
        once = normalize_value(value, env)
        assert normalize_value(once, env) == once

    @given(st.integers(1, 10**8))
    def test_generated_ids_normalize_to_token(self, n):
        value = f"subnet-{n:08d}"
        assert normalize_value(value, {}) == "<token>"


class TestResponseDeterminism:
    def test_same_program_same_responses(self):
        from repro.core import build_learned_emulator
        from repro.scenarios import evaluation_traces, run_trace

        build = build_learned_emulator("ec2", mode="perfect", align=False)
        for trace in evaluation_traces():
            if trace.service != "ec2":
                continue
            first = run_trace(build.make_backend(), trace)
            second = run_trace(build.make_backend(), trace)
            assert [r.response for r in first.results] == [
                r.response for r in second.results
            ]
