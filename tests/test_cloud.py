"""Tests for the reference cloud: the alignment ground truth."""

import pytest

from repro.cloud import make_cloud


@pytest.fixture
def ec2():
    return make_cloud("ec2")


@pytest.fixture
def nfw():
    return make_cloud("network_firewall")


@pytest.fixture
def ddb():
    return make_cloud("dynamodb")


class TestIdentifierStyle:
    def test_hex_style_ids(self, ec2):
        vpc = ec2.invoke("CreateVpc", {"CidrBlock": "10.0.0.0/16"})
        assert vpc.success
        prefix, __, tail = vpc.data["id"].partition("-")
        assert prefix == "vpc"
        assert len(tail) >= 12
        assert all(c in "0123456789abcdef" for c in tail)

    def test_ids_differ_from_emulator_style(self, ec2):
        vpc = ec2.invoke("CreateVpc", {"CidrBlock": "10.0.0.0/16"})
        assert not vpc.data["id"].endswith("00000001")


class TestVpcSemantics:
    def test_invalid_cidr_rejected(self, ec2):
        response = ec2.invoke("CreateVpc", {"CidrBlock": "banana"})
        assert response.error_code == "InvalidParameterValue"

    def test_out_of_range_prefix_rejected(self, ec2):
        response = ec2.invoke("CreateVpc", {"CidrBlock": "10.0.0.0/8"})
        assert response.error_code == "InvalidVpc.Range"

    def test_delete_vpc_with_gateway_is_dependency_violation(self, ec2):
        vpc = ec2.invoke("CreateVpc", {"CidrBlock": "10.0.0.0/16"})
        igw = ec2.invoke("CreateInternetGateway", {})
        attach = ec2.invoke(
            "AttachInternetGateway",
            {"InternetGatewayId": igw.data["id"], "VpcId": vpc.data["id"]},
        )
        assert attach.success
        delete = ec2.invoke("DeleteVpc", {"VpcId": vpc.data["id"]})
        assert delete.error_code == "DependencyViolation"
        # After detaching, deletion succeeds.
        assert ec2.invoke(
            "DetachInternetGateway",
            {"InternetGatewayId": igw.data["id"]},
        ).success
        assert ec2.invoke("DeleteVpc", {"VpcId": vpc.data["id"]}).success

    def test_error_message_carries_the_violated_rule(self, ec2):
        vpc = ec2.invoke("CreateVpc", {"CidrBlock": "10.0.0.0/16"})
        subnet = ec2.invoke(
            "CreateSubnet",
            {"VpcId": vpc.data["id"], "CidrBlock": "10.0.1.0/24"},
        )
        assert subnet.success
        delete = ec2.invoke("DeleteVpc", {"VpcId": vpc.data["id"]})
        assert "subnet_cidrs" in delete.error_message

    def test_dns_hostnames_requires_dns_support(self, ec2):
        vpc = ec2.invoke("CreateVpc", {"CidrBlock": "10.0.0.0/16"})
        assert ec2.invoke(
            "ModifyVpcAttribute",
            {"VpcId": vpc.data["id"], "EnableDnsSupport": False},
        ).success
        hostnames = ec2.invoke(
            "ModifyVpcAttribute",
            {"VpcId": vpc.data["id"], "EnableDnsHostnames": True},
        )
        assert hostnames.error_code == "InvalidParameterValue"


class TestSubnetSemantics:
    @pytest.fixture
    def vpc_id(self, ec2):
        return ec2.invoke("CreateVpc", {"CidrBlock": "10.0.0.0/16"}).data["id"]

    def test_slash_29_rejected(self, ec2, vpc_id):
        response = ec2.invoke(
            "CreateSubnet", {"VpcId": vpc_id, "CidrBlock": "10.0.0.0/29"}
        )
        assert response.error_code == "InvalidSubnet.Range"

    def test_subnet_outside_vpc_rejected(self, ec2, vpc_id):
        response = ec2.invoke(
            "CreateSubnet", {"VpcId": vpc_id, "CidrBlock": "192.168.0.0/24"}
        )
        assert response.error_code == "InvalidSubnet.Range"

    def test_overlap_rejected(self, ec2, vpc_id):
        first = ec2.invoke(
            "CreateSubnet", {"VpcId": vpc_id, "CidrBlock": "10.0.1.0/24"}
        )
        assert first.success
        second = ec2.invoke(
            "CreateSubnet", {"VpcId": vpc_id, "CidrBlock": "10.0.1.128/25"}
        )
        assert second.error_code == "InvalidSubnet.Conflict"

    def test_delete_subnet_untracks_cidr(self, ec2, vpc_id):
        subnet = ec2.invoke(
            "CreateSubnet", {"VpcId": vpc_id, "CidrBlock": "10.0.1.0/24"}
        )
        assert ec2.invoke(
            "DeleteSubnet", {"SubnetId": subnet.data["id"]}
        ).success
        again = ec2.invoke(
            "CreateSubnet", {"VpcId": vpc_id, "CidrBlock": "10.0.1.0/24"}
        )
        assert again.success


class TestInstanceSemantics:
    @pytest.fixture
    def instance_id(self, ec2):
        vpc = ec2.invoke("CreateVpc", {"CidrBlock": "10.0.0.0/16"})
        subnet = ec2.invoke(
            "CreateSubnet",
            {"VpcId": vpc.data["id"], "CidrBlock": "10.0.1.0/24"},
        )
        run = ec2.invoke(
            "RunInstances",
            {"SubnetId": subnet.data["id"], "ImageId": "ami-1",
             "InstanceType": "t2.micro"},
        )
        return run.data["id"]

    def test_start_running_instance_fails(self, ec2, instance_id):
        response = ec2.invoke("StartInstances", {"InstanceId": instance_id})
        assert response.error_code == "IncorrectInstanceState"

    def test_stop_then_start(self, ec2, instance_id):
        assert ec2.invoke("StopInstances",
                          {"InstanceId": instance_id}).success
        assert ec2.invoke("StartInstances",
                          {"InstanceId": instance_id}).success

    def test_modify_requires_stopped(self, ec2, instance_id):
        modify = ec2.invoke(
            "ModifyInstanceAttribute",
            {"InstanceId": instance_id, "InstanceType": "m5.large"},
        )
        assert modify.error_code == "IncorrectInstanceState"

    def test_terminated_instances_remain_describable(self, ec2, instance_id):
        assert ec2.invoke("TerminateInstances",
                          {"InstanceId": instance_id}).success
        described = ec2.invoke("DescribeInstances",
                               {"InstanceId": instance_id})
        assert described.data["state"] == "terminated"

    def test_atomicity_on_failed_call(self, ec2, instance_id):
        """A failed call must leave no partial writes behind."""
        eip = ec2.invoke("AllocateAddress", {})
        ec2.invoke("StopInstances", {"InstanceId": instance_id})
        associate = ec2.invoke(
            "AssociateAddress",
            {"ElasticIpId": eip.data["id"], "InstanceId": instance_id},
        )
        assert associate.error_code == "IncorrectInstanceState"
        described = ec2.invoke(
            "DescribeAddresses", {"ElasticIpId": eip.data["id"]}
        )
        assert described.data["instance"] is None
        assert described.data["association_id"] is None


class TestNetworkFirewallSemantics:
    def test_delete_protected_firewall_fails(self, nfw):
        policy = nfw.invoke("CreateFirewallPolicy", {"PolicyName": "p"})
        firewall = nfw.invoke(
            "CreateFirewall",
            {"FirewallName": "f",
             "FirewallPolicyId": policy.data["id"]},
        )
        assert nfw.invoke(
            "UpdateFirewallDeleteProtection",
            {"FirewallId": firewall.data["id"], "DeleteProtection": True},
        ).success
        delete = nfw.invoke("DeleteFirewall",
                            {"FirewallId": firewall.data["id"]})
        assert delete.error_code == "InvalidOperationException"

    def test_policy_in_use_cannot_be_deleted(self, nfw):
        policy = nfw.invoke("CreateFirewallPolicy", {"PolicyName": "p"})
        nfw.invoke(
            "CreateFirewall",
            {"FirewallName": "f", "FirewallPolicyId": policy.data["id"]},
        )
        delete = nfw.invoke(
            "DeleteFirewallPolicy",
            {"FirewallPolicyId": policy.data["id"]},
        )
        assert delete.error_code == "InvalidOperationException"

    def test_list_firewalls(self, nfw):
        policy = nfw.invoke("CreateFirewallPolicy", {"PolicyName": "p"})
        for name in ("a", "b"):
            nfw.invoke(
                "CreateFirewall",
                {"FirewallName": name,
                 "FirewallPolicyId": policy.data["id"]},
            )
        listing = nfw.invoke("ListFirewalls", {})
        assert listing.data["count"] == 2


class TestDynamoDbSemantics:
    def test_item_lifecycle(self, ddb):
        table = ddb.invoke("CreateTable", {"TableName": "t"})
        table_id = table.data["id"]
        assert ddb.invoke(
            "PutItem",
            {"TableId": table_id, "ItemKey": "k", "ItemValue": "v"},
        ).success
        got = ddb.invoke("GetItem", {"TableId": table_id, "ItemKey": "k"})
        assert got.data["value"] == "v"
        assert ddb.invoke(
            "DeleteItem", {"TableId": table_id, "ItemKey": "k"}
        ).success
        missing = ddb.invoke(
            "DeleteItem", {"TableId": table_id, "ItemKey": "k"}
        )
        assert missing.error_code == "ConditionalCheckFailedException"

    def test_notfound_uses_dynamodb_convention(self, ddb):
        response = ddb.invoke("DescribeTable", {"TableId": "table-0missing"})
        assert response.error_code == "ResourceNotFoundException"

    def test_deletion_protection(self, ddb):
        table = ddb.invoke("CreateTable", {"TableName": "t"})
        assert ddb.invoke(
            "UpdateTable",
            {"TableId": table.data["id"], "DeletionProtection": True},
        ).success
        delete = ddb.invoke("DeleteTable", {"TableId": table.data["id"]})
        assert delete.error_code == "ValidationException"

    def test_export_requires_pitr(self, ddb):
        table = ddb.invoke("CreateTable", {"TableName": "t"})
        export = ddb.invoke(
            "ExportTableToPointInTime",
            {"TableId": table.data["id"], "S3Bucket": "bucket"},
        )
        assert export.error_code == (
            "PointInTimeRecoveryUnavailableException"
        )
        ddb.invoke(
            "UpdateContinuousBackups",
            {"TableId": table.data["id"], "PitrEnabled": True},
        )
        retry = ddb.invoke(
            "ExportTableToPointInTime",
            {"TableId": table.data["id"], "S3Bucket": "bucket"},
        )
        assert retry.success


class TestFrameworkBehaviour:
    def test_unknown_action(self, ec2):
        assert ec2.invoke("SummonDragon", {}).error_code == "InvalidAction"

    def test_reset(self, ec2):
        ec2.invoke("CreateVpc", {"CidrBlock": "10.0.0.0/16"})
        ec2.reset()
        assert ec2.invoke("DescribeVpcs", {"VpcId": "vpc-0zzz"}).error_code \
            == "InvalidVpcID.NotFound"

    def test_reference_type_checked(self, ec2):
        vpc = ec2.invoke("CreateVpc", {"CidrBlock": "10.0.0.0/16"})
        response = ec2.invoke(
            "CreateSubnet",
            {"VpcId": "vpc-0doesnotexist", "CidrBlock": "10.0.1.0/24"},
        )
        assert response.error_code == "InvalidVpcID.NotFound"
        assert vpc.success
