"""Unit tests for the diagnosis/repair paths (§4.3), each taken alone."""

from dataclasses import replace

import pytest

from repro.alignment import (
    apply_repair,
    diagnose,
    Divergence,
    DOC_GAP,
    SPEC_ERROR,
    UNKNOWN,
)
from repro.core import run_fig3_evaluation, wrangled_docs
from repro.extraction import run_extraction
from repro.interpreter import ApiResponse, Emulator
from repro.llm import make_llm
from repro.scenarios import Trace, TraceStep
from repro.spec import ast


@pytest.fixture()
def ec2():
    docs = wrangled_docs("ec2")
    outcome = run_extraction("ec2", mode="perfect", service_doc=docs)
    return docs, outcome


def _divergence(api: str, cloud: ApiResponse,
                emulator: ApiResponse) -> Divergence:
    trace = Trace(name="t", service="ec2", scenario="test",
                  steps=(TraceStep(api, {}),))
    return Divergence(
        trace=trace, step_index=0, api=api, reason="test",
        cloud_response=cloud, emulator_response=emulator,
    )


class TestDiagnosis:
    def test_doc_gap_when_message_rule_is_undocumented(self, ec2):
        docs, outcome = ec2
        divergence = _divergence(
            "StartInstances",
            ApiResponse.fail(
                "IncorrectInstanceState",
                "Fails with the error code IncorrectInstanceState unless "
                "the `state` attribute is `stopped`.",
            ),
            ApiResponse.ok({}),
        )
        llm = make_llm("constrained")
        verdict = diagnose(divergence, outcome.module, docs, llm)
        assert verdict.kind == DOC_GAP
        assert verdict.learned_rule is not None
        assert verdict.learned_rule.kind == "check_attr_is"

    def test_spec_error_when_rule_is_documented(self, ec2):
        docs, outcome = ec2
        divergence = _divergence(
            "StopInstances",
            ApiResponse.fail(
                "IncorrectInstanceState",
                "Fails with the error code IncorrectInstanceState unless "
                "the `state` attribute is `running`.",
            ),
            ApiResponse.ok({}),
        )
        verdict = diagnose(divergence, outcome.module, docs,
                           make_llm("constrained"))
        assert verdict.kind == SPEC_ERROR

    def test_unknown_when_message_is_opaque(self, ec2):
        docs, outcome = ec2
        divergence = _divergence(
            "StartInstances",
            ApiResponse.fail("IncorrectInstanceState",
                             "something went wrong"),
            ApiResponse.ok({}),
        )
        verdict = diagnose(divergence, outcome.module, docs,
                           make_llm("constrained"))
        assert verdict.kind == UNKNOWN
        assert apply_repair(verdict, outcome.module, docs) is None

    def test_unknown_api_is_unknown(self, ec2):
        docs, outcome = ec2
        divergence = _divergence(
            "LaunchRocket", ApiResponse.fail("X", "m"), ApiResponse.ok({})
        )
        verdict = diagnose(divergence, outcome.module, docs,
                           make_llm("constrained"))
        assert verdict.kind == UNKNOWN


class TestRepairs:
    def test_learned_assert_inserted_and_effective(self, ec2):
        docs, outcome = ec2
        divergence = _divergence(
            "StartInstances",
            ApiResponse.fail(
                "IncorrectInstanceState",
                "Fails with the error code IncorrectInstanceState unless "
                "the `state` attribute is `stopped`.",
            ),
            ApiResponse.ok({}),
        )
        verdict = diagnose(divergence, outcome.module, docs,
                           make_llm("constrained"))
        repair = apply_repair(verdict, outcome.module, docs)
        assert repair is not None and repair.kind == "learned_assert"

        emulator = Emulator(outcome.module, outcome.notfound_codes)
        vpc = emulator.invoke("CreateVpc", {"CidrBlock": "10.0.0.0/16"})
        subnet = emulator.invoke(
            "CreateSubnet",
            {"VpcId": vpc.data["id"], "CidrBlock": "10.0.1.0/24"},
        )
        run = emulator.invoke(
            "RunInstances",
            {"SubnetId": subnet.data["id"], "ImageId": "ami-1",
             "InstanceType": "t2.micro"},
        )
        start = emulator.invoke("StartInstances",
                                {"InstanceId": run.data["id"]})
        assert start.error_code == "IncorrectInstanceState"

    def test_spurious_assert_removed(self, ec2):
        docs, outcome = ec2
        spec = outcome.module.get("vpc")
        transition = spec.transitions["DescribeVpcs"]
        transition.body = (
            ast.Assert(ast.Truthy(ast.Func("exists",
                                           (ast.Name("cidr_block"),))),
                       "MadeUpCheck"),
        ) + transition.body
        divergence = _divergence(
            "DescribeVpcs",
            ApiResponse.ok({}),
            ApiResponse.fail("MadeUpCheck", "m"),
        )
        verdict = diagnose(divergence, outcome.module, docs,
                           make_llm("constrained"))
        repair = apply_repair(verdict, outcome.module, docs)
        assert repair is not None and repair.kind == "removed_assert"
        codes = [
            stmt.error_code for stmt in transition.statements()
            if isinstance(stmt, ast.Assert)
        ]
        assert "MadeUpCheck" not in codes

    def test_wrong_code_recoded(self, ec2):
        docs, outcome = ec2
        spec = outcome.module.get("subnet")
        transition = spec.transitions["CreateSubnet"]
        target = next(
            index for index, stmt in enumerate(transition.body)
            if isinstance(stmt, ast.Assert)
            and stmt.error_code == "InvalidSubnet.Range"
        )
        body = list(transition.body)
        body[target] = replace(body[target], error_code="InternalError")
        transition.body = tuple(body)

        divergence = _divergence(
            "CreateSubnet",
            ApiResponse.fail("InvalidSubnet.Range", "m"),
            ApiResponse.fail("InternalError", "m"),
        )
        verdict = diagnose(divergence, outcome.module, docs,
                           make_llm("constrained"))
        repair = apply_repair(verdict, outcome.module, docs)
        assert repair is not None and repair.kind == "recoded_assert"
        codes = [
            stmt.error_code for stmt in transition.statements()
            if isinstance(stmt, ast.Assert)
        ]
        assert "InternalError" not in codes
        assert codes.count("InvalidSubnet.Range") >= 1

    def test_data_mismatch_regenerates(self, ec2):
        docs, outcome = ec2
        spec = outcome.module.get("vpc")
        # Simulate a dropped attribute: remove is_default + its read.
        spec.states = [s for s in spec.states if s.name != "is_default"]
        transition = spec.transitions["DescribeVpcs"]
        transition.body = tuple(
            stmt for stmt in transition.body
            if not (isinstance(stmt, ast.Read)
                    and stmt.state == "is_default")
        )
        divergence = _divergence(
            "DescribeVpcs",
            ApiResponse.ok({"is_default": False}),
            ApiResponse.ok({}),
        )
        verdict = diagnose(divergence, outcome.module, docs,
                           make_llm("constrained"))
        repair = apply_repair(verdict, outcome.module, docs)
        assert repair is not None and repair.kind == "regenerated"
        fresh = outcome.module.get("vpc")
        assert fresh.state_type("is_default") is not None
        # Helper transitions patched by linking survive regeneration.
        assert "_Track_subnet_cidrs" in fresh.transitions


class TestEndToEndDeterminism:
    def test_fig3_is_seed_stable(self):
        first = run_fig3_evaluation(seed=7)
        second = run_fig3_evaluation(seed=7)
        for variant in first:
            assert first[variant].per_trace == second[variant].per_trace
