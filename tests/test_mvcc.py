"""MVCC serve path: version immutability, publication, reclamation,
the lock-free read contract, and the RW-lock fairness fallback."""

import json
import threading
import time

import pytest

from repro.core import build_learned_emulator
from repro.durability.snapshot import version_dump
from repro.obs.tracectx import CURRENT_REQUEST, RequestContext
from repro.resilience.chaos import ChaosEngine, ChaosProxy, HOSTILE_PROFILE
from repro.serve import ConcurrentEmulator, FrontDoor, LoadGenerator
from repro.serve.locks import RWLock
from repro.serve.mvcc import ReaderSlots, VersionChain
from repro.telemetry.report import _serving_rows


@pytest.fixture(scope="module")
def build():
    return build_learned_emulator("ec2", seed=7, align=False)


def _canonical(dump: dict) -> str:
    return json.dumps(dump, sort_keys=True)


class TestRegistryVersions:
    def test_publish_caches_until_mutation(self, build):
        emulator = build.make_backend()
        first = emulator.publish_version()
        assert emulator.publish_version() is first
        assert emulator.invoke(
            "CreateVpc", {"CidrBlock": "10.0.0.0/16"}
        ).success
        second = emulator.publish_version()
        assert second is not first
        assert second.version == first.version + 1

    def test_pinned_version_is_byte_stable_under_writes(self, build):
        emulator = build.make_backend()
        emulator.invoke("CreateVpc", {"CidrBlock": "10.0.0.0/16"})
        pinned = emulator.publish_version()
        baseline = _canonical(version_dump(pinned))
        for index in range(25):
            emulator.invoke(
                "CreateVpc", {"CidrBlock": f"10.{index + 1}.0.0/16"}
            )
        assert _canonical(version_dump(pinned)) == baseline

    def test_versions_refuse_mutation(self, build):
        emulator = build.make_backend()
        version = emulator.publish_version()
        with pytest.raises(RuntimeError, match="immutable"):
            version.new_id("vpc")
        with pytest.raises(RuntimeError, match="immutable"):
            version.place("vpc-00000001", "us-east-1")

    def test_invoke_at_reads_the_pinned_past(self, build):
        emulator = build.make_backend()
        first = emulator.invoke(
            "CreateVpc", {"CidrBlock": "10.0.0.0/16"}
        ).data["id"]
        old = emulator.publish_version()
        live_then = emulator.invoke("DescribeVpcs", {"VpcId": first})
        second = emulator.invoke(
            "CreateVpc", {"CidrBlock": "10.1.0.0/16"}
        ).data["id"]
        # The pinned version still answers with the old world: the
        # first VPC describes fine, the second does not exist yet.
        at_old = emulator.invoke_at(old, "DescribeVpcs", {"VpcId": first})
        assert at_old.success
        assert at_old.data == live_then.data
        missing = emulator.invoke_at(
            old, "DescribeVpcs", {"VpcId": second}
        )
        assert not missing.success
        # ...while a fresh version sees both.
        fresh = emulator.publish_version()
        assert emulator.invoke_at(
            fresh, "DescribeVpcs", {"VpcId": second}
        ).success

    def test_version_numbers_survive_reset_and_restore(self, build):
        emulator = build.make_backend()
        emulator.invoke("CreateVpc", {"CidrBlock": "10.0.0.0/16"})
        before = emulator.publish_version()
        saved = emulator.snapshot()
        frozen = _canonical(version_dump(before))
        emulator.reset()
        after_reset = emulator.publish_version()
        assert after_reset.version > before.version
        emulator.restore(saved)
        after_restore = emulator.publish_version()
        assert after_restore.version > after_reset.version
        # Restore rebuilt the world without ever touching the old
        # pinned version...
        assert _canonical(version_dump(before)) == frozen
        # ...and the restored content matches it.
        assert _canonical(version_dump(after_restore)) == frozen


class _FakeVersion:
    __slots__ = ("version",)

    def __init__(self, version):
        self.version = version


class TestVersionChain:
    def test_reclaims_only_below_the_pin_floor(self):
        slots = ReaderSlots()
        chain = VersionChain(_FakeVersion(1), slots)
        slot = slots.slot()
        pinned = chain.pin(slot)
        assert pinned.version == 1
        assert chain.publish(_FakeVersion(2)) == 0  # v1 still pinned
        assert chain.live == 2
        assert chain.publish(_FakeVersion(3)) == 0
        assert chain.live == 3
        slot.pinned = None
        assert chain.reclaim() == 2
        assert chain.live == 1
        assert chain.publishes == 3
        assert chain.reclaimed == 2

    def test_publish_same_version_is_a_noop(self):
        slots = ReaderSlots()
        first = _FakeVersion(1)
        chain = VersionChain(first, slots)
        chain.publish(first)
        assert chain.publishes == 1
        assert chain.live == 1

    def test_floor_is_the_oldest_pin_across_slots(self):
        from repro.serve.mvcc import _ReaderSlot

        slots = ReaderSlots()
        slot_a = slots.slot()
        # Simulate a second thread's slot.
        slot_b = _ReaderSlot()
        slots._slots.append(slot_b)
        slot_a.pinned = 5
        slot_b.pinned = 3
        assert slots.min_pinned() == 3
        slot_b.pinned = None
        assert slots.min_pinned() == 5
        slot_a.pinned = None
        assert slots.min_pinned() is None


class TestConcurrentEmulatorMvcc:
    def test_auto_detects_mvcc_and_reads_never_lock(self, build):
        emulator = ConcurrentEmulator(build.make_backend())
        assert emulator.mvcc
        created = emulator.invoke(
            "CreateVpc", {"CidrBlock": "10.0.0.0/16"}
        )
        assert created.success
        params = {"VpcId": created.data["id"]}
        for __ in range(20):
            assert emulator.invoke("DescribeVpcs", params).success
        stats = emulator.version_stats()
        assert stats["read_lock_acquisitions"] == 0
        assert stats["write_lock_acquisitions"] == 0
        assert stats["pinned_reads"] >= 20
        assert stats["publishes"] >= 2

    def test_mvcc_false_falls_back_to_the_rw_lock(self, build):
        emulator = ConcurrentEmulator(build.make_backend(mvcc=False))
        assert not emulator.mvcc
        created = emulator.invoke(
            "CreateVpc", {"CidrBlock": "10.0.0.0/16"}
        )
        params = {"VpcId": created.data["id"]}
        for __ in range(5):
            assert emulator.invoke("DescribeVpcs", params).success
        assert emulator.lock.read_acquisitions == 5
        assert emulator.lock.write_acquisitions == 1
        assert emulator.version_stats()["mvcc"] is False

    def test_forcing_mvcc_without_the_surface_is_an_error(self, build):
        class _Opaque:
            def read_only(self, api):
                return True

        with pytest.raises(TypeError, match="invoke_at"):
            ConcurrentEmulator(_Opaque(), mvcc=True)

    def test_request_context_records_the_pinned_version(self, build):
        emulator = ConcurrentEmulator(build.make_backend())
        ctx = RequestContext("t-1", "default", "DescribeVpcs", 0.0)
        token = CURRENT_REQUEST.set(ctx)
        try:
            emulator.invoke("DescribeVpcs", {})
            read_version = ctx.registry_version
            assert read_version >= 1
            emulator.invoke("CreateVpc", {"CidrBlock": "10.0.0.0/16"})
            assert ctx.registry_version == read_version + 1
        finally:
            CURRENT_REQUEST.reset(token)

    def test_restore_publishes_never_mutates_pinned(self, build):
        emulator = ConcurrentEmulator(build.make_backend())
        emulator.invoke("CreateVpc", {"CidrBlock": "10.0.0.0/16"})
        saved = emulator.snapshot()
        slot = emulator._slots.slot()
        pinned = emulator._chain.pin(slot)
        frozen = _canonical(version_dump(pinned))
        emulator.invoke("CreateVpc", {"CidrBlock": "10.1.0.0/16"})
        emulator.restore(saved)
        # The pinned version never moved, restore came out as a new one.
        assert _canonical(version_dump(pinned)) == frozen
        assert emulator._chain.current.version > pinned.version
        restored = emulator.snapshot()
        assert _canonical(restored) == _canonical(saved)
        slot.pinned = None

    def test_snapshots_under_write_churn_restore_byte_identical(
            self, build):
        emulator = ConcurrentEmulator(build.make_backend())
        stop = threading.Event()
        failures = []

        def writer():
            index = 0
            while not stop.is_set():
                emulator.invoke(
                    "CreateVpc",
                    {"CidrBlock": f"10.{index % 200}.0.0/16"},
                )
                index += 1

        churn = threading.Thread(target=writer, daemon=True)
        churn.start()
        try:
            for __ in range(30):
                snap = emulator.snapshot()
                replica = build.make_backend()
                replica.restore(snap)
                if _canonical(replica.snapshot()) != _canonical(snap):
                    failures.append("restore diverged from snapshot")
        finally:
            stop.set()
            churn.join()
        assert not failures

    def test_recover_is_atomic_for_pinned_readers(self, build):
        emulator = ConcurrentEmulator(build.make_backend())
        emulator.invoke("CreateVpc", {"CidrBlock": "10.0.0.0/16"})
        saved = emulator.snapshot()
        slot = emulator._slots.slot()
        pinned = emulator._chain.pin(slot)
        frozen = _canonical(version_dump(pinned))
        emulator.invoke("CreateVpc", {"CidrBlock": "10.1.0.0/16"})
        replayed = emulator.recover(saved, records=[])
        assert replayed == 0
        assert _canonical(version_dump(pinned)) == frozen
        assert _canonical(emulator.snapshot()) == _canonical(saved)
        slot.pinned = None

    def test_drift_check_is_consistent_under_write_churn(self, build):
        emulator = ConcurrentEmulator(build.make_backend())
        created = emulator.invoke(
            "CreateVpc", {"CidrBlock": "10.0.0.0/16"}
        )
        vpc = created.data["id"]
        stop = threading.Event()

        def writer():
            index = 0
            while not stop.is_set():
                emulator.invoke(
                    "CreateSubnet",
                    {"VpcId": vpc,
                     "CidrBlock": f"10.0.{index % 250}.0/24"},
                )
                index += 1

        churn = threading.Thread(target=writer, daemon=True)
        churn.start()
        try:
            for __ in range(30):
                ok, detail = emulator.drift_check("DescribeVpcs", {})
                assert ok, detail
                ok, detail = emulator.drift_check(
                    "DescribeVpcs", {"VpcId": vpc}
                )
                assert ok, detail
        finally:
            stop.set()
            churn.join()
        assert emulator.version_stats()["read_lock_acquisitions"] == 0

    def test_reclamation_bounds_live_versions(self, build):
        emulator = ConcurrentEmulator(build.make_backend())
        for index in range(40):
            emulator.invoke(
                "CreateVpc", {"CidrBlock": f"10.{index % 200}.0.0/16"}
            )
        stats = emulator.version_stats()
        # No readers pinned anything, so every superseded version was
        # reclaimed at the next publish.
        assert stats["versions_live"] == 1
        assert stats["reclaimed"] == stats["publishes"] - 1


class TestMvccSoak:
    def test_hostile_soak_with_background_snapshotters(self, build):
        """Chaos + concurrent snapshot/restore cycles while the load
        runs: linearizability and snapshot byte-identity must hold and
        the read path must stay lock-free."""
        engine = ChaosEngine(HOSTILE_PROFILE, seed=61)
        front = FrontDoor(
            build.module, build.make_backend,
            wrap=lambda backend: ChaosProxy(backend, engine),
            rate=1e9, burst=1e9, max_concurrent=64, queue_depth=256,
        )
        stop = threading.Event()
        snapshot_failures = []

        def snapshotter():
            while not stop.is_set():
                for tenant in front.router.tenants():
                    snap = tenant.emulator.snapshot()
                    replica = build.make_backend()
                    replica.restore(snap)
                    if (_canonical(replica.snapshot())
                            != _canonical(snap)):
                        snapshot_failures.append(tenant.name)
                time.sleep(0.001)

        shadow = threading.Thread(target=snapshotter, daemon=True)
        shadow.start()
        try:
            generator = LoadGenerator(
                front, seed=62, workers=8, requests_per_worker=125,
                read_ratio=0.6, tenants=2,
            )
            report = generator.run()
        finally:
            stop.set()
            shadow.join()
        assert report.linearizable, report.mismatches
        assert not snapshot_failures
        assert report.mvcc["read_lock_acquisitions"] == 0
        assert report.mvcc["mvcc_tenants"] == report.mvcc["tenants"]
        assert sum(engine.injected.values()) > 0


class TestRWLockFairness:
    def test_counters_track_acquisitions(self):
        lock = RWLock()
        with lock.read():
            pass
        with lock.write():
            pass
        assert lock.read_acquisitions == 1
        assert lock.write_acquisitions == 1

    def test_read_streak_triggers_a_fairness_yield(self):
        lock = RWLock(fairness_bound=4, yield_s=0.001)
        held = threading.Event()
        release = threading.Event()

        def holder():
            with lock.read():
                held.set()
                release.wait(timeout=5)

        thread = threading.Thread(target=holder)
        thread.start()
        assert held.wait(timeout=5)
        # Build an unbroken admission streak past the bound while a
        # reader is still inside; the bound must fire and be counted.
        for __ in range(6):
            with lock.read():
                pass
        assert lock.fairness_yields >= 1
        release.set()
        thread.join()

    def test_write_resets_the_streak(self):
        lock = RWLock(fairness_bound=4, yield_s=0.001)
        for __ in range(3):
            with lock.read():
                pass
        with lock.write():
            pass
        assert lock._read_streak == 0

    def test_writer_completes_under_continuous_read_stream(self):
        """The degraded-mode regression: a writer queued behind an
        unbroken stream of admitted reads must still get in."""
        lock = RWLock(fairness_bound=8, yield_s=0.0005)
        stop = threading.Event()
        wrote = threading.Event()

        def reader():
            while not stop.is_set():
                with lock.read():
                    time.sleep(0.0002)

        readers = [
            threading.Thread(target=reader, daemon=True)
            for __ in range(4)
        ]
        for thread in readers:
            thread.start()
        time.sleep(0.02)  # the read stream is in full swing

        def writer():
            with lock.write():
                wrote.set()

        pen = threading.Thread(target=writer, daemon=True)
        pen.start()
        finished = wrote.wait(timeout=5)
        stop.set()
        pen.join(timeout=5)
        for thread in readers:
            thread.join(timeout=5)
        assert finished, "writer starved behind the read stream"


class TestReportRows:
    def test_version_counters_surface_in_serving_rows(self):
        rows = _serving_rows({
            "serve.requests": {"value": 10},
            "serve.version_publishes": {"value": 4},
            "serve.reclaimed": {"value": 3},
            "serve.versions_live": {"value": 1.0},
        })
        assert any(
            "4 version publish(es) (3 reclaimed, 1 live)" == row
            for row in rows
        )

    def test_rows_stay_silent_without_mvcc(self):
        rows = _serving_rows({"serve.requests": {"value": 10}})
        assert all("version" not in row for row in rows)
