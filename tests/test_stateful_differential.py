"""Stateful differential property testing: emulator vs cloud.

A hypothesis state machine drives the *aligned* learned emulator and
the reference cloud in lock-step through random—but id-coherent—EC2
operation sequences. After every operation the outcomes must match
(success, error code), and bound identifiers must stay positionally
consistent. This is a much broader behavioural net than the fixed
evaluation traces.
"""

import pytest
from hypothesis import settings
from hypothesis.stateful import (
    Bundle,
    rule,
    RuleBasedStateMachine,
)
from hypothesis import strategies as st

from repro.cloud import make_cloud
from repro.core import build_learned_emulator

_BUILD = build_learned_emulator("ec2", mode="constrained", seed=7)

CIDRS = st.sampled_from([
    "10.0.0.0/16", "10.1.0.0/16", "10.0.1.0/24", "10.0.2.0/24",
    "10.0.0.0/29", "not-a-cidr", "192.168.1.0/24",
])
INSTANCE_TYPES = st.sampled_from(["t2.micro", "m5.large", "z9-bogus"])
BOOLS = st.booleans()


class DifferentialMachine(RuleBasedStateMachine):
    """Each rule performs one API call on both backends and compares."""

    vpcs = Bundle("vpcs")
    subnets = Bundle("subnets")
    instances = Bundle("instances")
    gateways = Bundle("gateways")

    def __init__(self):
        super().__init__()
        self.emulator = _BUILD.make_backend()
        self.cloud = make_cloud("ec2")

    def _both(self, api: str, cloud_params: dict, emulator_params: dict):
        cloud_response = self.cloud.invoke(api, cloud_params)
        emulator_response = self.emulator.invoke(api, emulator_params)
        assert cloud_response.success == emulator_response.success, (
            f"{api}: cloud={cloud_response.error_code or 'ok'} "
            f"emulator={emulator_response.error_code or 'ok'} "
            f"(cloud msg: {cloud_response.error_message})"
        )
        if not cloud_response.success:
            assert cloud_response.error_code == (
                emulator_response.error_code
            ), api
        return cloud_response, emulator_response

    def _pair(self, cloud_response, emulator_response):
        """A (cloud id, emulator id) pair for bundle storage."""
        if cloud_response.success and "id" in cloud_response.data:
            return (str(cloud_response.data["id"]),
                    str(emulator_response.data["id"]))
        return None

    # -- rules -------------------------------------------------------------

    @rule(target=vpcs, cidr=CIDRS)
    def create_vpc(self, cidr):
        responses = self._both(
            "CreateVpc", {"CidrBlock": cidr}, {"CidrBlock": cidr}
        )
        return self._pair(*responses) or ("dangling", "dangling")

    @rule(target=subnets, vpc=vpcs, cidr=CIDRS)
    def create_subnet(self, vpc, cidr):
        cloud_vpc, emulator_vpc = vpc
        responses = self._both(
            "CreateSubnet",
            {"VpcId": cloud_vpc, "CidrBlock": cidr},
            {"VpcId": emulator_vpc, "CidrBlock": cidr},
        )
        return self._pair(*responses) or ("dangling", "dangling")

    @rule(target=gateways)
    def create_gateway(self):
        responses = self._both("CreateInternetGateway", {}, {})
        return self._pair(*responses) or ("dangling", "dangling")

    @rule(gateway=gateways, vpc=vpcs)
    def attach_gateway(self, gateway, vpc):
        self._both(
            "AttachInternetGateway",
            {"InternetGatewayId": gateway[0], "VpcId": vpc[0]},
            {"InternetGatewayId": gateway[1], "VpcId": vpc[1]},
        )

    @rule(gateway=gateways)
    def detach_gateway(self, gateway):
        self._both(
            "DetachInternetGateway",
            {"InternetGatewayId": gateway[0]},
            {"InternetGatewayId": gateway[1]},
        )

    @rule(vpc=vpcs)
    def delete_vpc(self, vpc):
        self._both("DeleteVpc", {"VpcId": vpc[0]}, {"VpcId": vpc[1]})

    @rule(subnet=subnets)
    def delete_subnet(self, subnet):
        self._both("DeleteSubnet", {"SubnetId": subnet[0]},
                   {"SubnetId": subnet[1]})

    @rule(target=instances, subnet=subnets, instance_type=INSTANCE_TYPES)
    def run_instance(self, subnet, instance_type):
        responses = self._both(
            "RunInstances",
            {"SubnetId": subnet[0], "ImageId": "ami-1",
             "InstanceType": instance_type},
            {"SubnetId": subnet[1], "ImageId": "ami-1",
             "InstanceType": instance_type},
        )
        return self._pair(*responses) or ("dangling", "dangling")

    @rule(instance=instances)
    def stop_instance(self, instance):
        self._both("StopInstances", {"InstanceId": instance[0]},
                   {"InstanceId": instance[1]})

    @rule(instance=instances)
    def start_instance(self, instance):
        self._both("StartInstances", {"InstanceId": instance[0]},
                   {"InstanceId": instance[1]})

    @rule(instance=instances)
    def terminate_instance(self, instance):
        self._both("TerminateInstances", {"InstanceId": instance[0]},
                   {"InstanceId": instance[1]})

    @rule(vpc=vpcs, support=BOOLS, hostnames=BOOLS)
    def modify_vpc_dns(self, vpc, support, hostnames):
        params0 = {"VpcId": vpc[0], "EnableDnsSupport": support,
                   "EnableDnsHostnames": hostnames}
        params1 = {"VpcId": vpc[1], "EnableDnsSupport": support,
                   "EnableDnsHostnames": hostnames}
        self._both("ModifyVpcAttribute", params0, params1)

    @rule(vpc=vpcs)
    def describe_vpc(self, vpc):
        cloud_response, emulator_response = self._both(
            "DescribeVpcs", {"VpcId": vpc[0]}, {"VpcId": vpc[1]}
        )
        if cloud_response.success:
            # Scalar attributes must agree field by field.
            for key, value in cloud_response.data.items():
                if isinstance(value, (bool, int)) or (
                    isinstance(value, str) and "-" not in value
                ):
                    assert emulator_response.data.get(key) == value, key


DifferentialMachine.TestCase.settings = settings(
    max_examples=25, stateful_step_count=30, deadline=None,
)

TestDifferential = DifferentialMachine.TestCase


@pytest.mark.parametrize("seed", [11, 22])
def test_long_random_walk(seed):
    """A longer scripted random walk with the fuzzer's machinery."""
    from repro.alignment import RandomFuzzer

    report = RandomFuzzer(_BUILD.module, seed=seed).run(
        make_cloud("ec2"), _BUILD.make_backend(), budget=600
    )
    assert report.divergence_count == 0
