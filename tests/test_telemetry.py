"""Tests for the telemetry subsystem: spans, metrics, exporters, the
run report, chaos-event accounting, and the null sink's zero-overhead
guarantee."""

import json

import pytest

from repro.cli import main
from repro.core import build_learned_emulator
from repro.telemetry import (
    load_trace,
    MetricsRegistry,
    NULL_TELEMETRY,
    quantile,
    render_trace_report,
    RunReport,
    Telemetry,
    TraceError,
    write_trace,
)
from repro.telemetry.core import ensure_telemetry


class TestSpans:
    def test_nesting_builds_a_tree(self):
        tele = Telemetry(service="t")
        with tele.span("build", kind="build") as outer:
            with tele.span("extraction", kind="phase") as inner:
                assert tele.tracer.current is inner
            with tele.span("alignment", kind="phase"):
                pass
        assert tele.tracer.current is None
        assert [root.name for root in tele.tracer.roots] == ["build"]
        assert [child.name for child in outer.children] == [
            "extraction", "alignment",
        ]
        assert inner.parent_id == outer.span_id

    def test_span_ids_are_sequential_and_deterministic(self):
        tele = Telemetry()
        with tele.span("a"), tele.span("b"):
            pass
        ids = [span.span_id for span in tele.tracer.walk()]
        assert ids == ["s1", "s2"]

    def test_exception_marks_span_errored(self):
        tele = Telemetry()
        with pytest.raises(RuntimeError):
            with tele.span("work"):
                raise RuntimeError("boom")
        (span,) = tele.tracer.roots
        assert span.status == "error"
        assert span.attributes["exception"] == "RuntimeError"
        assert tele.tracer.current is None

    def test_events_attach_to_innermost_open_span(self):
        tele = Telemetry()
        tele.event("orphan")
        with tele.span("outer"):
            with tele.span("inner") as inner:
                tele.event("retry", code="InternalError")
        assert [event.name for event in inner.events] == ["retry"]
        assert [event.name for event in tele.orphan_events] == ["orphan"]
        assert sorted(e.name for e in tele.iter_events()) == [
            "orphan", "retry",
        ]

    def test_durations_track_the_virtual_clock(self):
        tele = Telemetry()
        with tele.span("slow") as span:
            tele.clock.sleep(1.5)
        assert span.duration == pytest.approx(1.5)


class TestMetrics:
    def test_counter_and_gauge(self):
        registry = MetricsRegistry()
        registry.counter("calls").inc()
        registry.counter("calls").inc(4)
        registry.gauge("fleet").set(500)
        snap = registry.snapshot()
        assert snap["calls"] == {"type": "counter", "value": 5}
        assert snap["fleet"]["value"] == 500

    def test_labels_create_distinct_series(self):
        registry = MetricsRegistry()
        registry.counter("errors", code="A").inc()
        registry.counter("errors", code="B").inc(2)
        snap = registry.snapshot()
        assert snap["errors{code=A}"]["value"] == 1
        assert snap["errors{code=B}"]["value"] == 2

    def test_kind_collision_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(TypeError):
            registry.gauge("x")

    def test_histogram_percentiles_interpolate(self):
        registry = MetricsRegistry()
        hist = registry.histogram("latency")
        for value in range(1, 101):
            hist.observe(float(value))
        summary = hist.summary()
        assert summary["count"] == 100
        assert summary["p50"] == pytest.approx(50.5)
        assert summary["p95"] == pytest.approx(95.05)
        assert summary["p99"] == pytest.approx(99.01)
        assert summary["max"] == 100.0

    def test_histogram_window_edges(self):
        # Empty and single-sample windows must not fabricate a
        # distribution: empty stays all-zero with count 0, a lone
        # sample is every quantile, and a two-sample window
        # interpolates instead of collapsing p50 onto the minimum.
        assert quantile([], 0.95) is None
        assert quantile([7.0], 0.5) == quantile([7.0], 0.99) == 7.0
        assert quantile([10.0, 1000.0], 0.5) == pytest.approx(505.0)
        hist = MetricsRegistry().histogram("empty")
        summary = hist.summary()
        assert summary["count"] == 0
        assert summary["p95"] == 0.0
        hist.observe(3.0)
        lone = hist.summary()
        assert lone["p50"] == lone["p95"] == lone["p99"] == 3.0

    def test_histogram_timer_observes_duration(self):
        hist = MetricsRegistry().histogram("t")
        ticks = iter([10.0, 12.5])
        with hist.timer(clock=lambda: next(ticks)):
            pass
        assert hist.values == [2.5]


class TestNullSink:
    def test_null_sink_is_allocation_light(self):
        first = NULL_TELEMETRY.span("a", kind="b", attr=1)
        second = NULL_TELEMETRY.span("c")
        assert first is second  # one shared context object, no per-call state
        with first as span:
            span.set("k", "v")
            span.event("e")
        assert NULL_TELEMETRY.counter("x") is NULL_TELEMETRY.histogram("y")
        assert not NULL_TELEMETRY.enabled
        assert list(NULL_TELEMETRY.iter_events()) == []

    def test_ensure_telemetry_normalizes(self):
        assert ensure_telemetry(None) is NULL_TELEMETRY
        tele = Telemetry()
        assert ensure_telemetry(tele) is tele


@pytest.fixture(scope="module")
def traced_build():
    tele = Telemetry(service="network_firewall")
    build = build_learned_emulator(
        "network_firewall", seed=7, chaos="off", telemetry=tele
    )
    return build, tele


class TestBuildInstrumentation:
    def test_span_tree_covers_every_layer(self, traced_build):
        __, tele = traced_build
        kinds = {span.kind for span in tele.tracer.walk()}
        assert {"build", "phase", "resource", "llm_call", "round",
                "trace", "api_call"} <= kinds

    def test_phases_nest_under_the_build_span(self, traced_build):
        __, tele = traced_build
        (root,) = tele.tracer.roots
        assert root.kind == "build"
        phases = [c.name for c in root.children if c.kind == "phase"]
        assert phases == ["extraction", "alignment"]

    def test_llm_metrics_match_usage(self, traced_build):
        build, tele = traced_build
        snap = tele.metrics.snapshot()
        prompt = snap["llm.prompt_tokens"]["value"]
        assert prompt == build.llm.usage.prompt_tokens

    def test_api_call_spans_carry_error_codes(self, traced_build):
        __, tele = traced_build
        codes = {
            span.attributes.get("error_code")
            for span in tele.tracer.walk()
            if span.kind == "api_call"
        }
        assert len(codes) > 1  # at least one success (None) + one error

    def test_telemetry_does_not_change_the_build(self, traced_build):
        traced, __ = traced_build
        plain = build_learned_emulator("network_firewall", seed=7,
                                       chaos="off")
        assert set(plain.module.machines) == set(traced.module.machines)
        assert plain.llm.usage == traced.llm.usage
        assert plain.alignment.converged == traced.alignment.converged
        assert plain.alignment.total_repairs == (
            traced.alignment.total_repairs
        )


class TestChaosTelemetry:
    def test_mild_build_events_match_resilience_stats(self):
        tele = Telemetry(service="dynamodb")
        build = build_learned_emulator("dynamodb", seed=7, chaos="mild",
                                       telemetry=tele)
        stats = build.resilience
        counts = {}
        for event in tele.iter_events():
            counts[event.name] = counts.get(event.name, 0) + 1
        assert stats.attempts > 0
        assert counts.get("retry", 0) == stats.retries
        assert counts.get("breaker_trip", 0) == stats.breaker_trips
        assert counts.get("gave_up", 0) == stats.gave_ups
        assert counts.get("deadline_hit", 0) == stats.deadline_hits

    def test_off_profile_with_null_sink_produces_no_telemetry(self):
        build = build_learned_emulator("network_firewall", seed=7,
                                       chaos="off")
        # The null path never attaches a sink anywhere.
        assert build.llm.telemetry is None
        assert build.make_backend()._telemetry is None

    def test_virtual_clock_is_shared_with_resilience(self):
        tele = Telemetry(service="dynamodb")
        build = build_learned_emulator("dynamodb", seed=7, chaos="mild",
                                       telemetry=tele)
        if build.resilience.retries:
            # Backoff waits advanced the telemetry clock.
            assert tele.clock.now() > 0.0


class TestExportAndReport:
    def test_jsonl_round_trip(self, traced_build, tmp_path):
        build, tele = traced_build
        report = RunReport.from_build(build, telemetry=tele)
        path = write_trace(tele, tmp_path / "run.jsonl", report=report)
        lines = path.read_text().splitlines()
        records = [json.loads(line) for line in lines]
        assert records[0]["type"] == "meta"
        assert records[0]["schema"] == 2
        assert records[0]["obs"] is False  # batch build: no serving plane
        assert records[-1]["type"] == "report"
        data = load_trace(path)
        assert data.meta["service"] == "network_firewall"
        assert len(data.spans) == records[0]["spans"]
        assert data.report["llm"]["total_tokens"] == (
            build.llm.usage.prompt_tokens
            + build.llm.usage.completion_tokens
        )

    def test_load_trace_rejects_non_traces(self, tmp_path):
        bogus = tmp_path / "x.jsonl"
        bogus.write_text("not json\n")
        with pytest.raises(TraceError):
            load_trace(bogus)
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        with pytest.raises(TraceError):
            load_trace(empty)

    def test_trace_report_renders_breakdown(self, traced_build, tmp_path):
        build, tele = traced_build
        report = RunReport.from_build(build, telemetry=tele)
        path = write_trace(tele, tmp_path / "run.jsonl", report=report)
        text = render_trace_report(load_trace(path))
        assert "extraction" in text
        assert "alignment" in text
        assert "llm:" in text
        assert "api calls:" in text
        assert "faults:" in text
        assert "span tree:" in text

    def test_run_report_console_lines(self, traced_build):
        build, tele = traced_build
        text = RunReport.from_build(build).render_console()
        usage = build.llm.usage
        assert "service:   network_firewall" in text
        assert (
            f"llm calls: {usage.requests} ({usage.prompt_tokens} prompt + "
            f"{usage.completion_tokens} completion = "
            f"{usage.prompt_tokens + usage.completion_tokens} tokens, "
            f"{usage.failed_requests} failed)"
        ) in text
        # A clean run shows no resilience line.
        assert "resilience:" not in text


class TestCli:
    def test_build_telemetry_flag_writes_jsonl(self, tmp_path, capsys):
        path = tmp_path / "run.jsonl"
        rc = main(["build", "network_firewall", "--chaos", "off",
                   "--telemetry", str(path)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "completion" in out
        assert f"telemetry: {path}" in out
        data = load_trace(path)
        kinds = {span["kind"] for span in data.spans}
        assert {"build", "phase", "resource", "llm_call", "api_call"} <= (
            kinds
        )

    def test_build_json_flag_emits_machine_readable_report(self, capsys):
        rc = main(["build", "network_firewall", "--chaos", "off", "--json"])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["service"] == "network_firewall"
        assert payload["llm"]["completion_tokens"] > 0
        assert payload["llm"]["total_tokens"] == (
            payload["llm"]["prompt_tokens"]
            + payload["llm"]["completion_tokens"]
        )
        assert payload["resilience"]["clean"] is True

    def test_build_without_flag_emits_no_telemetry(self, tmp_path,
                                                   capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        rc = main(["build", "network_firewall", "--chaos", "off"])
        assert rc == 0
        assert "telemetry" not in capsys.readouterr().out
        assert list(tmp_path.iterdir()) == []

    def test_report_renders_saved_trace(self, tmp_path, capsys):
        path = tmp_path / "run.jsonl"
        assert main(["build", "network_firewall", "--chaos", "off",
                     "--telemetry", str(path)]) == 0
        capsys.readouterr()
        rc = main(["report", str(path)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Telemetry report" in out
        assert "alignment" in out

    def test_report_rejects_a_bad_trace_path(self, tmp_path, capsys):
        rc = main(["report", str(tmp_path / "missing.jsonl")])
        assert rc == 2
        assert "error" in capsys.readouterr().err
