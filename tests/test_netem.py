"""Tests for the network-realistic fault topology (repro.netem)."""

import pytest

from repro.core import build_learned_emulator
from repro.durability.snapshot import (
    registry_diff,
    registry_dump,
    restore_registry,
    snapshot_registry,
)
from repro.interpreter.machine import Registry
from repro.netem import (
    FaultTimeline,
    LinkSpec,
    NetEm,
    NetworkEvent,
    NetworkTopology,
    Placer,
    ReplicaSet,
    SweepConfig,
    SweepGrid,
    partition_window,
    render_heatmap,
    run_sweep,
    seeded_partitions,
    three_region_topology,
    uniform_topology,
    validate_sweep,
)
from repro.resilience.breaker import CircuitBreaker, CLOSED, HALF_OPEN, OPEN
from repro.resilience.errors import (
    CircuitOpenError,
    DeadlineExceeded,
    TransientServiceError,
)
from repro.resilience.policy import RetryPolicy, VirtualClock
from repro.resilience.retry import retry_call
from repro.resilience.stats import ResilienceStats
from repro.scenarios.geo import (
    multi_region_failover,
    noisy_cross_region_replication,
    partition_heal_convergence,
)
from repro.serve import FrontDoor, LoadGenerator
from repro.telemetry import Telemetry


@pytest.fixture(scope="module")
def build():
    return build_learned_emulator("ec2", seed=7, align=False)


REGIONS = ("us-east-1", "us-west-2", "eu-west-1")


class TestTopology:
    def test_same_region_link_is_lan(self):
        topology = NetworkTopology(list(REGIONS))
        link = topology.link("us-east-1", "us-east-1")
        assert link.spec.base_rtt < 0.001
        assert link.spec.loss == 0.0

    def test_undeclared_cross_region_link_uses_default(self):
        topology = NetworkTopology(
            list(REGIONS),
            default=LinkSpec(src="", dst="", base_rtt=0.07, loss=0.01),
        )
        link = topology.link("us-east-1", "eu-west-1")
        assert link.spec.base_rtt == 0.07
        assert link.spec.loss == 0.01

    def test_connect_declares_both_directions(self):
        topology = NetworkTopology(list(REGIONS))
        topology.connect("us-east-1", "eu-west-1", base_rtt=0.08)
        assert topology.link("us-east-1", "eu-west-1").spec.base_rtt == 0.08
        assert topology.link("eu-west-1", "us-east-1").spec.base_rtt == 0.08

    def test_partition_heal_records_window(self):
        topology = three_region_topology()
        topology.partition("us-east-1", "eu-west-1", now=10.0)
        assert topology.partitioned("us-east-1", "eu-west-1")
        assert topology.partitioned("eu-west-1", "us-east-1")
        assert not topology.partitioned("us-east-1", "us-west-2")
        topology.heal("us-east-1", "eu-west-1", now=25.0)
        assert not topology.partitioned("us-east-1", "eu-west-1")
        report = topology.partition_report()
        assert report["us-east-1->eu-west-1"] == [(10.0, 25.0)]

    def test_degrade_scales_rtt_and_loss(self):
        topology = three_region_topology()
        link = topology.link("us-east-1", "eu-west-1")
        healthy = link.effective_rtt(0.0)
        topology.degrade("us-east-1", "eu-west-1",
                         rtt_multiplier=4.0, extra_loss=0.2)
        assert link.effective_rtt(0.0) == pytest.approx(4.0 * healthy)
        assert link.effective_loss == pytest.approx(0.2 + link.spec.loss)
        topology.restore("us-east-1", "eu-west-1")
        assert link.effective_rtt(0.0) == pytest.approx(healthy)

    def test_fair_share_transfer_time(self):
        link = NetworkTopology(["a", "b"]).link("a", "b")
        alone = link.transfer_seconds(100.0, sharers=1)
        shared = link.transfer_seconds(100.0, sharers=4)
        assert shared == pytest.approx(4.0 * alone)


class TestTimeline:
    def test_advance_applies_each_event_once(self):
        topology = three_region_topology()
        timeline = FaultTimeline(
            partition_window("us-east-1", "eu-west-1", start=5.0,
                             duration=10.0)
        )
        assert timeline.advance(topology, 1.0) == 0
        assert timeline.advance(topology, 6.0) == 1
        assert topology.partitioned("us-east-1", "eu-west-1")
        assert timeline.advance(topology, 6.0) == 0  # idempotent
        assert timeline.advance(topology, 20.0) == 1
        assert not topology.partitioned("us-east-1", "eu-west-1")

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            NetworkEvent(at=0.0, kind="flap", src="a", dst="b")

    def test_seeded_partitions_deterministic(self):
        a = seeded_partitions(REGIONS, seed=3, horizon=100.0, duration=5.0)
        b = seeded_partitions(REGIONS, seed=3, horizon=100.0, duration=5.0)
        assert a == b
        assert a
        kinds = [event.kind for event in a]
        assert kinds == ["partition", "heal"] * (len(a) // 2)

    def test_zero_duration_is_no_weather(self):
        assert seeded_partitions(REGIONS, seed=3, horizon=100.0,
                                 duration=0.0) == []


class TestNetEm:
    def test_transmit_charges_the_shared_clock(self):
        clock = VirtualClock()
        netem = NetEm(three_region_topology(), clock=clock, seed=5)
        before = clock.now()
        delivery = netem.transmit("us-east-1", "eu-west-1")
        assert delivery.delivered
        assert delivery.latency >= 0.080  # the transatlantic base RTT
        assert clock.now() == pytest.approx(before + delivery.latency)

    def test_transmit_is_seed_deterministic(self):
        outcomes = []
        for __ in range(2):
            netem = NetEm(three_region_topology(), clock=VirtualClock(),
                          seed=9)
            outcomes.append([
                (d.delivered, round(d.latency, 9))
                for d in (
                    netem.transmit("us-east-1", "eu-west-1", key=k)
                    for k in range(20)
                )
            ])
        assert outcomes[0] == outcomes[1]

    def test_partition_rejects_without_latency(self):
        clock = VirtualClock()
        netem = NetEm(three_region_topology(), clock=clock, seed=5)
        netem.topology.partition("us-east-1", "eu-west-1", clock.now())
        before = clock.now()
        delivery = netem.transmit("us-east-1", "eu-west-1")
        assert not delivery.delivered
        assert delivery.reason == "partition"
        assert clock.now() == before  # connection refused, not timeout
        assert netem.stats.partition_rejects == 1

    def test_total_loss_burns_rtt(self):
        clock = VirtualClock()
        topology = uniform_topology(REGIONS, base_rtt=0.05, loss=1.0)
        netem = NetEm(topology, clock=clock, seed=5)
        before = clock.now()
        delivery = netem.transmit("us-east-1", "eu-west-1")
        assert not delivery.delivered
        assert delivery.reason == "loss"
        assert clock.now() > before  # the caller waited for nothing
        assert netem.stats.lost == 1

    def test_bulk_transfer_pays_bandwidth(self):
        clock = VirtualClock()
        topology = uniform_topology(REGIONS, base_rtt=0.0, jitter=0.0,
                                    bandwidth=100.0)
        netem = NetEm(topology, clock=clock, seed=5)
        delivery = netem.transfer("us-east-1", "eu-west-1", size_mb=50.0)
        assert delivery.delivered
        assert delivery.latency == pytest.approx(0.5)  # 50MB @ 100MB/s

    def test_timeline_faults_surface_mid_traffic(self):
        clock = VirtualClock()
        timeline = FaultTimeline(
            partition_window("us-east-1", "eu-west-1", start=1.0,
                             duration=10.0)
        )
        netem = NetEm(three_region_topology(), clock=clock,
                      timeline=timeline, seed=5)
        assert netem.transmit("us-east-1", "eu-west-1").delivered
        clock.sleep(2.0)
        assert netem.transmit("us-east-1", "eu-west-1").reason == (
            "partition"
        )
        clock.sleep(12.0)
        assert netem.transmit("us-east-1", "eu-west-1").delivered


class TestPlacement:
    def test_hints_fold_onto_regions(self):
        placer = Placer(REGIONS)
        assert placer.fold_hint("us-east-1") == "us-east-1"
        assert placer.fold_hint("us-east-1a") == "us-east-1"  # the AZ
        assert placer.fold_hint("eu-west-1c") == "eu-west-1"
        unknown = placer.fold_hint("ap-south-1")
        assert unknown in REGIONS
        assert placer.fold_hint("ap-south-1") == unknown  # stable

    def test_hint_from_params(self):
        placer = Placer(REGIONS)
        assert placer.hint_from(
            {"CidrBlock": "10.0.0.0/24", "AvailabilityZone": "us-west-2b"}
        ) == "us-west-2"
        assert placer.hint_from({"CidrBlock": "10.0.0.0/24"}) is None

    def test_client_region_stable_per_tenant(self):
        placer = Placer(REGIONS, seed=11)
        assert placer.client_region("acme") == placer.client_region("acme")
        assert placer.client_region("acme") in REGIONS

    def test_data_gravity_toggle(self):
        gravity = Placer(REGIONS, data_gravity=True)
        single = Placer(REGIONS, default_region="us-east-1",
                        data_gravity=False)
        assert gravity.region_for_create(
            "CreateVpc", {}, "eu-west-1") == "eu-west-1"
        assert single.region_for_create(
            "CreateVpc", {}, "eu-west-1") == "us-east-1"
        # An explicit hint always wins.
        assert single.region_for_create(
            "CreateSubnet", {"AvailabilityZone": "us-west-2a"},
            "eu-west-1") == "us-west-2"

    def test_resource_region_reads_placements(self):
        placer = Placer(REGIONS)
        registry = Registry()
        registry.place("vpc-00000001", "eu-west-1")
        assert placer.resource_region(
            registry, {"VpcId": "vpc-00000001"}, fallback="us-east-1"
        ) == "eu-west-1"
        assert placer.resource_region(
            registry, {"VpcId": "vpc-unknown"}, fallback="us-east-1"
        ) == "us-east-1"


class TestPlacementSnapshots:
    def test_placements_round_trip_and_diff(self, build):
        emulator = build.make_backend()
        response = emulator.invoke("CreateVpc", {"CidrBlock": "10.0.0.0/16"})
        vpc = response.data["id"]
        emulator.registry.place(vpc, "eu-west-1")
        snapshot = snapshot_registry(emulator.registry)
        assert snapshot["placements"] == {vpc: "eu-west-1"}
        restored = restore_registry(snapshot, build.module.machines)
        assert restored.region_of(vpc) == "eu-west-1"
        assert registry_diff(registry_dump(emulator.registry),
                             registry_dump(restored)) == []
        restored.place(vpc, "us-west-2")
        diffs = registry_diff(registry_dump(emulator.registry),
                              registry_dump(restored))
        assert any("placements" in diff for diff in diffs)

    def test_unplaced_registry_snapshot_has_no_placements_key(self, build):
        emulator = build.make_backend()
        emulator.invoke("CreateVpc", {"CidrBlock": "10.0.0.0/16"})
        assert "placements" not in snapshot_registry(emulator.registry)


class TestReplication:
    def test_lag_bounds_staleness(self, build):
        clock = VirtualClock()
        netem = NetEm(three_region_topology(), clock=clock, seed=5)
        home = build.make_backend()
        replicas = ReplicaSet("us-east-1", list(REGIONS),
                              build.make_backend, lag=1.0)
        home.invoke("CreateVpc", {"CidrBlock": "10.0.0.0/16"})
        replicas.publish(home.snapshot(), clock.now())
        assert replicas.sync(netem, clock.now()) == 0  # not due yet
        assert not replicas.converged(home)
        clock.sleep(1.5)
        assert replicas.sync(netem, clock.now()) == 2
        assert replicas.converged(home)

    def test_partitioned_replica_freezes_then_converges(self, build):
        clock = VirtualClock()
        netem = NetEm(three_region_topology(), clock=clock, seed=5)
        home = build.make_backend()
        replicas = ReplicaSet("us-east-1", list(REGIONS),
                              build.make_backend, lag=0.1)
        netem.topology.partition("us-east-1", "us-west-2", clock.now())
        home.invoke("CreateVpc", {"CidrBlock": "10.0.0.0/16"})
        replicas.publish(home.snapshot(), clock.now())
        clock.sleep(1.0)
        replicas.sync(netem, clock.now())
        divergence = replicas.divergence(home)
        assert "us-west-2" in divergence       # frozen behind the cut
        assert "eu-west-1" not in divergence   # reachable replica caught up
        netem.topology.heal("us-east-1", "us-west-2", clock.now())
        replicas.sync(netem, clock.now())
        assert replicas.converged(home)        # one sync after the heal


class TestRegionGate:
    def make_front(self, build, netem, **kwargs):
        telemetry = Telemetry(service="ec2", clock=netem.clock)
        kwargs.setdefault("rate", 500.0)
        kwargs.setdefault("burst", 200.0)
        return FrontDoor(
            build.module, build.make_backend, clock=netem.clock,
            telemetry=telemetry, network=netem, **kwargs,
        )

    def test_creates_are_placed(self, build):
        netem = NetEm(three_region_topology(), seed=5)
        front = self.make_front(
            build, netem, client_regions={"t": "us-west-2"},
        )
        response = front.invoke(
            "CreateVpc", {"CidrBlock": "10.0.0.0/16"}, api_key="t"
        )
        assert response.success
        tenant = front.router.get("t")
        assert tenant.emulator.registry.region_of(
            response.data["id"]
        ) == "us-west-2"

    def test_partitioned_write_fails_with_region_error(self, build):
        netem = NetEm(three_region_topology(), seed=5)
        front = self.make_front(
            build, netem, home_region="us-east-1",
            client_regions={"t": "eu-west-1"},
            placer=Placer(REGIONS, default_region="us-east-1",
                          data_gravity=False),
        )
        netem.topology.partition("us-east-1", "eu-west-1",
                                 netem.clock.now())
        response = front.invoke(
            "CreateVpc", {"CidrBlock": "10.0.0.0/16"}, api_key="t"
        )
        assert not response.success
        assert response.error_code == "ServiceUnavailable"
        assert "eu-west-1" in response.error_message
        assert "us-east-1" in response.error_message
        # The rejected write never reached the admitted log.
        assert len(front.admitted) == 0

    def test_partitioned_read_served_stale(self, build):
        clock = VirtualClock()
        netem = NetEm(three_region_topology(), clock=clock, seed=5)
        front = self.make_front(
            build, netem, home_region="us-east-1",
            client_regions={"t": "eu-west-1"},
            replication_lag=0.1,
            placer=Placer(REGIONS, default_region="us-east-1",
                          data_gravity=False),
        )
        created = front.invoke(
            "CreateVpc", {"CidrBlock": "10.0.0.0/16"}, api_key="t"
        )
        vpc = created.data["id"]
        clock.sleep(1.0)
        front.invoke("DescribeVpcs", {"VpcId": vpc}, api_key="t")
        netem.topology.partition("us-east-1", "eu-west-1", clock.now())
        response = front.invoke(
            "DescribeVpcs", {"VpcId": vpc}, api_key="t"
        )
        assert response.success
        assert response.data.get("Stale") is True
        assert response.data.get("ReplicaRegion") == "eu-west-1"
        assert netem.stats.stale_reads == 1

    def test_stale_reads_disabled_fail_instead(self, build):
        netem = NetEm(three_region_topology(), seed=5)
        front = self.make_front(
            build, netem, home_region="us-east-1",
            client_regions={"t": "eu-west-1"}, stale_reads=False,
            placer=Placer(REGIONS, default_region="us-east-1",
                          data_gravity=False),
        )
        netem.topology.partition("us-east-1", "eu-west-1",
                                 netem.clock.now())
        response = front.invoke(
            "DescribeVpcs", {"VpcId": "vpc-00000001"}, api_key="t"
        )
        assert not response.success
        assert response.error_code == "ServiceUnavailable"

    def test_load_under_network_stays_linearizable(self, build):
        clock = VirtualClock()
        topology = uniform_topology(REGIONS, base_rtt=0.02, loss=0.05)
        timeline = FaultTimeline(seeded_partitions(
            REGIONS, seed=3, horizon=4.0, duration=1.0, period=1.5,
        ))
        netem = NetEm(topology, clock=clock, timeline=timeline, seed=3)
        front = self.make_front(build, netem)
        generator = LoadGenerator(
            front, seed=3, workers=4, requests_per_worker=25,
            tenants=2, offered_rate=100.0,
        )
        report = generator.run(verify=True)
        assert report.linearizable is True
        assert netem.stats.messages > 0


class TestRetryDeadlineAccounting:
    def test_network_latency_counts_on_success(self):
        clock = VirtualClock()
        stats = ResilienceStats()

        def slow_success():
            clock.sleep(2.0)  # the emulated WAN burning the budget
            return "late"

        with pytest.raises(DeadlineExceeded):
            retry_call(
                slow_success, clock=clock, stats=stats,
                policy=RetryPolicy(max_attempts=3, deadline=1.0),
            )
        assert stats.deadline_hits == 1

    def test_network_latency_counts_on_failure(self):
        clock = VirtualClock()
        stats = ResilienceStats()

        def slow_failure():
            clock.sleep(2.0)
            raise TransientServiceError("RequestTimeout", "lost")

        # Without in-attempt accounting this would be RetriesExhausted
        # after 3 attempts; the burnt RTT must surface as a deadline.
        with pytest.raises(DeadlineExceeded):
            retry_call(
                slow_failure, clock=clock, stats=stats,
                policy=RetryPolicy(max_attempts=3, deadline=1.0),
            )
        assert stats.attempts == 1
        assert stats.deadline_hits == 1

    def test_fast_success_within_deadline_still_returns(self):
        clock = VirtualClock()

        def quick():
            clock.sleep(0.1)
            return "fine"

        assert retry_call(
            quick, clock=clock,
            policy=RetryPolicy(max_attempts=3, deadline=1.0),
        ) == "fine"


class TestBreakerUnderPartition:
    def test_half_open_probe_must_traverse_healed_link(self):
        clock = VirtualClock()
        timeline = FaultTimeline(
            partition_window("us-east-1", "eu-west-1", start=0.0,
                             duration=30.0)
        )
        netem = NetEm(three_region_topology(), clock=clock,
                      timeline=timeline, seed=5)
        breaker = CircuitBreaker(
            target="eu-west-1", failure_threshold=3, cooldown=5.0,
            clock=clock,
        )

        def call_through():
            breaker.before_call()
            delivery = netem.transmit("us-east-1", "eu-west-1")
            if not delivery.delivered:
                breaker.record_failure()
                raise TransientServiceError(
                    "ServiceUnavailable", "partitioned"
                )
            breaker.record_success()
            return delivery

        # The partition trips the breaker.
        for __ in range(3):
            with pytest.raises(TransientServiceError):
                call_through()
        assert breaker.state == OPEN

        # While open, calls fail fast without touching the network.
        messages = netem.stats.messages
        with pytest.raises(CircuitOpenError):
            call_through()
        assert netem.stats.messages == messages

        # Cooldown passes but the partition is still up: the half-open
        # probe hits the cut link and the breaker re-opens.
        clock.sleep(6.0)
        with pytest.raises(TransientServiceError):
            call_through()
        assert breaker.state == OPEN
        assert breaker.trips == 2

        # The next cooldown expires *after* the heal (t=30): the probe
        # is admitted half-open, the timeline heals the link inside
        # transmit, the probe traverses, and only then does the
        # breaker close.
        clock.sleep(26.0)  # now past both the cooldown and the heal
        assert clock.now() > 30.0
        delivery = call_through()
        assert delivery.delivered
        assert breaker.state == CLOSED

    def test_probe_state_is_half_open_at_admission(self):
        clock = VirtualClock()
        breaker = CircuitBreaker(failure_threshold=1, cooldown=2.0,
                                 clock=clock)
        breaker.record_failure()
        assert breaker.state == OPEN
        clock.sleep(3.0)
        breaker.before_call()
        assert breaker.state == HALF_OPEN


class TestRetryAfterHonored:
    def test_loadgen_honors_admission_hints(self, build):
        front = FrontDoor(
            build.module, build.make_backend,
            rate=5.0, burst=2.0,
        )
        generator = LoadGenerator(
            front, seed=3, workers=2, requests_per_worker=40,
            tenants=1, offered_rate=500.0,  # far over the bucket rate
        )
        report = generator.run(verify=False)
        assert report.shed > 0
        assert report.retry_after_honored > 0
        assert report.retry_after_seconds > 0.0
        assert report.retry_after_log
        for record in report.retry_after_log:
            assert record["honored"] <= record["hint"] or (
                record["honored"] == generator.max_retry_after
            )
            assert record["code"] in {"RequestLimitExceeded",
                                      "ServiceUnavailable"}

    def test_honoring_can_be_disabled(self, build):
        front = FrontDoor(
            build.module, build.make_backend, rate=5.0, burst=2.0,
        )
        generator = LoadGenerator(
            front, seed=3, workers=2, requests_per_worker=40,
            tenants=1, offered_rate=500.0, honor_retry_after=False,
        )
        report = generator.run(verify=False)
        assert report.shed > 0
        assert report.retry_after_honored == 0
        assert report.retry_after_log == []


class TestGeoScenarios:
    def test_multi_region_failover(self, build):
        result = multi_region_failover(build, seed=7)
        assert result["ok"], result
        partitioned = result["phases"]["partitioned"]
        assert partitioned["write_code"] == "ServiceUnavailable"
        assert partitioned["read_stale"] is True
        assert result["stale_reads"] >= 1

    def test_partition_heal_convergence(self, build):
        result = partition_heal_convergence(build, seed=7)
        assert result["ok"], result
        assert result["diverged_during_partition"] is True
        assert result["divergence_after_heal"] == {}

    def test_noisy_replication_hostile_cell(self, build):
        result = noisy_cross_region_replication(
            build, seed=7, loss=0.05, partition_duration=2.0,
            workers=3, requests_per_worker=20,
        )
        assert result["ok"], result
        assert result["load"]["linearizable"] is True


class TestSweep:
    def test_grid_is_the_cross_product(self):
        grid = SweepGrid(losses=(0.0, 0.1), rtts=(0.01,),
                         partition_durations=(0.0, 1.0, 2.0))
        assert len(grid) == 6
        assert len(grid.cells()) == 6

    def test_run_sweep_emits_valid_cells(self, build):
        grid = SweepGrid(losses=(0.0, 0.05), rtts=(0.02,),
                         partition_durations=(0.0, 2.0))
        config = SweepConfig(workers=2, requests_per_worker=10,
                             tenants=1, seed=3)
        payload = run_sweep(build, grid, config)
        assert validate_sweep(payload) == []
        assert len(payload["cells"]) == 4
        assert payload["all_linearizable"] is True
        heatmap = render_heatmap(payload)
        assert "error_rate" in heatmap

    def test_validate_sweep_catches_problems(self):
        assert validate_sweep({}) != []
        assert validate_sweep({"schema": "nope"}) != []
        good_cell = {key: 0 for key in (
            "loss", "base_rtt", "partition_duration", "ok",
            "linearizable", "requests", "errors", "shed", "stale_reads",
            "net_messages", "net_lost", "net_partition_rejects",
            "error_rate", "timeout_rate", "unavailable_rate",
            "stale_ratio", "mean_net_latency",
        )}
        payload = {
            "schema": "repro.netem.sweep/1",
            "grid": {"losses": [0.0], "rtts": [0.01],
                     "partition_durations": [0.0]},
            "cells": [good_cell],
        }
        assert validate_sweep(payload) == []
        bad = dict(payload)
        bad["cells"] = [dict(good_cell, error_rate=3.5)]
        assert any("error_rate" in p for p in validate_sweep(bad))
        missing = dict(payload)
        missing["cells"] = [
            {k: v for k, v in good_cell.items() if k != "stale_reads"}
        ]
        assert any("stale_reads" in p for p in validate_sweep(missing))
