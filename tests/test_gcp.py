"""Tests for the GCP provider: the third documentation format, and the
"universal emulator" axis of §4.4."""

import pytest

from repro.analysis import compare_aws_gcp
from repro.cloud import make_cloud
from repro.core import (
    build_learned_emulator,
    run_multicloud_evaluation,
    wrangled_docs,
)
from repro.docs import build_gcp_catalog, render_gcp_docs, wrangle
from repro.scenarios import gcp_traces, run_trace


class TestGcpWrangling:
    def test_round_trip(self):
        catalog = build_gcp_catalog()
        pages = render_gcp_docs(catalog)
        recovered = wrangle(pages, provider="gcp", service="gcp_compute")
        assert recovered.resource_names() == catalog.resource_names()
        for res in catalog.resources:
            got = recovered.resource(res.name)
            assert got.parent == res.parent
            assert got.api_names() == res.api_names()
            assert [
                (a.name, a.type, a.enum_values, a.default, a.ref)
                for a in got.attributes
            ] == [
                (a.name, a.type, a.enum_values, a.default, a.ref)
                for a in res.attributes
            ]

    def test_dotted_methods_normalized(self):
        catalog = build_gcp_catalog()
        pages = render_gcp_docs(catalog)
        page = next(p for p in pages if p.title == "network")
        assert "compute.networks.insert" in page.text
        recovered = wrangle(pages, provider="gcp", service="gcp_compute")
        assert "networks_insert" in recovered.resource("network").api_names()

    def test_gcp_error_vocabulary_survives(self):
        docs = wrangled_docs("gcp_compute")
        delete = docs.resource("network").api("networks_delete")
        assert "resourceInUseByAnotherResource" in delete.error_codes()


class TestGcpEmulation:
    @pytest.fixture(scope="class")
    def build(self):
        return build_learned_emulator("gcp_compute", mode="constrained",
                                      seed=7)

    def test_alignment_converges(self, build):
        assert build.alignment is not None
        assert build.alignment.converged

    @pytest.mark.parametrize("trace", gcp_traces(), ids=lambda t: t.name)
    def test_traces_align_with_cloud(self, build, trace):
        from repro.alignment import diff_traces

        report = diff_traces(
            make_cloud("gcp_compute"), build.make_backend(), [trace]
        )
        assert report.aligned == 1, report.divergences

    @pytest.mark.parametrize("trace", gcp_traces(), ids=lambda t: t.name)
    def test_expectations_hold_on_cloud(self, trace):
        cloud = make_cloud("gcp_compute")
        run = run_trace(cloud, trace)
        for step, result in zip(trace.steps, run.results):
            expected = True if step.expect_success is None else (
                step.expect_success
            )
            assert result.response.success == expected, (
                f"{trace.name}:{step.api}"
            )

    def test_gcp_lifecycle_semantics(self, build):
        emulator = build.make_backend()
        network = emulator.invoke("networks_insert",
                                  {"Ipv4Range": "10.0.0.0/16"})
        subnet = emulator.invoke(
            "subnetworks_insert",
            {"NetworkId": network.data["id"],
             "IpCidrRange": "10.0.1.0/24", "Region": "us-central1"},
        )
        instance = emulator.invoke(
            "instances_insert",
            {"SubnetworkId": subnet.data["id"],
             "MachineType": "e2-micro"},
        )
        # GCP deletes require TERMINATED, unlike AWS terminate-anytime.
        premature = emulator.invoke(
            "instances_delete", {"InstanceId": instance.data["id"]}
        )
        assert premature.error_code == "resourceNotReady"
        assert emulator.invoke(
            "instances_stop", {"InstanceId": instance.data["id"]}
        ).success
        assert emulator.invoke(
            "instances_delete", {"InstanceId": instance.data["id"]}
        ).success


class TestMultiCloudGcp:
    def test_gcp_replication_accuracy(self):
        results = run_multicloud_evaluation(seed=7, service="gcp_compute")
        aligned, total = results["learned_aligned"].total
        assert (aligned, total) == (4, 4)
        d2c_aligned, __ = results["d2c"].total
        assert d2c_aligned < aligned

    def test_aws_gcp_formal_comparison(self):
        aws = build_learned_emulator("ec2", align=False)
        gcp = build_learned_emulator("gcp_compute", align=False)
        comparisons = compare_aws_gcp(aws.module, gcp.module)
        by_pair = {(c.left_sm, c.right_sm) for c in comparisons}
        assert ("vpc", "network") in by_pair
        assert ("subnet", "subnetwork") in by_pair
        subnet = next(c for c in comparisons if c.right_sm == "subnetwork")
        creates = [p for p in subnet.pairings if p.category == "create"]
        shared = set(creates[0].shared_checks)
        # Both clouds validate CIDR syntax, containment and overlap on
        # subnet creation — the cross-cloud portability result.
        assert {"valid_cidr", "cidr_within", "no_overlap"} <= shared
