"""Tests for the durability layer: atomic writes, the CRC-framed build
journal, kill-point chaos, crash/resume byte-identity, and emulator
snapshot/restore with write-ahead mutation logging."""

import json
import shutil

import pytest

from repro.core.builder import build_learned_emulator
from repro.core.store import load_module, save_build, StoreError
from repro.durability import (
    atomic_write,
    BuildJournal,
    crash_resume_build,
    dir_digest,
    DurabilityError,
    DurabilityStats,
    JOURNAL_NAME,
    MutationLog,
    read_snapshot,
    registry_diff,
    registry_dump,
    restore_registry,
    scan_records,
    snapshot_registry,
    write_snapshot,
)
from repro.durability.journal import decode_line, encode_record
from repro.durability.snapshot import decode_value, encode_value
from repro.interpreter import Emulator
from repro.resilience.chaos import (
    clear_kill_switch,
    install_kill_switch,
    KILL_SITES,
    kill_point,
    KillSwitch,
    SimulatedCrash,
)
from repro.spec import parse_module
from repro.telemetry import RunReport

from .test_interpreter import PUBLIC_IP_MODULE


@pytest.fixture(autouse=True)
def _no_leftover_kill_switch():
    clear_kill_switch()
    yield
    clear_kill_switch()


# ---------------------------------------------------------------------------
# Record framing + torn-tail tolerance
# ---------------------------------------------------------------------------

class TestFraming:
    def test_encode_decode_round_trip(self):
        record = {"type": "resource", "name": "table", "attempts": 2}
        assert decode_line(encode_record(record).rstrip(b"\n")) == record

    def test_flipped_bit_is_rejected(self):
        line = encode_record({"type": "round", "index": 0})
        broken = line.replace(b'"index": 0', b'"index": 1')
        assert decode_line(broken.rstrip(b"\n")) is None

    def test_scan_stops_at_torn_tail(self, tmp_path):
        path = tmp_path / "j"
        whole = encode_record({"type": "a"}) + encode_record({"type": "b"})
        torn = encode_record({"type": "c"})
        path.write_bytes(whole + torn[: len(torn) // 2])
        scan = scan_records(path)
        assert [r["type"] for r in scan.records] == ["a", "b"]
        assert scan.valid_bytes == len(whole)
        assert scan.dropped == 1

    def test_scan_drops_everything_after_corruption(self, tmp_path):
        path = tmp_path / "j"
        lines = [encode_record({"type": "r", "i": i}) for i in range(4)]
        lines[1] = lines[1][:10] + b"X" + lines[1][11:]
        path.write_bytes(b"".join(lines))
        scan = scan_records(path)
        assert [r["i"] for r in scan.records] == [0]
        assert scan.dropped == 3

    def test_resume_truncates_torn_tail_and_continues(self, tmp_path):
        journal = BuildJournal(tmp_path)
        journal.start({"service": "s3"})
        journal.append("resource", name="bucket")
        journal.close()
        with (tmp_path / JOURNAL_NAME).open("ab") as handle:
            handle.write(b'{"crc": 1, "record"')  # torn mid-append

        resumed = BuildJournal(tmp_path)
        records = resumed.resume({"service": "s3"})
        assert [r["type"] for r in records] == ["resource"]
        assert resumed.stats.torn_records_dropped == 1
        assert resumed.stats.resumes == 1
        resumed.append("resource", name="object")
        resumed.close()
        scan = scan_records(tmp_path / JOURNAL_NAME)
        assert scan.dropped == 0
        assert [r.get("name") for r in scan.records[1:]] == [
            "bucket", "object",
        ]


class TestBuildJournal:
    def test_fingerprint_mismatch_refuses_resume(self, tmp_path):
        journal = BuildJournal(tmp_path)
        journal.start({"service": "ec2", "seed": 7})
        journal.close()
        with pytest.raises(DurabilityError, match="fingerprint mismatch"):
            BuildJournal(tmp_path).resume({"service": "ec2", "seed": 8})

    def test_non_journal_file_is_rejected(self, tmp_path):
        path = tmp_path / JOURNAL_NAME
        path.write_bytes(encode_record({"type": "resource", "name": "x"}))
        with pytest.raises(DurabilityError, match="meta record"):
            BuildJournal(tmp_path).resume({"service": "ec2"})

    def test_future_format_version_is_rejected(self, tmp_path):
        path = tmp_path / JOURNAL_NAME
        path.write_bytes(
            encode_record({"type": "meta", "format_version": 999})
        )
        with pytest.raises(DurabilityError, match="format"):
            BuildJournal(tmp_path).resume({})

    def test_empty_journal_resumes_as_fresh_start(self, tmp_path):
        journal = BuildJournal(tmp_path)
        assert journal.resume({"service": "s3"}) == []
        assert journal.of_type("meta")[0]["service"] == "s3"
        journal.close()

    def test_round_records_must_be_contiguous(self, tmp_path):
        journal = BuildJournal(tmp_path)
        journal.start({})
        journal.append("round", index=0)
        journal.append("round", index=2)
        with pytest.raises(DurabilityError, match="contiguous"):
            journal.round_records()
        journal.close()


class TestAtomicWrite:
    def test_writes_and_replaces(self, tmp_path):
        target = tmp_path / "artifact.json"
        atomic_write(target, "old")
        atomic_write(target, "new")
        assert target.read_text() == "new"
        assert list(tmp_path.iterdir()) == [target]  # no tmp debris


# ---------------------------------------------------------------------------
# Kill-point chaos
# ---------------------------------------------------------------------------

class TestKillSwitch:
    def test_fires_at_scheduled_hit_then_never_again(self):
        stats = DurabilityStats()
        switch = KillSwitch({"mid-journal-append": 2}, stats=(stats,))
        switch.check("mid-journal-append")
        with pytest.raises(SimulatedCrash) as exc:
            switch.check("mid-journal-append")
        assert exc.value.site == "mid-journal-append"
        assert exc.value.hit == 2
        assert stats.crashes_injected == 1
        # A dead process makes no further checks; post-fire checks on a
        # cleanup path must pass through instead of re-raising.
        switch.check("mid-journal-append")
        assert stats.crashes_injected == 1

    def test_unknown_site_is_rejected(self):
        with pytest.raises(ValueError, match="unknown kill site"):
            KillSwitch({"not-a-site": 1})

    def test_kill_point_is_free_when_unarmed(self):
        for site in KILL_SITES:
            kill_point(site)  # no switch installed: must not raise

    def test_install_and_clear(self):
        install_kill_switch({"post-extraction-of-resource": 1})
        with pytest.raises(SimulatedCrash):
            kill_point("post-extraction-of-resource")
        clear_kill_switch()
        kill_point("post-extraction-of-resource")

    def test_simulated_crash_evades_except_exception(self):
        # The whole point: retry layers and quarantine catch Exception
        # subclasses, and none of them may absorb a process death.
        assert not issubclass(SimulatedCrash, Exception)

    def test_torn_write_on_mid_append_crash(self, tmp_path):
        journal = BuildJournal(tmp_path)
        journal.start({"service": "s3"})
        install_kill_switch({"mid-journal-append": 1})
        with pytest.raises(SimulatedCrash):
            journal.append("resource", name="bucket")
        clear_kill_switch()
        journal.close()
        scan = scan_records(tmp_path / JOURNAL_NAME)
        assert [r["type"] for r in scan.records] == ["meta"]
        assert scan.dropped == 1  # the half line the crash left behind


# ---------------------------------------------------------------------------
# Crash → resume → byte-identical builds
# ---------------------------------------------------------------------------

def _journaled_build(service, profile, journal_dir, out_dir, resume):
    if out_dir.exists():
        shutil.rmtree(out_dir)
    build = build_learned_emulator(
        service, chaos=profile, journal=journal_dir, resume=resume
    )
    save_build(build, out_dir)
    return build


@pytest.fixture(scope="module")
def control_digests(tmp_path_factory):
    """Digest of an uninterrupted journaled build, per chaos profile."""
    root = tmp_path_factory.mktemp("control")
    digests = {}
    for profile in ("mild", "hostile"):
        out = root / f"out-{profile}"
        _journaled_build("ec2", profile, root / f"j-{profile}", out, False)
        digests[profile] = dir_digest(out)
    return digests


#: Per-site fatal hit counts chosen so the crash lands mid-build with
#: completed work already journaled (a crash before anything durable
#: exists exercises nothing interesting).
SITE_HITS = {
    "post-extraction-of-resource": 5,
    "mid-alignment-round": 2,
    "mid-transition-commit": 7,
    "mid-journal-append": 5,
}

#: The sites reachable from the build path.  The serve-layer sites
#: (``mid-publish``, ``mid-serve-wal-append``) never fire during a
#: build — their crash/recovery coverage lives in the shard worker
#: tests (tests/test_shard.py).
BUILD_SITES = tuple(SITE_HITS)


class TestCrashResume:
    @pytest.mark.parametrize("site", BUILD_SITES)
    @pytest.mark.parametrize("profile", ["mild", "hostile"])
    def test_resumed_build_is_byte_identical(
        self, site, profile, control_digests, tmp_path
    ):
        out = tmp_path / "out"
        run = crash_resume_build(
            lambda resume: _journaled_build(
                "ec2", profile, tmp_path / "journal", out, resume
            ),
            [{site: SITE_HITS[site]}],
        )
        assert run.crashes == [(site, SITE_HITS[site])]
        assert run.attempts == 2
        assert dir_digest(out) == control_digests[profile]
        assert run.build.durability.resumes == 1
        assert run.build.durability.journal_replays > 0

    @pytest.mark.parametrize("profile", ["mild", "hostile"])
    def test_repeated_crashes_still_converge(
        self, profile, control_digests, tmp_path
    ):
        out = tmp_path / "out"
        schedules = [
            {"post-extraction-of-resource": 3},
            {"mid-journal-append": 1},
            {"mid-alignment-round": 1},
            {"mid-transition-commit": 4},
        ]
        run = crash_resume_build(
            lambda resume: _journaled_build(
                "ec2", profile, tmp_path / "journal", out, resume
            ),
            list(schedules),
        )
        assert run.stats.crashes_injected >= 3
        assert dir_digest(out) == control_digests[profile]

    def test_llm_accounting_survives_resume(self, tmp_path):
        reference = build_learned_emulator(
            "ec2", chaos="hostile", journal=tmp_path / "jref"
        )
        run = crash_resume_build(
            lambda resume: build_learned_emulator(
                "ec2", chaos="hostile", journal=tmp_path / "journal",
                resume=resume,
            ),
            [{"post-extraction-of-resource": 5}],
        )
        assert run.build.llm.usage.as_dict() == reference.llm.usage.as_dict()

    def test_harness_gives_up_past_max_attempts(self, tmp_path):
        def always_crashing(resume):
            install_kill_switch({"mid-journal-append": 1})
            kill_point("mid-journal-append")

        with pytest.raises(RuntimeError, match="did not converge"):
            crash_resume_build(always_crashing, [], max_attempts=3)

    def test_resumed_module_reloads_and_serves(self, tmp_path):
        out = tmp_path / "out"
        crash_resume_build(
            lambda resume: _journaled_build(
                "dynamodb", "mild", tmp_path / "journal", out, resume
            ),
            [{"post-extraction-of-resource": 2}],
        )
        saved = load_module(out)
        assert saved.manifest["aligned"] is True
        assert saved.make_backend().invoke(
            "CreateTable", {"table_name": "t", "billing_mode": "PROVISIONED"}
        ).success


# ---------------------------------------------------------------------------
# Emulator snapshot / restore / write-ahead log
# ---------------------------------------------------------------------------

def toy_emulator(**kwargs):
    module = parse_module(PUBLIC_IP_MODULE, service="toy")
    return module, Emulator(module, **kwargs)


def drive(emulator):
    """A short mutating workload over the toy module."""
    ip = emulator.invoke("CreatePublicIP", {"region": "us-east"})
    nic = emulator.invoke("CreateNIC", {"zone": "us-east"})
    emulator.invoke(
        "AssociateNIC",
        {"public_ip_id": ip.data["id"], "nic_ref": nic.data["id"]},
    )
    return ip.data["id"], nic.data["id"]


class TestValueCodec:
    @pytest.mark.parametrize("value", [
        None, True, 3, 2.5, "text", [1, 2], {"k": "v"},
        (1, "two"), {3, 1, 2}, {("a", 1): "composite-key"},
        {"$repro": "looks-tagged"}, [{"deep": [(1,), {2}]}],
    ])
    def test_round_trip(self, value):
        assert decode_value(json.loads(
            json.dumps(encode_value(value))
        )) == value

    def test_unsupported_type_is_loud(self):
        with pytest.raises(DurabilityError, match="cannot snapshot"):
            encode_value(object())


class TestSnapshotRestore:
    def test_restore_reproduces_registry_exactly(self, tmp_path):
        module, emulator = toy_emulator()
        drive(emulator)
        snapshot = snapshot_registry(emulator.registry)
        write_snapshot(tmp_path / "snap.json", snapshot)

        restored = restore_registry(
            read_snapshot(tmp_path / "snap.json"), module.machines
        )
        assert registry_diff(
            registry_dump(emulator.registry), registry_dump(restored)
        ) == []

    def test_diff_pinpoints_divergence(self):
        module, emulator = toy_emulator()
        drive(emulator)
        dump = registry_dump(emulator.registry)
        emulator.invoke("CreatePublicIP", {"region": "us-west"})
        divergences = registry_diff(dump, registry_dump(emulator.registry))
        assert divergences  # extra instance + counter drift
        assert any("public_ip" in line for line in divergences)

    def test_restore_refuses_unknown_machine(self):
        __, emulator = toy_emulator()
        drive(emulator)
        snapshot = snapshot_registry(emulator.registry)
        with pytest.raises(DurabilityError, match="does not define"):
            restore_registry(snapshot, {})

    def test_emulator_restore_continues_serving(self):
        module, emulator = toy_emulator()
        ip_id, nic_id = drive(emulator)
        snapshot = emulator.snapshot()

        __, fresh = toy_emulator()
        fresh.restore(snapshot)
        described = fresh.invoke("DescribeNIC", {"nic_id": nic_id})
        assert described.data["attached_ip"] == ip_id
        # New IDs continue from the snapshotted counters, not from 1.
        again = fresh.invoke("CreatePublicIP", {"region": "us-west"})
        assert again.data["id"] == "public_ip-00000002"


class TestMutationLog:
    def test_recover_replays_to_pre_crash_state(self, tmp_path):
        module, emulator = toy_emulator(wal=tmp_path)
        snapshot = emulator.snapshot()  # checkpoint before any traffic
        drive(emulator)
        expected = registry_dump(emulator.registry)

        # "Reboot": fresh process, same WAL directory, old snapshot.
        __, revived = toy_emulator(wal=tmp_path)
        replayed = revived.recover(snapshot)
        assert replayed == 3
        assert revived.durability.replayed_mutations == 3
        assert registry_diff(expected, registry_dump(revived.registry)) == []

    def test_snapshot_seq_skips_already_covered_mutations(self, tmp_path):
        module, emulator = toy_emulator(wal=tmp_path)
        drive(emulator)
        snapshot = emulator.snapshot()  # taken *after* the traffic
        emulator.invoke("CreatePublicIP", {"region": "us-west"})
        expected = registry_dump(emulator.registry)

        __, revived = toy_emulator(wal=tmp_path)
        assert revived.recover(snapshot) == 1  # only the post-snapshot call
        assert registry_diff(expected, registry_dump(revived.registry)) == []

    def test_mid_transition_commit_crash_is_redone_from_wal(self, tmp_path):
        module, emulator = toy_emulator(wal=tmp_path)
        snapshot = emulator.snapshot()
        emulator.invoke("CreatePublicIP", {"region": "us-east"})
        install_kill_switch({"mid-transition-commit": 1})
        with pytest.raises(SimulatedCrash):
            emulator.invoke("CreateNIC", {"zone": "us-east"})
        clear_kill_switch()

        # The intent was logged ahead of the commit, so recovery redoes
        # it: the revived emulator matches a run where the call landed.
        __, revived = toy_emulator(wal=tmp_path)
        revived.recover(snapshot)
        __, control = toy_emulator()
        control.invoke("CreatePublicIP", {"region": "us-east"})
        control.invoke("CreateNIC", {"zone": "us-east"})
        assert registry_diff(
            registry_dump(control.registry), registry_dump(revived.registry)
        ) == []

    def test_reset_is_logged_and_replayed(self, tmp_path):
        module, emulator = toy_emulator(wal=tmp_path)
        snapshot = emulator.snapshot()
        drive(emulator)
        emulator.reset()
        emulator.invoke("CreatePublicIP", {"region": "us-west"})
        expected = registry_dump(emulator.registry)

        __, revived = toy_emulator(wal=tmp_path)
        revived.recover(snapshot)
        assert registry_diff(expected, registry_dump(revived.registry)) == []

    def test_torn_wal_tail_is_dropped(self, tmp_path):
        module, emulator = toy_emulator(wal=tmp_path)
        drive(emulator)
        wal_path = emulator._wal.path
        emulator._wal.close()
        data = wal_path.read_bytes()
        wal_path.write_bytes(data[:-7])  # tear the last record

        stats = DurabilityStats()
        log = MutationLog(tmp_path, stats=stats)
        assert len(log.records) == 2
        assert stats.torn_records_dropped == 1
        log.close()


# ---------------------------------------------------------------------------
# Serve-layer kill sites (MVCC publish + shard WAL append)
# ---------------------------------------------------------------------------

class TestServeLayerKillSites:
    """The sharded-serving kill sites compose with the durability
    chaos machinery: a crash mid-publish commits but never publishes,
    a crash mid-transition-commit under MVCC leaves the published view
    clean, and the serve WAL's append site tears independently of the
    build journal's."""

    def test_serve_sites_are_registered(self):
        assert "mid-publish" in KILL_SITES
        assert "mid-serve-wal-append" in KILL_SITES

    def _concurrent(self):
        from repro.serve import ConcurrentEmulator

        module = parse_module(PUBLIC_IP_MODULE, service="toy")
        inner = Emulator(module, mvcc=True)
        return inner, ConcurrentEmulator(inner, tenant="t", log=None)

    def test_mid_publish_crash_commits_but_never_publishes(self):
        inner, concurrent = self._concurrent()
        concurrent.invoke("CreatePublicIP", {"region": "us-east"})
        published = concurrent.snapshot()
        install_kill_switch({"mid-publish": 1})
        with pytest.raises(SimulatedCrash):
            concurrent.invoke("CreateNIC", {"zone": "us-east"})
        clear_kill_switch()
        # The write reached the live registry (commit happened)...
        assert registry_diff(
            published, registry_dump(inner.registry)
        ) != []
        # ...but readers still see the last published version: the
        # crash fired before the new version entered the chain.
        assert registry_diff(published, concurrent.snapshot()) == []

    def test_mid_transition_commit_under_mvcc_publish(self):
        inner, concurrent = self._concurrent()
        concurrent.invoke("CreatePublicIP", {"region": "us-east"})
        published = concurrent.snapshot()
        install_kill_switch({"mid-transition-commit": 1})
        with pytest.raises(SimulatedCrash):
            concurrent.invoke("CreateNIC", {"zone": "us-east"})
        clear_kill_switch()
        # Nothing committed, nothing published: both views unchanged.
        assert registry_diff(published, concurrent.snapshot()) == []
        # The wrapper recovers: the next write commits and publishes.
        response = concurrent.invoke("CreateNIC", {"zone": "us-east"})
        assert response.success
        assert registry_diff(published, concurrent.snapshot()) != []

    def test_serve_wal_append_site_tears_independently(self, tmp_path):
        from repro.durability.journal import JournalWriter

        serve_log = JournalWriter(
            tmp_path / "serve.wal", fsync=False,
            kill_site="mid-serve-wal-append",
        )
        build_log = JournalWriter(tmp_path / "build.wal", fsync=False)
        install_kill_switch({"mid-serve-wal-append": 1})
        # The build-journal site does not fire on a serve schedule.
        build_log.append({"seq": 1})
        with pytest.raises(SimulatedCrash):
            serve_log.append({"seq": 1})
        clear_kill_switch()
        serve_log.close()
        build_log.close()
        # The serve log holds a torn half-line the scan drops; the
        # build log's record survived intact.
        torn = scan_records(tmp_path / "serve.wal")
        assert torn.records == [] and torn.dropped == 1
        clean = scan_records(tmp_path / "build.wal")
        assert clean.records == [{"seq": 1}] and clean.dropped == 0


# ---------------------------------------------------------------------------
# Store hardening + report surface
# ---------------------------------------------------------------------------

class TestStoreValidation:
    def test_bad_machines_field(self, tmp_path):
        build = build_learned_emulator("s3", align=False)
        save_build(build, tmp_path)
        manifest_path = tmp_path / "manifest.json"
        manifest = json.loads(manifest_path.read_text())
        manifest["machines"] = {"not": "a list"}
        manifest_path.write_text(json.dumps(manifest))
        with pytest.raises(StoreError, match="machines"):
            load_module(tmp_path)

    def test_bad_notfound_codes_field(self, tmp_path):
        build = build_learned_emulator("s3", align=False)
        save_build(build, tmp_path)
        manifest_path = tmp_path / "manifest.json"
        manifest = json.loads(manifest_path.read_text())
        manifest["notfound_codes"] = {"bucket": 404}
        manifest_path.write_text(json.dumps(manifest))
        with pytest.raises(StoreError, match="notfound_codes"):
            load_module(tmp_path)

    def test_corrupt_spec_file(self, tmp_path):
        build = build_learned_emulator("s3", align=False)
        save_build(build, tmp_path)
        spec = next((tmp_path / "specs").glob("*.sm"))
        spec.write_text(spec.read_text()[: len(spec.read_text()) // 2])
        with pytest.raises(StoreError, match="corrupt spec"):
            load_module(tmp_path)


class TestReportSurface:
    def test_unjournaled_report_has_no_durability_block(self):
        build = build_learned_emulator("s3", align=False)
        report = RunReport.from_build(build)
        assert report.durability is None
        assert "durability" not in report.to_dict()

    def test_journaled_report_carries_counters(self, tmp_path):
        run = crash_resume_build(
            lambda resume: build_learned_emulator(
                "s3", journal=tmp_path, resume=resume
            ),
            [{"post-extraction-of-resource": 1}],
        )
        report = RunReport.from_build(run.build)
        counters = report.to_dict()["durability"]
        assert counters["resumes"] == 1
        assert counters["journal_replays"] > 0
        assert "durability:" in report.render_console()
