"""Deeper evaluator semantics: the grammar's corners."""

from repro.interpreter import Emulator
from repro.spec import parse_module


def emulator_for(source: str) -> Emulator:
    return Emulator(parse_module(source, service="toy"))


class TestControlFlow:
    def test_else_if_chain(self):
        emulator = emulator_for(
            """
            SM grader {
              States { grade: str }
              Transitions {
                @create Make() { }
                @modify Grade(grader_id: str, score: int) {
                  if (score >= 90) { write(grade, "A"); }
                  else if (score >= 50) { write(grade, "B"); }
                  else { write(grade, "F"); }
                }
                @describe Show(grader_id: str) { read(grade, grade); }
              }
            }
            """
        )
        subject = emulator.invoke("Make", {}).data["id"]
        for score, expected in ((95, "A"), (60, "B"), (10, "F")):
            emulator.invoke("Grade", {"GraderId": subject, "Score": score})
            shown = emulator.invoke("Show", {"GraderId": subject})
            assert shown.data["grade"] == expected

    def test_emit_computes_derived_values(self):
        emulator = emulator_for(
            """
            SM echo {
              States { prefix: str }
              Transitions {
                @create Make(prefix: str) { write(prefix, prefix); }
                @describe Ping(echo_id: str, word: str) {
                  emit(combined, concat(prefix, "-", word));
                  emit(size, len(word));
                }
              }
            }
            """
        )
        subject = emulator.invoke("Make", {"Prefix": "log"}).data["id"]
        response = emulator.invoke("Ping", {"EchoId": subject,
                                            "Word": "hello"})
        assert response.data["combined"] == "log-hello"
        assert response.data["size"] == 5

    def test_self_attribute_disambiguates_param_shadowing(self):
        emulator = emulator_for(
            """
            SM box {
              States { mode: str = "closed" }
              Transitions {
                @create Make() { }
                @modify SetMode(box_id: str, mode: str) {
                  assert(self.mode != "locked") : BoxLocked;
                  write(mode, mode);
                }
                @modify Lock(box_id: str) { write(mode, "locked"); }
              }
            }
            """
        )
        subject = emulator.invoke("Make", {}).data["id"]
        assert emulator.invoke(
            "SetMode", {"BoxId": subject, "Mode": "open"}
        ).success
        emulator.invoke("Lock", {"BoxId": subject})
        denied = emulator.invoke(
            "SetMode", {"BoxId": subject, "Mode": "open"}
        )
        assert denied.error_code == "BoxLocked"


class TestCrossSmCreation:
    def test_call_on_type_name_creates_instance(self):
        """§4.2: CreateDefaultVPC can call CreateSubnet on a type that
        isn't instantiated yet — the call creates the child machine."""
        emulator = emulator_for(
            """
            SM vpc {
              States { children: int = 0 }
              Transitions {
                @create CreateDefaultVpc() {
                  call(subnet.CreateDefaultSubnet(self));
                  write(children, 1);
                }
                @describe ShowVpc(vpc_id: str) { read(children, children); }
              }
            }
            SM subnet contained_in vpc {
              States { vpc: SM<vpc> }
              Transitions {
                @create CreateDefaultSubnet(vpc_ref: SM<vpc>) {
                  write(vpc, vpc_ref);
                }
              }
            }
            """
        )
        created = emulator.invoke("CreateDefaultVpc", {})
        assert created.success
        subnets = emulator.registry.of_type("subnet")
        assert len(subnets) == 1
        assert subnets[0].state["vpc"] == created.data["id"]
        assert subnets[0].parent_id == created.data["id"]


class TestMessages:
    def test_assert_message_interpolation(self):
        emulator = emulator_for(
            """
            SM quota {
              States { used: int = 3, cap: int = 3 }
              Transitions {
                @create Make() { }
                @modify Consume(quota_id: str) {
                  assert(used < cap)
                    : LimitExceeded("{used} of {cap} slots used on {id}");
                }
              }
            }
            """
        )
        subject = emulator.invoke("Make", {}).data["id"]
        response = emulator.invoke("Consume", {"QuotaId": subject})
        assert response.error_code == "LimitExceeded"
        assert response.error_message == f"3 of 3 slots used on {subject}"

    def test_unknown_placeholders_left_intact(self):
        emulator = emulator_for(
            """
            SM x {
              States { s: str }
              Transitions {
                @create Make() { }
                @modify T(x_id: str) {
                  assert(exists(s)) : Oops("missing {ghost}");
                }
              }
            }
            """
        )
        subject = emulator.invoke("Make", {}).data["id"]
        response = emulator.invoke("T", {"XId": subject})
        assert response.error_message == "missing {ghost}"


class TestDefaults:
    def test_enum_and_literal_defaults(self):
        emulator = emulator_for(
            """
            SM d {
              States {
                mode: enum(on, off) = off,
                count: int = 5,
                flag: bool = true,
                items: list,
                tags: map,
              }
              Transitions {
                @create Make() { }
                @describe Show(d_id: str) {
                  read(mode, mode);
                  read(count, count);
                  read(flag, flag);
                  read(items, items);
                  read(tags, tags);
                }
              }
            }
            """
        )
        subject = emulator.invoke("Make", {}).data["id"]
        shown = emulator.invoke("Show", {"DId": subject}).data
        assert shown == {"mode": "off", "count": 5, "flag": True,
                         "items": [], "tags": {}}


class TestListApis:
    def test_parameterless_describe_enumerates(self):
        emulator = emulator_for(
            """
            SM thing {
              States { s: str }
              Transitions {
                @create Make() { }
                @describe ListThings() { }
              }
            }
            """
        )
        first = emulator.invoke("Make", {}).data["id"]
        second = emulator.invoke("Make", {}).data["id"]
        listing = emulator.invoke("ListThings", {})
        assert listing.data["count"] == 2
        assert listing.data["ids"] == sorted([first, second])

    def test_listing_excludes_other_types_and_deleted(self):
        emulator = emulator_for(
            """
            SM a {
              States { s: str }
              Transitions {
                @create MakeA() { }
                @destroy DropA(a_id: str) { }
                @describe ListA() { }
              }
            }
            SM b {
              States { s: str }
              Transitions { @create MakeB() { } }
            }
            """
        )
        kept = emulator.invoke("MakeA", {}).data["id"]
        dropped = emulator.invoke("MakeA", {}).data["id"]
        emulator.invoke("MakeB", {})
        emulator.invoke("DropA", {"AId": dropped})
        listing = emulator.invoke("ListA", {})
        assert listing.data["ids"] == [kept]
