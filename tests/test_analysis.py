"""Tests for the §4.4 analyses: complexity, coverage, anti-patterns,
the cloud gym, and multi-cloud comparison."""

import pytest

from repro.analysis import (
    AmbiguityTracker,
    analyze_module,
    backend_coverage,
    catalog_coverage,
    CloudGym,
    compare_aws_azure,
    complexity_cdf,
    ComplexityComparison,
    module_complexities,
    public_subnet_task,
    running_instance_task,
    table1_rows,
)
from repro.core import build_learned_emulator


@pytest.fixture(scope="module")
def builds():
    return {
        service: build_learned_emulator(service, mode="perfect", align=False)
        for service in ("ec2", "network_firewall", "dynamodb",
                        "azure_network")
    }


class TestComplexity:
    def test_fig4_sm_counts(self, builds):
        assert len(module_complexities(builds["ec2"].module)) == 28
        assert len(module_complexities(
            builds["network_firewall"].module)) == 8
        assert len(module_complexities(builds["dynamodb"].module)) == 7

    def test_helpers_excluded_from_complexity(self, builds):
        vpc = next(
            c for c in module_complexities(builds["ec2"].module)
            if c.sm == "vpc"
        )
        public = [
            t for t in builds["ec2"].module.get("vpc").transitions.values()
            if not t.name.startswith("_")
        ]
        assert vpc.transitions == len(public)

    def test_cdf_is_monotone_and_ends_at_one(self, builds):
        cdf = complexity_cdf(builds["ec2"].module)
        xs = [x for x, __ in cdf]
        ys = [y for __, y in cdf]
        assert xs == sorted(xs)
        assert ys == sorted(ys)
        assert ys[-1] == pytest.approx(1.0)

    def test_ec2_is_the_most_complex_service(self, builds):
        """Fig. 4's claim: EC2's SMs are more complex than the others'."""
        comparison = ComplexityComparison()
        for service in ("ec2", "network_firewall", "dynamodb"):
            comparison.add(service, builds[service].module)
        summary = comparison.summary()
        assert summary["ec2"]["median"] > summary["network_firewall"][
            "median"
        ]
        assert summary["ec2"]["median"] > summary["dynamodb"]["median"]
        assert summary["ec2"]["mean"] > summary["network_firewall"]["mean"]


class TestCoverage:
    def test_table1_rows(self):
        rows = {row.service: row for row in table1_rows()}
        assert rows["ec2"].percent == 31
        assert rows["dynamodb"].percent == 68
        assert rows["network_firewall"].percent == 11
        assert rows["eks"].percent == 26
        assert rows["overall"].total == 731
        assert rows["overall"].emulated == 236

    def test_learned_full_nfw_coverage(self, builds):
        emulator = builds["network_firewall"].make_backend()
        row = backend_coverage("network_firewall", emulator)
        assert row.emulated == 45
        assert row.total == 45

    def test_learned_full_catalog_coverage_everywhere(self, builds):
        for service in ("ec2", "dynamodb", "network_firewall"):
            emulator = builds[service].make_backend()
            row = catalog_coverage(service, emulator)
            assert row.emulated == row.total, service


class TestAntiPatterns:
    def test_missing_destroy_detected(self, builds):
        findings = analyze_module(builds["ec2"].module)
        kinds = {f.kind for f in findings}
        # NFW's analysis reports have no delete API -> detected there;
        # EC2's instance has no destroy-category API (terminate is a
        # modify), which is itself an API-design observation.
        assert "missing_destroy" in kinds or findings == []

    def test_nfw_flow_operation_flagged(self, builds):
        findings = analyze_module(builds["network_firewall"].module)
        flagged = {f.sm for f in findings if f.kind == "missing_destroy"}
        assert "flow_operation" in flagged
        assert "analysis_report" in flagged

    def test_wide_signature_detected(self, builds):
        findings = analyze_module(builds["ec2"].module)
        wide = [f for f in findings if f.kind == "wide_signature"]
        assert any(f.api == "RunInstances" for f in wide) or not wide

    def test_ambiguity_tracker(self):
        tracker = AmbiguityTracker()
        tracker.record("vpc", "ModifyVpcAttribute")
        tracker.record("vpc", "ModifyVpcAttribute")
        tracker.record("subnet", "CreateSubnet")
        flagged = tracker.flagged(threshold=2)
        assert len(flagged) == 1
        assert flagged[0].sm == "vpc"


class TestCloudGym:
    @pytest.fixture
    def gym(self, builds):
        return CloudGym(
            emulator=builds["ec2"].make_backend(),
            task=public_subnet_task(),
        )

    def test_reset_returns_empty_observation(self, gym):
        assert gym.reset() == {}

    def test_scripted_agent_solves_public_subnet(self, gym):
        gym.reset()
        outcome = gym.step("CreateVpc", {"CidrBlock": "10.0.0.0/16"})
        vpc_id = outcome.response.data["id"]
        assert outcome.reward > 0
        outcome = gym.step(
            "CreateSubnet", {"VpcId": vpc_id, "CidrBlock": "10.0.1.0/24"}
        )
        subnet_id = outcome.response.data["id"]
        outcome = gym.step(
            "ModifySubnetAttribute",
            {"SubnetId": subnet_id, "MapPublicIpOnLaunch": True},
        )
        igw = gym.step("CreateInternetGateway", {})
        outcome = gym.step(
            "AttachInternetGateway",
            {"InternetGatewayId": igw.response.data["id"], "VpcId": vpc_id},
        )
        assert outcome.done
        assert gym.solved

    def test_failed_actions_cost_reward(self, gym):
        gym.reset()
        outcome = gym.step("CreateVpc", {"CidrBlock": "junk"})
        assert not outcome.response.success
        assert outcome.reward < 0

    def test_episode_ends_at_step_budget(self, builds):
        gym = CloudGym(
            emulator=builds["ec2"].make_backend(),
            task=running_instance_task(),
        )
        gym.reset()
        outcome = None
        for __ in range(gym.task.max_steps):
            outcome = gym.step("DescribeVpcs", {"VpcId": "vpc-x"})
        assert outcome is not None and outcome.done
        with pytest.raises(RuntimeError):
            gym.step("DescribeVpcs", {"VpcId": "vpc-x"})


class TestMultiCloud:
    def test_aws_azure_comparison(self, builds):
        comparisons = compare_aws_azure(
            builds["ec2"].module, builds["azure_network"].module
        )
        by_pair = {(c.left_sm, c.right_sm): c for c in comparisons}
        assert ("vpc", "virtual_network") in by_pair
        assert ("subnet", "subnet") in by_pair

    def test_subnet_checks_mostly_shared(self, builds):
        comparisons = compare_aws_azure(
            builds["ec2"].module, builds["azure_network"].module
        )
        subnet = next(
            c for c in comparisons if c.right_sm == "subnet"
        )
        creates = [p for p in subnet.pairings if p.category == "create"]
        assert creates
        shared = set(creates[0].shared_checks)
        # Both clouds validate CIDR syntax, containment and overlap.
        assert "valid_cidr" in shared
        assert "cidr_within" in shared
        assert "no_overlap" in shared

    def test_portability_hazards_surface(self, builds):
        comparisons = compare_aws_azure(
            builds["ec2"].module, builds["azure_network"].module
        )
        # At least one pairing must differ in checks somewhere — the
        # clouds are not perfectly portable.
        assert any(
            not pairing.portable
            for comparison in comparisons
            for pairing in comparison.pairings
        )
