"""Tests for the resilience layer: retry/backoff/deadline machinery,
circuit breakers, chaos injection, and the pipelines' graceful
degradation under the mild and hostile profiles."""

import pytest

from repro.alignment.loop import align_module
from repro.docs import build_catalog, render_docs, wrangle
from repro.extraction.pipeline import run_extraction
from repro.llm.client import make_llm
from repro.resilience import (
    CircuitBreaker,
    Deadline,
    DeadlineExceeded,
    ResilienceStats,
    RetriesExhausted,
    retry_call,
    RetryPolicy,
    TransientServiceError,
    VirtualClock,
)
from repro.resilience.breaker import CLOSED, HALF_OPEN, OPEN
from repro.resilience.chaos import (
    ChaosEngine,
    ChaosProxy,
    chaos_profile,
    HOSTILE_PROFILE,
    MILD_PROFILE,
    resolve_profile,
)
from repro.resilience.errors import CircuitOpenError
from repro.resilience.resilient import ResilientBackend


def wrangled(service="ec2"):
    catalog = build_catalog(service)
    return wrangle(render_docs(catalog), provider=catalog.provider,
                   service=service)


class TestBackoffTiming:
    def test_exponential_growth_without_jitter(self):
        policy = RetryPolicy(base_delay=0.1, multiplier=2.0, max_delay=10.0,
                             jitter="none")
        delays = [policy.backoff_delay(i) for i in range(5)]
        assert delays == [
            pytest.approx(0.1), pytest.approx(0.2), pytest.approx(0.4),
            pytest.approx(0.8), pytest.approx(1.6),
        ]

    def test_ceiling_caps_growth(self):
        policy = RetryPolicy(base_delay=1.0, multiplier=2.0, max_delay=3.0,
                             jitter="none")
        assert policy.backoff_delay(10) == pytest.approx(3.0)

    def test_full_jitter_stays_under_ceiling_and_is_seeded(self):
        policy = RetryPolicy(base_delay=0.5, multiplier=2.0, max_delay=8.0)
        for retry_index in range(6):
            ceiling = policy.backoff_ceiling(retry_index)
            delay = policy.backoff_delay(retry_index, seed=3, key=("x",))
            again = policy.backoff_delay(retry_index, seed=3, key=("x",))
            assert 0.0 <= delay < ceiling
            assert delay == again  # deterministic for a fixed seed/key
        differently = policy.backoff_delay(2, seed=4, key=("x",))
        assert differently != policy.backoff_delay(2, seed=3, key=("x",))

    def test_retry_call_waits_between_attempts(self):
        clock = VirtualClock()
        policy = RetryPolicy(max_attempts=4, base_delay=1.0, max_delay=8.0,
                             jitter="none", deadline=None)
        calls = []

        def flaky():
            calls.append(clock.now())
            if len(calls) < 4:
                raise TransientServiceError("InternalError")
            return "ok"

        stats = ResilienceStats()
        assert retry_call(flaky, policy=policy, clock=clock,
                          stats=stats) == "ok"
        # Waits of 1, 2, 4 virtual seconds between the four attempts.
        assert calls == [0.0, 1.0, 3.0, 7.0]
        assert stats.attempts == 4 and stats.retries == 3
        assert stats.gave_ups == 0
        assert stats.faults_seen == {"InternalError": 3}

    def test_retry_call_gives_up_after_budget(self):
        policy = RetryPolicy(max_attempts=3, jitter="none", deadline=None)
        stats = ResilienceStats()

        def always_down():
            raise TransientServiceError("ServiceUnavailable")

        with pytest.raises(RetriesExhausted):
            retry_call(always_down, policy=policy, stats=stats)
        assert stats.gave_ups == 1 and stats.attempts == 3

    def test_non_transient_errors_pass_through(self):
        policy = RetryPolicy(max_attempts=5)
        stats = ResilienceStats()

        def broken():
            raise ValueError("a real bug, not weather")

        with pytest.raises(ValueError):
            retry_call(broken, policy=policy, stats=stats)
        assert stats.attempts == 1 and stats.retries == 0


class TestDeadlines:
    def test_deadline_expires_on_virtual_clock(self):
        clock = VirtualClock()
        deadline = Deadline.after(clock, 5.0)
        assert not deadline.expired()
        clock.sleep(5.0)
        assert deadline.expired()

    def test_retry_stops_when_backoff_would_blow_deadline(self):
        clock = VirtualClock()
        policy = RetryPolicy(max_attempts=10, base_delay=4.0, max_delay=4.0,
                             jitter="none", deadline=10.0)
        stats = ResilienceStats()

        def always_down():
            raise TransientServiceError("RequestTimeout")

        with pytest.raises(DeadlineExceeded):
            retry_call(always_down, policy=policy, clock=clock, stats=stats)
        assert stats.deadline_hits == 1
        # Two 4s waits fit in a 10s budget; the third would not.
        assert stats.attempts == 3
        assert clock.now() == pytest.approx(8.0)

    def test_emulator_rejects_expired_deadline_before_dispatch(self):
        outcome = run_extraction("ec2", mode="perfect")
        emulator = outcome.build_emulator()
        clock = VirtualClock()
        deadline = Deadline.after(clock, 1.0)
        clock.sleep(2.0)
        response = emulator.invoke(
            "CreateVpc", {"CidrBlock": "10.0.0.0/16"}, deadline=deadline
        )
        assert not response.success
        assert response.error_code == "RequestTimeout"
        # Fail-fast: nothing was created.
        assert list(emulator.registry.of_type("vpc")) == []


class TestCircuitBreaker:
    def make(self, clock=None):
        return CircuitBreaker(target="vpc", failure_threshold=3,
                              cooldown=10.0, clock=clock or VirtualClock())

    def test_opens_after_consecutive_failures(self):
        breaker = self.make()
        for _ in range(2):
            breaker.record_failure()
        assert breaker.state == CLOSED
        breaker.record_failure()
        assert breaker.state == OPEN and breaker.trips == 1

    def test_open_rejects_until_cooldown(self):
        clock = VirtualClock()
        breaker = self.make(clock)
        for _ in range(3):
            breaker.record_failure()
        with pytest.raises(CircuitOpenError):
            breaker.before_call()
        clock.sleep(10.0)
        breaker.before_call()  # cooldown elapsed: probe admitted
        assert breaker.state == HALF_OPEN

    def test_half_open_closes_on_success(self):
        clock = VirtualClock()
        breaker = self.make(clock)
        for _ in range(3):
            breaker.record_failure()
        clock.sleep(10.0)
        breaker.before_call()
        breaker.record_success()
        assert breaker.state == CLOSED
        assert breaker.consecutive_failures == 0

    def test_half_open_reopens_on_failure(self):
        clock = VirtualClock()
        breaker = self.make(clock)
        for _ in range(3):
            breaker.record_failure()
        clock.sleep(10.0)
        breaker.before_call()
        breaker.record_failure()
        assert breaker.state == OPEN and breaker.trips == 2
        with pytest.raises(CircuitOpenError):
            breaker.before_call()

    def test_success_resets_failure_run(self):
        breaker = self.make()
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == CLOSED  # never three in a row


class TestChaosInjection:
    def test_profiles_resolve_by_name_and_env(self, monkeypatch):
        assert chaos_profile("mild") is MILD_PROFILE
        assert resolve_profile("hostile") is HOSTILE_PROFILE
        assert resolve_profile(MILD_PROFILE) is MILD_PROFILE
        monkeypatch.setenv("REPRO_CHAOS_PROFILE", "mild")
        assert resolve_profile(None) is MILD_PROFILE
        monkeypatch.delenv("REPRO_CHAOS_PROFILE")
        assert not resolve_profile(None).active
        with pytest.raises(ValueError):
            chaos_profile("apocalyptic")

    def test_injection_is_deterministic(self):
        outcome = run_extraction("ec2", mode="perfect")

        def codes(seed):
            proxy = ChaosProxy(
                outcome.build_emulator(), ChaosEngine(HOSTILE_PROFILE, seed)
            )
            return [
                proxy.invoke("CreateVpc", {"CidrBlock": "10.0.0.0/16"})
                .error_code
                for _ in range(30)
            ]

        assert codes(5) == codes(5)
        assert codes(5) != codes(6)

    def test_injected_faults_fire_before_the_backend_mutates(self):
        outcome = run_extraction("ec2", mode="perfect")
        emulator = outcome.build_emulator()
        proxy = ChaosProxy(emulator, ChaosEngine(HOSTILE_PROFILE, seed=5))
        created = 0
        for _ in range(40):
            response = proxy.invoke("CreateVpc", {"CidrBlock": "10.0.0.0/16"})
            if response.success:
                created += 1
        # Failed calls left no trace in the wrapped backend.
        assert len(list(emulator.registry.of_type("vpc"))) == created
        assert created < 40  # hostile weather actually fired

    def test_resilient_backend_absorbs_hostile_weather(self):
        outcome = run_extraction("ec2", mode="perfect")
        stats = ResilienceStats()
        backend = ResilientBackend(
            ChaosProxy(outcome.build_emulator(),
                       ChaosEngine(HOSTILE_PROFILE, seed=5)),
            stats=stats, seed=5,
        )
        vpc = backend.invoke("CreateVpc", {"CidrBlock": "10.0.0.0/16"})
        assert vpc.success
        # Eventual-consistency lag + throttles are retried away: the
        # resource is visible immediately through the resilient client.
        described = backend.invoke("DescribeVpcs", {"VpcId": vpc.data["id"]})
        assert described.success
        assert stats.retries > 0 and stats.gave_ups == 0

    def test_real_failures_are_not_retried(self):
        outcome = run_extraction("ec2", mode="perfect")
        stats = ResilienceStats()
        backend = ResilientBackend(outcome.build_emulator(), stats=stats)
        response = backend.invoke("DeleteVpc", {"VpcId": "vpc-99999999"})
        assert not response.success
        assert response.error_code == "InvalidVpcID.NotFound"
        # Bounded waiter retries only; the answer itself is terminal.
        assert stats.gave_ups == 0


class TestGracefulDegradation:
    @pytest.fixture(scope="class")
    def service_doc(self):
        return wrangled("ec2")

    def test_mild_chaos_converges_to_the_fault_free_report(
        self, service_doc
    ):
        def aligned(chaos):
            llm = make_llm("constrained", seed=7)
            outcome = run_extraction(
                "ec2", llm=llm, service_doc=service_doc, chaos=chaos
            )
            assert outcome.quarantined == []
            return align_module(
                outcome.module, outcome.notfound_codes, service_doc, llm,
                chaos=chaos,
            )

        calm = aligned("off")
        stormy = aligned("mild")
        # Identical alignment outcomes: retry + seeded jitter fully
        # absorb mild weather, they do not change behaviour.
        assert stormy.converged == calm.converged
        assert stormy.total_divergences == calm.total_divergences
        assert stormy.total_repairs == calm.total_repairs
        assert [len(r.repairs) for r in stormy.rounds] == [
            len(r.repairs) for r in calm.rounds
        ]
        # ...but the weather was real, and it is accounted.
        assert calm.resilience.clean
        assert stormy.resilience.retries > 0
        assert stormy.resilience.gave_ups == 0

    def test_hostile_extraction_quarantines_instead_of_crashing(
        self, service_doc
    ):
        outcome = run_extraction(
            "ec2", mode="constrained", seed=7, service_doc=service_doc,
            chaos="hostile",
        )
        assert outcome.quarantined  # persistent failures degraded...
        for name in outcome.quarantined:
            spec = outcome.module.machines[name]
            assert spec.transitions == {}  # ...to stub machines
            assert not outcome.state.results[name].report.clean
        survivors = set(outcome.module.machines) - set(outcome.quarantined)
        assert survivors  # the rest of the service still extracted
        assert outcome.resilience.quarantined == len(outcome.quarantined)
        # The stubbed module is still executable.
        emulator = outcome.build_emulator()
        assert emulator.invoke(
            "CreateVpc", {"CidrBlock": "10.0.0.0/16"}
        ).success

    def test_hostile_alignment_finishes_all_rounds(self, service_doc):
        llm = make_llm("constrained", seed=7)
        outcome = run_extraction(
            "ec2", llm=llm, service_doc=service_doc, chaos="hostile"
        )
        report = align_module(
            outcome.module, outcome.notfound_codes, service_doc, llm,
            chaos="hostile",
        )
        assert report.converged
        assert report.resilience.retries > 0
        assert report.chaos_profile == "hostile"
        # Completed rounds were checkpointed in order.
        assert report.checkpoint.completed_rounds == [
            r.index for r in report.rounds if not r.faulted
        ]

    def test_chaos_off_is_byte_identical(self, service_doc, monkeypatch):
        monkeypatch.delenv("REPRO_CHAOS_PROFILE", raising=False)

        def build(chaos):
            llm = make_llm("constrained", seed=7)
            outcome = run_extraction(
                "ec2", llm=llm, service_doc=service_doc, chaos=chaos
            )
            from repro.spec.serializer import serialize_module

            return serialize_module(outcome.module), outcome

        off_text, off_outcome = build("off")
        default_text, default_outcome = build(None)
        assert off_text == default_text
        assert off_outcome.resilience.clean
        assert off_outcome.chaos_profile == "off"
