"""Tests for the provider-specific page renderers (§4.1's formats)."""

import pytest

from repro.docs import (
    build_azure_catalog,
    build_ec2_catalog,
    build_gcp_catalog,
    render_aws_docs,
    render_azure_docs,
    render_docs,
    render_gcp_docs,
)


@pytest.fixture(scope="module")
def aws_pages():
    return render_aws_docs(build_ec2_catalog())


@pytest.fixture(scope="module")
def azure_pages():
    return render_azure_docs(build_azure_catalog())


@pytest.fixture(scope="module")
def gcp_pages():
    return render_gcp_docs(build_gcp_catalog())


class TestAwsLayout:
    """AWS: one paginated reference, resource pages + one page per API."""

    def test_pagination_is_sequential(self, aws_pages):
        numbers = [page.number for page in aws_pages]
        assert numbers == list(range(1, len(aws_pages) + 1))

    def test_one_page_per_resource_plus_apis(self, aws_pages):
        catalog = build_ec2_catalog()
        expected = len(catalog.resources) + len(catalog.api_names())
        assert len(aws_pages) == expected

    def test_resource_page_structure(self, aws_pages):
        vpc_page = next(p for p in aws_pages if p.title == "vpc")
        assert "Resource: vpc" in vpc_page.text
        assert "Attributes" in vpc_page.text
        assert "Actions" in vpc_page.text
        assert "Not-found error code: InvalidVpcID.NotFound" in (
            vpc_page.text
        )

    def test_api_page_structure(self, aws_pages):
        page = next(p for p in aws_pages if p.title == "vpc:CreateVpc")
        for section in ("Request Parameters", "Behavior", "Errors"):
            assert section in page.text
        assert "Category: create" in page.text

    def test_behaviour_sentences_numbered(self, aws_pages):
        page = next(p for p in aws_pages if p.title == "vpc:DeleteVpc")
        assert "1. " in page.text
        assert "DependencyViolation" in page.text

    def test_subnet_page_mentions_containment(self, aws_pages):
        page = next(p for p in aws_pages if p.title == "subnet")
        assert "Contained in: vpc" in page.text


class TestAzureLayout:
    """Azure: per-resource markdown web pages."""

    def test_one_page_per_resource(self, azure_pages):
        assert len(azure_pages) == len(build_azure_catalog().resources)

    def test_markdown_structure(self, azure_pages):
        page = next(p for p in azure_pages if p.title == "virtual_network")
        assert page.text.startswith("# ")
        assert "## virtual_network" in page.text
        assert "### Properties" in page.text
        assert "| name | type | default |" in page.text
        assert "### Operation createOrUpdateVirtualNetwork (create)" in (
            page.text
        )

    def test_behaviour_bullets(self, azure_pages):
        page = next(p for p in azure_pages if p.title == "subnet")
        assert "\n* " in page.text
        assert "NetcfgSubnetRangesOverlap" in page.text


class TestGcpLayout:
    """GCP: REST discovery pages with dotted method ids."""

    def test_one_page_per_resource(self, gcp_pages):
        assert len(gcp_pages) == len(build_gcp_catalog().resources)

    def test_discovery_structure(self, gcp_pages):
        page = next(p for p in gcp_pages if p.title == "network")
        assert "REST Resource: network" in page.text
        assert "Resource representation:" in page.text
        assert '"ipv4_range": string,' in page.text
        assert "Method: compute.networks.insert" in page.text
        assert "Semantics:" in page.text

    def test_enum_fields_render_inline(self, gcp_pages):
        page = next(p for p in gcp_pages if p.title == "instance")
        assert "enum[PROVISIONING, RUNNING, STOPPING, TERMINATED]" in (
            page.text
        )

    def test_reference_fields_render_as_links(self, gcp_pages):
        page = next(p for p in gcp_pages if p.title == "subnetwork")
        assert "resourceLink(network)" in page.text


class TestDispatch:
    def test_render_docs_picks_provider_layout(self):
        azure = render_docs(build_azure_catalog())
        assert azure[0].text.startswith("# ")
        gcp = render_docs(build_gcp_catalog())
        assert gcp[0].text.startswith("REST Resource:")
        aws = render_docs(build_ec2_catalog())
        assert "API Reference" in aws[0].text

    def test_formats_are_mutually_unparseable(self):
        """Each provider's parser rejects the others' layouts — the
        wrangling really is provider-specific (§4.1)."""
        from repro.docs import wrangle, WrangleError

        azure_pages = render_azure_docs(build_azure_catalog())
        with pytest.raises(WrangleError):
            wrangle(azure_pages, provider="gcp")
        gcp_pages = render_gcp_docs(build_gcp_catalog())
        with pytest.raises(WrangleError):
            wrangle(gcp_pages, provider="azure")
