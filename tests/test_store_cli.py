"""Tests for the persistence layer and the command-line interface."""

import json

import pytest

from repro.cli import main
from repro.core import build_learned_emulator
from repro.core.store import (
    load_module,
    save_build,
    save_module,
    StoreError,
)


@pytest.fixture(scope="module")
def nfw_build():
    return build_learned_emulator("network_firewall", seed=7)


class TestStore:
    def test_save_and_reload(self, nfw_build, tmp_path):
        save_build(nfw_build, tmp_path / "emu")
        saved = load_module(tmp_path / "emu")
        assert set(saved.module.machines) == set(
            nfw_build.module.machines
        )
        assert saved.notfound_codes == (
            nfw_build.extraction.notfound_codes
        )
        assert saved.manifest["aligned"] is True

    def test_reloaded_emulator_behaves_identically(self, nfw_build,
                                                   tmp_path):
        save_build(nfw_build, tmp_path / "emu")
        saved = load_module(tmp_path / "emu")
        original = nfw_build.make_backend()
        reloaded = saved.make_backend()
        program = [
            ("CreateFirewallPolicy", {"PolicyName": "p"}),
            ("CreateFirewall",
             {"FirewallName": "f",
              "FirewallPolicyId": "fp-00000001"}),
            ("DeleteFirewallPolicy", {"FirewallPolicyId": "fp-00000001"}),
            ("DescribeFirewall", {"FirewallId": "firewall-00000001"}),
        ]
        for api, params in program:
            assert original.invoke(api, params) == reloaded.invoke(
                api, params
            ), api

    def test_spec_files_are_readable_dsl(self, nfw_build, tmp_path):
        root = save_build(nfw_build, tmp_path / "emu")
        spec_text = (root / "specs" / "firewall.sm").read_text()
        assert spec_text.startswith("SM firewall")
        assert "DeleteFirewall" in spec_text

    def test_missing_manifest_rejected(self, tmp_path):
        with pytest.raises(StoreError):
            load_module(tmp_path)

    def test_corrupt_manifest_rejected(self, tmp_path):
        (tmp_path / "manifest.json").write_text("{not json")
        with pytest.raises(StoreError):
            load_module(tmp_path)

    def test_version_mismatch_rejected(self, nfw_build, tmp_path):
        root = save_build(nfw_build, tmp_path / "emu")
        manifest = json.loads((root / "manifest.json").read_text())
        manifest["format_version"] = 999
        (root / "manifest.json").write_text(json.dumps(manifest))
        with pytest.raises(StoreError):
            load_module(root)

    def test_missing_spec_file_rejected(self, nfw_build, tmp_path):
        root = save_build(nfw_build, tmp_path / "emu")
        (root / "specs" / "firewall.sm").unlink()
        with pytest.raises(StoreError):
            load_module(root)

    def test_save_module_direct(self, nfw_build, tmp_path):
        save_module(nfw_build.module,
                    nfw_build.extraction.notfound_codes,
                    tmp_path / "m")
        saved = load_module(tmp_path / "m")
        assert saved.manifest["service"] == "network_firewall"


class TestCli:
    def test_coverage_table(self, capsys):
        assert main(["coverage"]) == 0
        out = capsys.readouterr().out
        assert "571" in out and "31%" in out

    def test_build_and_save(self, capsys, tmp_path):
        code = main([
            "build", "network_firewall", "--out", str(tmp_path / "e"),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "machines:  8" in out
        assert (tmp_path / "e" / "manifest.json").exists()

    def test_traces_command(self, capsys):
        assert main(["traces", "network_firewall"]) == 0
        out = capsys.readouterr().out
        assert "aligned" in out

    def test_decode_command(self, capsys, tmp_path):
        main(["build", "network_firewall", "--out", str(tmp_path / "e")])
        capsys.readouterr()
        code = main([
            "decode", str(tmp_path / "e"), "DeleteFirewall",
            "FirewallId=missing",
        ])
        assert code == 2
        out = capsys.readouterr().out
        assert "does not exist" in out

    def test_complexity_single_service(self, capsys):
        assert main(["complexity", "network_firewall"]) == 0
        out = capsys.readouterr().out
        assert "network_firewall" in out

    def test_unknown_service_rejected(self):
        with pytest.raises(SystemExit):
            main(["build", "skynet"])
