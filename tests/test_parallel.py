"""Concurrency safety of the wave-parallel build path.

Extraction fans dependency waves onto a thread pool; each resource
carries its own chaos lane (engine seeded from the resource name), so
injected weather depends only on that resource's call history — never
on scheduling.  These tests pin the resulting guarantee: a chaotic
parallel run is indistinguishable from the sequential one, and the
accounting (telemetry events vs. resilience counters) stays exact
under eight-way concurrency.
"""

from collections import Counter

import pytest

from repro.extraction.pipeline import run_extraction
from repro.telemetry import Telemetry


def _outcome(parallel: int, telemetry=None):
    return run_extraction(
        service="ec2", mode="constrained", seed=7,
        chaos="hostile", parallel=parallel, telemetry=telemetry,
    )


@pytest.fixture(scope="module")
def sequential():
    return _outcome(parallel=1)


@pytest.fixture(scope="module")
def parallel_run():
    telemetry = Telemetry()
    return _outcome(parallel=8, telemetry=telemetry), telemetry


def test_parallel_hostile_matches_sequential_sets(sequential, parallel_run):
    """`--parallel 8` under hostile chaos: same extracted and
    quarantined resources as the sequential pass."""
    parallel, __ = parallel_run
    assert sorted(parallel.state.specs) == sorted(sequential.state.specs)
    assert parallel.quarantined == sequential.quarantined
    assert parallel.state.order == sequential.state.order
    # Hostile weather must actually have degraded something, or the
    # equality above proves nothing.
    assert parallel.quarantined


def test_parallel_hostile_matches_sequential_module(sequential,
                                                    parallel_run):
    """The learned module itself is identical, machine for machine."""
    parallel, __ = parallel_run
    assert (parallel.module.machines.keys()
            == sequential.module.machines.keys())
    for name, machine in parallel.module.machines.items():
        assert machine == sequential.module.machines[name], name


def test_parallel_hostile_matches_sequential_accounting(sequential,
                                                        parallel_run):
    """Per-lane weather is schedule-independent, so the merged
    resilience ledger matches the sequential one exactly."""
    parallel, __ = parallel_run
    assert parallel.resilience.as_dict() == sequential.resilience.as_dict()


def test_telemetry_events_match_resilience_counts(parallel_run):
    """Every absorbed fault is surfaced exactly once as an event, even
    when eight lanes emit concurrently."""
    outcome, telemetry = parallel_run
    events = Counter(event.name for event in telemetry.iter_events())
    stats = outcome.resilience
    assert events["retry"] == stats.retries
    assert events["gave_up"] == stats.gave_ups
    assert events["deadline_hit"] == stats.deadline_hits
    assert events["quarantined"] == stats.quarantined
    assert stats.retries > 0
