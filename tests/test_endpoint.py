"""Tests for the JSON wire envelope, plus metamorphic request tests."""

import json

import pytest

from repro.cloud import make_cloud
from repro.core import build_learned_emulator
from repro.interpreter import JsonEndpoint, ProtocolError
from repro.scenarios import evaluation_traces, run_trace


@pytest.fixture(scope="module")
def build():
    return build_learned_emulator("network_firewall", seed=7)


@pytest.fixture
def endpoint(build):
    return JsonEndpoint(backend=build.make_backend(), seed=1)


class TestEnvelope:
    def test_success_envelope(self, endpoint):
        body = endpoint.dispatch({
            "Action": "CreateFirewallPolicy",
            "Parameters": {"PolicyName": "p"},
        })
        assert "ResponseMetadata" in body
        assert body["ResponseMetadata"]["RequestId"]
        assert body["id"].startswith("fp-")
        assert not JsonEndpoint.is_error(body)

    def test_error_envelope(self, endpoint):
        body = endpoint.dispatch({
            "Action": "DeleteFirewall",
            "Parameters": {"FirewallId": "missing"},
        })
        assert JsonEndpoint.is_error(body)
        assert body["Error"]["Code"] == "ResourceNotFoundException"
        assert "does not exist" in body["Error"]["Message"]

    def test_request_ids_are_unique_and_deterministic(self, build):
        first = JsonEndpoint(backend=build.make_backend(), seed=1)
        second = JsonEndpoint(backend=build.make_backend(), seed=1)
        ids_first = [
            first.dispatch({"Action": "ListFirewalls"})[
                "ResponseMetadata"]["RequestId"]
            for __ in range(3)
        ]
        ids_second = [
            second.dispatch({"Action": "ListFirewalls"})[
                "ResponseMetadata"]["RequestId"]
            for __ in range(3)
        ]
        assert ids_first == ids_second
        assert len(set(ids_first)) == 3

    def test_malformed_envelopes_rejected(self, endpoint):
        with pytest.raises(ProtocolError):
            endpoint.dispatch(["not", "an", "object"])
        with pytest.raises(ProtocolError):
            endpoint.dispatch({"Parameters": {}})
        with pytest.raises(ProtocolError):
            endpoint.dispatch({"Action": "X", "Parameters": "oops"})

    def test_text_handler_never_raises(self, endpoint):
        garbage = endpoint.handle("{this is not json")
        body = json.loads(garbage)
        assert body["Error"]["Code"] == "SerializationException"
        bad_shape = endpoint.handle(json.dumps({"Parameters": {}}))
        assert json.loads(bad_shape)["Error"]["Code"] == (
            "SerializationException"
        )

    def test_text_round_trip(self, endpoint):
        reply = endpoint.handle(json.dumps({
            "Action": "CreateFirewallPolicy",
            "Parameters": {"PolicyName": "p"},
        }))
        body = json.loads(reply)
        assert body["id"].startswith("fp-")

    def test_endpoint_wraps_the_cloud_identically(self):
        """The same front door fits the reference cloud: clients can't
        tell emulator from cloud except by behaviour."""
        endpoint = JsonEndpoint(backend=make_cloud("network_firewall"))
        body = endpoint.dispatch({
            "Action": "CreateFirewallPolicy",
            "Parameters": {"PolicyName": "p"},
        })
        assert "ResponseMetadata" in body
        assert not JsonEndpoint.is_error(body)


class TestEnvelopeEdgeCases:
    """Hostile wire input: the text handler must always come back with
    a ``SerializationException`` envelope, never a raised exception."""

    @staticmethod
    def _expect_serialization_error(endpoint, payload):
        reply = endpoint.handle(payload)
        body = json.loads(reply)
        assert body["Error"]["Code"] == "SerializationException"
        assert body["ResponseMetadata"]["RequestId"]
        return body

    @pytest.mark.parametrize("payload", [
        json.dumps(["not", "an", "object"]),
        json.dumps("just a string"),
        json.dumps(42),
        json.dumps(None),
    ])
    def test_non_object_top_level(self, endpoint, payload):
        self._expect_serialization_error(endpoint, payload)

    @pytest.mark.parametrize("request_body", [
        {},                                      # no Action at all
        {"Action": ""},                          # empty Action
        {"Action": None},                        # null Action
        {"Action": 7},                           # non-string Action
        {"Action": "ListFirewalls", "Parameters": ["a", "b"]},
        {"Action": "ListFirewalls", "Parameters": "oops"},
        {"Action": "ListFirewalls", "Parameters": 3},
    ])
    def test_bad_action_or_parameters(self, endpoint, request_body):
        self._expect_serialization_error(
            endpoint, json.dumps(request_body)
        )

    def test_null_parameters_means_empty(self, endpoint):
        reply = endpoint.handle(json.dumps(
            {"Action": "ListFirewalls", "Parameters": None}
        ))
        assert not JsonEndpoint.is_error(json.loads(reply))

    def test_invalid_utf8_bytes(self, endpoint):
        self._expect_serialization_error(endpoint, b"\xff\xfe{}")

    def test_invalid_json_text(self, endpoint):
        body = self._expect_serialization_error(
            endpoint, "{this is not json"
        )
        assert "could not parse" in body["Error"]["Message"]

    def test_valid_utf8_bytes_round_trip(self, endpoint):
        reply = endpoint.handle(json.dumps({
            "Action": "CreateFirewallPolicy",
            "Parameters": {"PolicyName": "p"},
        }).encode("utf-8"))
        body = json.loads(reply)
        assert body["id"].startswith("fp-")

    def test_edge_cases_still_mint_unique_request_ids(self, endpoint):
        ids = {
            json.loads(endpoint.handle(payload))[
                "ResponseMetadata"]["RequestId"]
            for payload in (b"\xff", "{bad", json.dumps([]), "null")
        }
        assert len(ids) == 4

    def test_request_ids_atomic_under_threads(self, build):
        """The id counter increments atomically: N threads hammering
        one endpoint never mint a duplicate request id."""
        import threading

        endpoint = JsonEndpoint(backend=build.make_backend(), seed=3)
        minted: list[str] = []
        lock = threading.Lock()

        def worker():
            local = [
                endpoint.dispatch({"Action": "ListFirewalls"})[
                    "ResponseMetadata"]["RequestId"]
                for __ in range(50)
            ]
            with lock:
                minted.extend(local)

        threads = [threading.Thread(target=worker) for __ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(minted) == 400
        assert len(set(minted)) == 400


class TestMetamorphicParameterCasing:
    """Outcomes must be invariant to the client's key spelling —
    CamelCase SDKs and snake_case SDKs see the same cloud."""

    @pytest.fixture(scope="class")
    def ec2(self):
        return build_learned_emulator("ec2", seed=7)

    @staticmethod
    def _recase(params: dict, style: str) -> dict:
        def snake(key: str) -> str:
            out = []
            for index, char in enumerate(key):
                if char.isupper() and index:
                    out.append("_")
                out.append(char.lower())
            return "".join(out)

        if style == "snake":
            return {snake(k): v for k, v in params.items()}
        if style == "upper":
            return {k.upper(): v for k, v in params.items()}
        return dict(params)

    @pytest.mark.parametrize("style", ["snake", "upper"])
    def test_trace_outcomes_invariant_to_casing(self, ec2, style):
        from dataclasses import replace

        for trace in evaluation_traces():
            if trace.service != "ec2":
                continue
            recased = replace(
                trace,
                steps=tuple(
                    replace(step, params=self._recase(step.params, style))
                    for step in trace.steps
                ),
            )
            original = run_trace(ec2.make_backend(), trace)
            variant = run_trace(ec2.make_backend(), recased)
            assert [r.response for r in original.results] == [
                r.response for r in variant.results
            ], trace.name
