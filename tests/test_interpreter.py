"""Tests for the emulator framework executing hand-written specs."""

import pytest

from repro.interpreter import Emulator
from repro.spec import parse_module

# A two-SM module modelled on the paper's §3 example, with full bodies:
# a Public IP that can be associated with a NIC in the same zone.
PUBLIC_IP_MODULE = """
SM nic {
  States {
    zone: str,
    public_ip: SM<public_ip>,
    state: enum(available, in_use) = available,
  }
  Transitions {
    @create
    CreateNIC(zone: str) {
      assert(exists(zone)) : MissingParameter("zone is required");
      write(zone, zone);
    }
    @modify
    AttachPublicIP(ip_ref: SM<public_ip>) {
      write(public_ip, ip_ref);
      write(state, IN_USE);
    }
    @modify
    DetachPublicIP() {
      write(public_ip, null);
      write(state, AVAILABLE);
    }
    @describe
    DescribeNIC(nic_id: str) {
      read(zone, zone_value);
      read(state, state_value);
      read(public_ip, attached_ip);
    }
    @destroy
    DeleteNIC(nic_id: str) {
      assert(!public_ip) : DependencyViolation("NIC has an associated PublicIP");
    }
  }
}

SM public_ip {
  States {
    status: enum(assigned, idle) = idle,
    zone: str,
    NIC: SM<nic>,
  }
  Transitions {
    @create
    CreatePublicIP(region: str) {
      assert(region == "us-east" || region == "us-west")
        : InvalidParameterValue("region must be us-east or us-west");
      write(status, ASSIGNED);
      write(zone, region);
    }
    @modify
    AssociateNIC(public_ip_id: str, nic_ref: SM<nic>) {
      assert(exists(nic_ref)) : MissingParameter("nic_ref is required");
      assert(zone == nic_ref.zone) : InvalidZone.Mismatch("zone mismatch");
      call(nic_ref.AttachPublicIP(self));
      write(NIC, nic_ref);
    }
    @describe
    DescribePublicIP(public_ip_id: str) {
      read(status, status_value);
      read(zone, zone_value);
    }
    @destroy
    DestroyPublicIP(public_ip_id: str) {
      assert(!NIC) : DependencyViolation("PublicIP is still attached to a NIC");
      write(status, IDLE);
    }
  }
}
"""


@pytest.fixture
def emulator():
    module = parse_module(PUBLIC_IP_MODULE, service="toy")
    return Emulator(module)


class TestLifecycle:
    def test_create_returns_deterministic_id(self, emulator):
        response = emulator.invoke("CreatePublicIP", {"region": "us-east"})
        assert response.success
        assert response.data["id"] == "public_ip-00000001"

    def test_create_initializes_defaults_then_writes(self, emulator):
        created = emulator.invoke("CreatePublicIP", {"region": "us-east"})
        described = emulator.invoke(
            "DescribePublicIP", {"public_ip_id": created.data["id"]}
        )
        assert described.data["status_value"] == "ASSIGNED"
        assert described.data["zone_value"] == "us-east"

    def test_create_rejects_bad_region(self, emulator):
        response = emulator.invoke("CreatePublicIP", {"region": "mars-central"})
        assert not response.success
        assert response.error_code == "InvalidParameterValue"
        # Nothing was created.
        assert len(emulator.registry) == 0

    def test_destroy_removes_resource(self, emulator):
        created = emulator.invoke("CreatePublicIP", {"region": "us-east"})
        ip_id = created.data["id"]
        assert emulator.invoke("DestroyPublicIP", {"public_ip_id": ip_id}).success
        followup = emulator.invoke("DescribePublicIP", {"public_ip_id": ip_id})
        assert not followup.success
        assert followup.error_code == "InvalidPublicIpID.NotFound"

    def test_ids_are_sequential_per_type(self, emulator):
        first = emulator.invoke("CreatePublicIP", {"region": "us-east"})
        second = emulator.invoke("CreatePublicIP", {"region": "us-west"})
        assert first.data["id"] != second.data["id"]
        assert second.data["id"].endswith("2")


class TestCrossSMCalls:
    def _associate(self, emulator, ip_zone="us-east", nic_zone="us-east"):
        ip = emulator.invoke("CreatePublicIP", {"region": ip_zone})
        nic = emulator.invoke("CreateNIC", {"zone": nic_zone})
        response = emulator.invoke(
            "AssociateNIC",
            {"public_ip_id": ip.data["id"], "nic_ref": nic.data["id"]},
        )
        return ip.data["id"], nic.data["id"], response

    def test_association_is_bidirectional(self, emulator):
        ip_id, nic_id, response = self._associate(emulator)
        assert response.success
        nic_view = emulator.invoke("DescribeNIC", {"nic_id": nic_id})
        assert nic_view.data["attached_ip"] == ip_id
        assert nic_view.data["state_value"] == "IN_USE"

    def test_zone_mismatch_fails_with_annotated_code(self, emulator):
        __, __, response = self._associate(emulator, "us-east", "us-west")
        assert not response.success
        assert response.error_code == "InvalidZone.Mismatch"

    def test_failed_association_rolls_back_both_machines(self, emulator):
        __, nic_id, response = self._associate(emulator, "us-east", "us-west")
        assert not response.success
        nic_view = emulator.invoke("DescribeNIC", {"nic_id": nic_id})
        # The nested AttachPublicIP never ran, and even if evaluation
        # order changed, rollback must keep the NIC untouched.
        assert nic_view.data["state_value"] == "available"
        assert nic_view.data["attached_ip"] is None

    def test_destroy_blocked_while_attached(self, emulator):
        ip_id, __, response = self._associate(emulator)
        assert response.success
        destroy = emulator.invoke("DestroyPublicIP", {"public_ip_id": ip_id})
        assert not destroy.success
        assert destroy.error_code == "DependencyViolation"
        # The PublicIP must still exist afterwards.
        assert emulator.invoke(
            "DescribePublicIP", {"public_ip_id": ip_id}
        ).success

    def test_delete_nic_blocked_while_associated(self, emulator):
        __, nic_id, response = self._associate(emulator)
        assert response.success
        delete = emulator.invoke("DeleteNIC", {"nic_id": nic_id})
        assert not delete.success
        assert delete.error_code == "DependencyViolation"


class TestFrameworkErrors:
    def test_unknown_api(self, emulator):
        response = emulator.invoke("LaunchRocket", {})
        assert not response.success
        assert response.error_code == "InvalidAction"

    def test_missing_subject_parameter(self, emulator):
        response = emulator.invoke("DescribePublicIP", {})
        assert not response.success
        assert response.error_code == "MissingParameter"

    def test_not_found_subject(self, emulator):
        response = emulator.invoke(
            "DescribePublicIP", {"public_ip_id": "public_ip-99999999"}
        )
        assert response.error_code == "InvalidPublicIpID.NotFound"

    def test_reference_of_wrong_type_is_not_found(self, emulator):
        ip = emulator.invoke("CreatePublicIP", {"region": "us-east"})
        response = emulator.invoke(
            "AssociateNIC",
            {"public_ip_id": ip.data["id"], "nic_ref": ip.data["id"]},
        )
        assert not response.success
        assert "NotFound" in response.error_code

    def test_wrong_parameter_type_fails_via_semantic_check(self, emulator):
        # No framework-level type errors: the documented region check
        # rejects the value, matching how the cloud would behave.
        response = emulator.invoke("CreatePublicIP", {"region": 42})
        assert response.error_code == "InvalidParameterValue"
        assert len(emulator.registry) == 0

    def test_camelcase_parameter_keys_accepted(self, emulator):
        ip = emulator.invoke("CreatePublicIP", {"Region": "us-east"})
        assert ip.success
        described = emulator.invoke(
            "DescribePublicIP", {"PublicIpId": ip.data["id"]}
        )
        assert described.success

    def test_reset_clears_state(self, emulator):
        emulator.invoke("CreatePublicIP", {"region": "us-east"})
        emulator.reset()
        assert len(emulator.registry) == 0
        fresh = emulator.invoke("CreatePublicIP", {"region": "us-east"})
        assert fresh.data["id"] == "public_ip-00000001"

    def test_api_names_lists_all_transitions(self, emulator):
        names = emulator.api_names()
        assert "CreatePublicIP" in names
        assert "AttachPublicIP" in names
        assert len(names) == 9


class TestRecursionGuard:
    def test_mutual_calls_fail_deterministically(self):
        module = parse_module(
            """
            SM ping {
              States { peer: SM<pong> }
              Transitions {
                @create MakePing() { }
                @modify BouncePing(ping_id: str, peer_ref: SM<pong>) {
                  call(peer_ref.BouncePong(self));
                }
              }
            }
            SM pong {
              States { peer: SM<ping> }
              Transitions {
                @create MakePong() { }
                @modify BouncePong(pong_id: str, peer_ref: SM<ping>) {
                  call(peer_ref.BouncePing(self));
                }
              }
            }
            """,
            service="toy",
        )
        emulator = Emulator(module)
        ping = emulator.invoke("MakePing", {})
        pong = emulator.invoke("MakePong", {})
        response = emulator.invoke(
            "BouncePing",
            {"ping_id": ping.data["id"], "peer_ref": pong.data["id"]},
        )
        assert not response.success
        assert response.error_code == "InternalFailure"
