"""End-to-end tests of the public API: the full Fig. 2 workflow."""

import pytest

from repro.core import (
    build_learned_emulator,
    EvaluationSetup,
    run_multicloud_evaluation,
)
from repro.scenarios import basic_functionality_trace, run_trace


class TestBuilder:
    @pytest.fixture(scope="class")
    def build(self):
        return build_learned_emulator("ec2", mode="constrained", seed=7)

    def test_alignment_ran_and_converged(self, build):
        assert build.alignment is not None
        assert build.alignment.converged

    def test_api_count(self, build):
        assert build.api_count == len(
            __import__("repro.docs", fromlist=["build_catalog"])
            .build_catalog("ec2").api_names()
        )

    def test_backends_are_independent(self, build):
        first = build.make_backend()
        second = build.make_backend()
        first.invoke("CreateVpc", {"CidrBlock": "10.0.0.0/16"})
        assert len(second.registry) == 0

    def test_basic_functionality_program(self, build):
        """§5's basic-functionality check: the DevOps program creating a
        VPC, attaching a subnet, enabling MapPublicIpOnLaunch."""
        emulator = build.make_backend()
        run = run_trace(emulator, basic_functionality_trace())
        assert all(r.response.success for r in run.results)
        assert run.env["vpc"].startswith("vpc-")
        assert run.env["subnet"].startswith("subnet-")
        described = run.results[-1].response
        assert described.data["map_public_ip_on_launch"] is True

    def test_llm_usage_is_tracked(self, build):
        assert build.llm.usage.requests >= 28
        assert build.llm.usage.prompt_tokens > 10_000


class TestEvaluationSetup:
    def test_variant_backends_cover_all_services(self):
        setup = EvaluationSetup(seed=7)
        setup.prepare(variants=("learned_no_align",))
        backends = setup.backends["learned_no_align"]
        assert set(backends) == {"ec2", "network_firewall", "dynamodb"}

    def test_scoring_shape(self):
        setup = EvaluationSetup(seed=7)
        setup.prepare(variants=("learned_no_align",))
        accuracy = setup.score("learned_no_align")
        aligned, total = accuracy.total
        assert total == 12
        assert 0 <= aligned <= 12


class TestMultiCloud:
    def test_azure_replication(self):
        """§5: the same workflow on Azure reaches comparable accuracy."""
        results = run_multicloud_evaluation(seed=7)
        aligned, total = results["learned_aligned"].total
        assert total == 4
        assert aligned == 4
        d2c_aligned, __ = results["d2c"].total
        assert d2c_aligned < aligned
