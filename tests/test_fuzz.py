"""Tests for the random-fuzzing baseline and its comparison with
guided symbolic tracing (§4.3's efficiency claim)."""

import pytest

from repro.alignment import diff_traces, TraceBuilder
from repro.alignment.fuzz import RandomFuzzer
from repro.cloud import make_cloud
from repro.core import build_learned_emulator


@pytest.fixture(scope="module")
def unaligned_ec2():
    return build_learned_emulator("ec2", mode="constrained", seed=7,
                                  align=False)


class TestRandomFuzzer:
    def test_deterministic(self, unaligned_ec2):
        first = RandomFuzzer(unaligned_ec2.module, seed=5).run(
            make_cloud("ec2"), unaligned_ec2.make_backend(), budget=300
        )
        second = RandomFuzzer(unaligned_ec2.module, seed=5).run(
            make_cloud("ec2"), unaligned_ec2.make_backend(), budget=300
        )
        assert first.divergences == second.divergences

    def test_budget_respected(self, unaligned_ec2):
        report = RandomFuzzer(unaligned_ec2.module, seed=5).run(
            make_cloud("ec2"), unaligned_ec2.make_backend(), budget=150
        )
        assert report.calls == 150

    def test_fuzzing_misses_what_guided_tracing_finds(self, unaligned_ec2):
        """The paper's §4.3 point: random fuzzing is inefficient.

        The unaligned emulator diverges from the cloud on exactly two
        state-dependent paths; guided symbolic tracing finds both in
        one pass, while 2,000 random calls find neither.
        """
        fuzzer = RandomFuzzer(unaligned_ec2.module, seed=99)
        fuzz_report = fuzzer.run(
            make_cloud("ec2"), unaligned_ec2.make_backend(), budget=2000
        )

        builder = TraceBuilder(unaligned_ec2.module)
        traces, __ = builder.build_all()
        guided_report = diff_traces(
            make_cloud("ec2"), unaligned_ec2.make_backend(), traces
        )
        guided_calls = sum(len(t.steps) for t in traces)

        guided_apis = {d.api for d in guided_report.divergences}
        assert guided_apis == {"StartInstances", "ModifyVpcAttribute"}
        assert guided_calls < fuzz_report.calls
        assert fuzz_report.divergence_count < len(
            guided_report.divergences
        )

    def test_fuzzing_agrees_on_aligned_module(self):
        """After alignment, even heavy fuzzing finds no divergence —
        evidence the repair didn't overfit to the guided traces."""
        build = build_learned_emulator("ec2", mode="constrained", seed=7)
        report = RandomFuzzer(build.module, seed=123).run(
            make_cloud("ec2"), build.make_backend(), budget=1500
        )
        assert report.divergence_count == 0
