"""Compiler parity: the compiled serve path is observably identical to
the tree-walking evaluator.

The compiler (``repro.interpreter.compiler``) lowers each SM spec to
closures once at registration time; the evaluator stays the reference
implementation.  These property tests drive both paths through the
full scenario catalog — and through a mild-chaos weather layer — and
assert byte-identical responses, error codes, and final resource
state.
"""

import pytest

from repro.core import build_learned_emulator
from repro.resilience.chaos import ChaosEngine, ChaosProxy, resolve_profile
from repro.resilience.resilient import ResilientBackend
from repro.resilience.stats import ResilienceStats
from repro.scenarios import evaluation_traces, run_trace

SERVICES = ("ec2", "network_firewall", "dynamodb")


@pytest.fixture(scope="module")
def builds():
    return {
        service: build_learned_emulator(service, mode="constrained", seed=7)
        for service in SERVICES
    }


def _response_bytes(response) -> bytes:
    """Canonical byte serialization of one API response."""
    return repr(
        (response.success, response.error_code, response.error_message,
         response.data)
    ).encode("utf-8")


def _final_state(emulator) -> dict:
    return {
        instance_id: (instance.type_name, instance.parent_id,
                      instance.state)
        for instance_id, instance in emulator.registry.instances.items()
    }


def _assert_parity(compiled_backend, interpreted_backend, trace):
    compiled_run = run_trace(compiled_backend, trace)
    interpreted_run = run_trace(interpreted_backend, trace)
    for compiled_step, interpreted_step in zip(
        compiled_run.results, interpreted_run.results, strict=True
    ):
        assert compiled_step.api == interpreted_step.api
        assert (
            compiled_step.response.error_code
            == interpreted_step.response.error_code
        ), f"{trace.name}/{compiled_step.api}"
        assert _response_bytes(compiled_step.response) == _response_bytes(
            interpreted_step.response
        ), f"{trace.name}/{compiled_step.api}"
    assert compiled_run.env == interpreted_run.env


@pytest.mark.parametrize(
    "trace", evaluation_traces(), ids=lambda t: f"{t.service}-{t.name}"
)
def test_catalog_parity(builds, trace):
    """Every catalog trace: identical responses and final state."""
    build = builds[trace.service]
    compiled = build.make_backend(compile=True)
    interpreted = build.make_backend(compile=False)
    _assert_parity(compiled, interpreted, trace)
    assert _final_state(compiled) == _final_state(interpreted)


def test_catalog_parity_under_mild_chaos(builds):
    """Chaos does not split the paths: with the same fault seed, the
    compiled and interpreted backends absorb the same injected weather
    and still answer identically."""
    profile = resolve_profile("mild")

    def weathered(backend, seed=23):
        return ResilientBackend(
            ChaosProxy(backend, ChaosEngine(profile, seed=seed)),
            stats=ResilienceStats(),
            seed=seed,
        )

    for trace in evaluation_traces():
        build = builds[trace.service]
        compiled = build.make_backend(compile=True)
        interpreted = build.make_backend(compile=False)
        _assert_parity(weathered(compiled), weathered(interpreted), trace)
        assert _final_state(compiled) == _final_state(interpreted)


def test_chaotic_build_parity(builds):
    """A module learned *under* chaos serves identically both ways."""
    build = build_learned_emulator("ec2", mode="constrained", seed=7,
                                   chaos="mild")
    compiled = build.make_backend(compile=True)
    interpreted = build.make_backend(compile=False)
    for trace in evaluation_traces():
        if trace.service != "ec2":
            continue
        _assert_parity(compiled, interpreted, trace)
        assert _final_state(compiled) == _final_state(interpreted)
