"""Tests for holistic fair allocation, retry budgets and deadline
propagation (repro.serve.allocation / repro.serve.deadline)."""

import pytest

from repro.core import build_learned_emulator
from repro.netem import NetEm, three_region_topology
from repro.resilience.policy import VirtualClock
from repro.resilience.ratelimit import TokenBucket
from repro.serve import (
    AdmissionController,
    AllocationConfig,
    EXPIRED_CODE,
    FrontDoor,
    HolisticAllocator,
    LoadGenerator,
    OVERLOADED,
    request_meta,
)


@pytest.fixture(scope="module")
def build():
    return build_learned_emulator("ec2", seed=7, align=False)


def make_allocator(clock=None, **overrides) -> HolisticAllocator:
    config = AllocationConfig(**overrides)
    return HolisticAllocator(clock=clock or VirtualClock(),
                             config=config)


def settle_demand(allocator, demands: dict, rounds: int = 8,
                  window: float = 1.0) -> None:
    """Feed each tenant's arrival rate until the EWMA converges."""
    clock = allocator.clock
    for __ in range(rounds):
        for name, rate in demands.items():
            alloc = allocator.tenant(name)
            alloc.arrivals += int(rate * window)
        clock.sleep(window)
        allocator.maybe_realloc(force=True)


class TestWaterFill:
    def test_equal_weights_split_the_pool_equally(self):
        allocator = make_allocator(total_rate=90.0)
        settle_demand(allocator, {"a": 200.0, "b": 200.0, "c": 200.0})
        grants = [
            allocator.tenant(name).granted_rate for name in "abc"
        ]
        assert all(abs(g - 30.0) < 1.0 for g in grants), grants

    def test_weighted_shares_are_proportional(self):
        allocator = make_allocator(
            total_rate=90.0, weights={"heavy": 2.0},
        )
        settle_demand(allocator, {"heavy": 500.0, "light": 500.0})
        heavy = allocator.tenant("heavy").granted_rate
        light = allocator.tenant("light").granted_rate
        assert heavy / light == pytest.approx(2.0, rel=0.05)

    def test_satisfied_tenant_donates_surplus(self):
        allocator = make_allocator(total_rate=100.0)
        settle_demand(allocator, {"quiet": 5.0, "hungry": 400.0})
        quiet = allocator.tenant("quiet")
        hungry = allocator.tenant("hungry")
        # The quiet tenant keeps demand + headroom, not the 50/50
        # static split; the hungry tenant absorbs the donation.
        assert quiet.granted_rate < 15.0
        assert hungry.granted_rate > 80.0

    def test_grants_are_work_conserving(self):
        allocator = make_allocator(total_rate=120.0)
        settle_demand(
            allocator, {"a": 3.0, "b": 40.0, "c": 500.0}
        )
        total = sum(
            allocator.tenant(name).granted_rate for name in "abc"
        )
        assert total == pytest.approx(120.0, rel=0.02)

    def test_isolation_bound_under_aggressor_demand(self):
        """An aggressor's demand never pushes a hungry victim below
        its weighted fair share of the pool."""
        allocator = make_allocator(total_rate=100.0)
        settle_demand(
            allocator, {"victim": 200.0, "aggressor": 2000.0}
        )
        victim = allocator.tenant("victim")
        assert victim.granted_rate >= victim.fair_share - 1e-6
        assert victim.fair_share == pytest.approx(50.0)

    def test_snapshot_and_bounded_history(self):
        allocator = make_allocator(total_rate=50.0)
        for __ in range(300):
            allocator.tenant("t").arrivals += 1
            allocator.clock.sleep(1.0)
            allocator.maybe_realloc(force=True)
        snapshot = allocator.snapshot()
        assert snapshot["total_rate"] == 50.0
        assert snapshot["reallocations"] > 256
        assert set(snapshot["tenants"]) == {"t"}
        assert len(allocator.history) == 256
        assert allocator.history[-1]["grants"]["t"] > 0


class TestShardHealth:
    def make_bound(self, tenants=("t0", "t1", "t2", "t3")):
        allocator = make_allocator(total_rate=80.0, min_rate=0.5)
        # Even tenants on shard 0, odd tenants on shard 1.
        allocator.bind_shards(
            lambda name: int(name[-1]) % 2, shards=2
        )
        settle_demand(
            allocator, {name: 100.0 for name in tenants}
        )
        return allocator

    def test_dead_shard_tenants_pinned_to_floor(self):
        allocator = self.make_bound()
        allocator.set_shard_health(0, alive=False)
        assert allocator.tenant("t0").granted_rate == 0.5
        assert allocator.tenant("t2").granted_rate == 0.5

    def test_survivors_inherit_the_freed_budget(self):
        allocator = self.make_bound()
        before = allocator.tenant("t1").granted_rate
        allocator.set_shard_health(0, alive=False)
        after = allocator.tenant("t1").granted_rate
        assert before == pytest.approx(20.0, rel=0.05)
        assert after == pytest.approx(39.5, rel=0.05)
        assert after > before * 1.8
        assert allocator.snapshot()["shards_down"] == [0]

    def test_recovery_restores_the_even_split(self):
        allocator = self.make_bound()
        allocator.set_shard_health(0, alive=False)
        allocator.set_shard_health(0, alive=True)
        settle_demand(
            allocator, {f"t{i}": 100.0 for i in range(4)}
        )
        assert allocator.tenant("t0").granted_rate == pytest.approx(
            20.0, rel=0.05
        )
        assert allocator.snapshot()["shards_down"] == []

    def test_duplicate_health_report_is_a_noop(self):
        allocator = self.make_bound()
        allocator.set_shard_health(0, alive=False)
        count = allocator.reallocations
        allocator.set_shard_health(0, alive=False)
        assert allocator.reallocations == count


class TestAllocatedAdmission:
    def make_controller(self, clock, **overrides):
        config = AllocationConfig(**overrides)
        allocator = HolisticAllocator(clock=clock, config=config)
        controller = AdmissionController(
            clock=clock, max_concurrent=config.total_slots,
            queue_depth=config.total_queue, degrade_after=10_000,
            allocator=allocator,
        )
        return controller, allocator

    def test_aggressor_cannot_starve_a_victim(self):
        clock = VirtualClock()
        controller, __ = self.make_controller(
            clock, total_rate=20.0, total_burst=8.0,
            realloc_interval=1.0,
        )
        victim_admits = 0
        for step in range(400):  # 20s: aggressor 20x the victim
            clock.sleep(0.05)
            for __ in range(5):
                decision = controller.admit(
                    "aggressor", "CreateVpc", read_only=False
                )
                if decision.admitted:
                    controller.release("aggressor")
            if step % 4 == 0:  # victim at 5 rps, under its share
                decision = controller.admit(
                    "victim", "CreateVpc", read_only=False
                )
                if decision.admitted:
                    controller.release("victim")
                    victim_admits += 1
        # 100 victim offers at 5 rps against a 10 rps grant: nearly
        # all must land despite the 100 rps aggressor flood.
        assert victim_admits >= 90

    def test_retry_budget_exhaustion_sheds_with_marker(self):
        clock = VirtualClock()
        controller, allocator = self.make_controller(
            clock, total_rate=1000.0, total_burst=400.0,
            retry_rate_fraction=0.001, retry_burst=3.0,
        )
        outcomes = []
        with request_meta(retry=True):
            for __ in range(6):
                decision = controller.admit(
                    "t", "CreateVpc", read_only=False
                )
                outcomes.append(decision)
                if decision.admitted:
                    controller.release("t")
        admitted = [d for d in outcomes if d.admitted]
        shed = [d for d in outcomes if not d.admitted]
        assert len(admitted) == 3  # the retry burst
        assert shed, "retry budget never ran dry"
        for decision in shed:
            response = decision.response
            assert response.error_code == OVERLOADED
            assert response.data["RetryBudgetExhausted"] is True
            assert response.data["RetryAfterSeconds"] > 0
        assert allocator.tenant("t").retry_exhausted == len(shed)

    def test_fresh_requests_unaffected_by_retry_budget(self):
        clock = VirtualClock()
        controller, __ = self.make_controller(
            clock, total_rate=1000.0, total_burst=400.0,
            retry_rate_fraction=0.001, retry_burst=1.0,
        )
        with request_meta(retry=True):
            controller.admit("t", "CreateVpc", read_only=False)
            controller.release("t")
            assert not controller.admit(
                "t", "CreateVpc", read_only=False
            ).admitted
        # The same instant, without the retry flag: normal admission.
        fresh = controller.admit("t", "CreateVpc", read_only=False)
        assert fresh.admitted
        controller.release("t")

    def test_expired_deadline_sheds_before_any_budget(self):
        clock = VirtualClock()
        controller, allocator = self.make_controller(
            clock, total_rate=1000.0, total_burst=400.0,
        )
        deadline = clock.now() + 0.05
        clock.sleep(0.1)
        with request_meta(deadline=deadline):
            decision = controller.admit(
                "t", "CreateVpc", read_only=False
            )
        assert not decision.admitted
        response = decision.response
        assert response.error_code == EXPIRED_CODE
        assert response.data["ExpiredBeforeDispatch"] is True
        assert response.data["Stage"] == "admission"
        assert allocator.tenant("t").deadline_sheds == 1

    def test_live_deadline_admits(self):
        clock = VirtualClock()
        controller, __ = self.make_controller(
            clock, total_rate=1000.0, total_burst=400.0,
        )
        with request_meta(deadline=clock.now() + 10.0):
            decision = controller.admit(
                "t", "CreateVpc", read_only=False
            )
        assert decision.admitted
        controller.release("t")


class TestFrontDoorDeadline:
    def test_envelope_deadline_expires_at_admission(self, build):
        front = FrontDoor(
            build.module, build.make_backend, allocation=True,
        )
        body = front.dispatch({
            "Action": "CreateVpc",
            "Parameters": {"CidrBlock": "10.0.0.0/16"},
            "DeadlineSeconds": -1.0,
        }, api_key="t")
        error = body["Error"]
        assert error["Code"] == EXPIRED_CODE
        assert error["ExpiredBeforeDispatch"] is True
        assert len(front.admitted) == 0

    def test_deadline_expires_in_flight_at_the_netem_hop(self, build):
        """A deadline shorter than the cross-region RTT sheds at the
        netem stage — after admission, before the write dispatches."""
        netem = NetEm(three_region_topology(), seed=5)
        front = FrontDoor(
            build.module, build.make_backend, clock=netem.clock,
            network=netem, rate=500.0, burst=200.0,
            client_regions={"t": "eu-west-1"},
        )
        # Measure what one cross-region write costs on the virtual
        # clock, then offer a budget that cannot cover the transit.
        before = netem.clock.now()
        probe = front.dispatch({
            "Action": "CreateVpc",
            "Parameters": {"CidrBlock": "10.0.0.0/16"},
        }, api_key="t")
        assert "Error" not in probe
        transit = netem.clock.now() - before
        assert transit > 0
        body = front.dispatch({
            "Action": "CreateVpc",
            "Parameters": {"CidrBlock": "10.0.1.0/24"},
            "DeadlineSeconds": transit / 4.0,  # under one WAN hop
        }, api_key="t")
        error = body["Error"]
        assert error["Code"] == EXPIRED_CODE
        assert error["ExpiredBeforeDispatch"] is True
        assert error["Stage"] == "netem"
        # Only the probe write reached the admitted log.
        assert len(front.admitted) == 1

    def test_generous_deadline_is_transparent(self, build):
        front = FrontDoor(
            build.module, build.make_backend, allocation=True,
        )
        body = front.dispatch({
            "Action": "CreateVpc",
            "Parameters": {"CidrBlock": "10.0.0.0/16"},
            "DeadlineSeconds": 60.0,
        }, api_key="t")
        assert "Error" not in body

    def test_malformed_deadline_rejected(self, build):
        front = FrontDoor(build.module, build.make_backend)
        body = front.dispatch({
            "Action": "CreateVpc",
            "Parameters": {"CidrBlock": "10.0.0.0/16"},
            "DeadlineSeconds": "soon",
        }, api_key="t")
        assert body["Error"]["Code"] == "InvalidParameterValue"


class TestLoadGenJitter:
    def test_honored_waits_are_full_jittered(self, build):
        front = FrontDoor(
            build.module, build.make_backend, rate=5.0, burst=2.0,
        )
        generator = LoadGenerator(
            front, seed=3, workers=2, requests_per_worker=40,
            tenants=1, offered_rate=500.0,
        )
        report = generator.run(verify=False)
        assert report.retry_after_honored > 0
        assert report.retry_after_log
        for record in report.retry_after_log:
            # Full jitter: the slept wait is sampled from
            # [0, min(hint, cap)] and logged alongside the hint.
            assert record["jittered"] == record["honored"]
            cap = min(record["hint"], generator.max_retry_after)
            assert 0.0 <= record["jittered"] <= cap + 1e-9
        # A uniform draw that never lands below half the hint in a
        # dozen samples would be astronomically unlikely: jitter is
        # actually spreading the cohort, not sleeping the full hint.
        waits = [r["jittered"] / max(r["hint"], 1e-9)
                 for r in report.retry_after_log]
        assert min(waits) < 0.5

    def test_jitter_is_seed_deterministic(self, build):
        logs = []
        for __ in range(2):
            front = FrontDoor(
                build.module, build.make_backend, rate=5.0, burst=2.0,
            )
            # One worker: thread interleaving cannot reorder the rng.
            generator = LoadGenerator(
                front, seed=3, workers=1, requests_per_worker=60,
                tenants=1, offered_rate=500.0,
            )
            report = generator.run(verify=False)
            logs.append(report.retry_after_log)
        assert logs[0] == logs[1]


class TestTokenBucketConfigure:
    def test_configure_settles_then_repoints(self):
        clock = VirtualClock()
        bucket = TokenBucket(rate=10.0, burst=20.0, clock=clock,
                             initial=0.0)
        clock.sleep(1.0)  # accrues 10 tokens at the old rate
        bucket.configure(rate=1.0, burst=50.0)
        assert bucket.tokens == pytest.approx(10.0)
        clock.sleep(2.0)  # now refills at the new rate
        assert bucket.tokens == pytest.approx(12.0)

    def test_configure_clamps_balance_to_new_burst(self):
        clock = VirtualClock()
        bucket = TokenBucket(rate=10.0, burst=40.0, clock=clock)
        bucket.configure(rate=10.0, burst=5.0)
        assert bucket.tokens == pytest.approx(5.0)

    def test_configure_rejects_nonpositive_rate(self):
        bucket = TokenBucket(rate=1.0, burst=1.0)
        with pytest.raises(ValueError):
            bucket.configure(rate=0.0, burst=1.0)
