"""Tests for the serving-time observability plane (repro.obs).

Covers the windowed store, SLO/burn-rate engine, tail sampler, trace
context propagation through the serving stack, breaker state export,
the schema-2 trace round trip, and the acceptance properties from the
observability issue: a propagated failover trace tree, burn alerts
firing at partition starts in virtual time, sampling bounds, and
sampling-invariant aggregates.
"""

import json

import pytest

from repro.cli import main as cli_main
from repro.core import build_learned_emulator
from repro.netem.engine import NetEm
from repro.netem.timeline import FaultTimeline, partition_window
from repro.netem.topology import three_region_topology
from repro.obs import (
    default_slos,
    ObsPlane,
    record_frames,
    render_frame,
    SLOEngine,
    SLOSpec,
    TailSampler,
    WindowedStore,
)
from repro.obs.tracectx import RequestContext
from repro.resilience.breaker import CircuitBreaker
from repro.resilience.policy import VirtualClock
from repro.scenarios.geo import (
    _frontdoor,
    _invoke,
    _probe_workload,
    _single_home_placer,
    noisy_cross_region_replication,
)
from repro.serve import LoadGenerator
from repro.serve.frontdoor import FrontDoor
from repro.telemetry import load_trace, render_trace, Telemetry, write_trace


@pytest.fixture(scope="module")
def build():
    return build_learned_emulator("ec2", seed=7, align=False)


class TestWindowedStore:
    def test_counter_rate_over_lookback(self):
        store = WindowedStore(resolution=0.25)
        series = store.counter("req", tenant="a")
        for at in (0.1, 0.3, 0.5, 0.7, 0.9):
            series.record(at)
        assert store.total("req", 1.0, 1.0) == 5
        assert store.rate("req", 1.0, 1.0) == pytest.approx(5.0)
        # A narrower lookback only sees the tail of the burst.
        assert store.total("req", 0.3, 1.0) < 5

    def test_quantile_interpolates(self):
        store = WindowedStore(resolution=1.0)
        series = store.histogram("lat")
        for value in range(1, 101):
            series.record(0.5, float(value))
        assert store.quantile("lat", 0.5, 10.0, 1.0) == pytest.approx(50.5)
        assert store.quantile("lat", 0.99, 10.0, 1.0) == pytest.approx(
            99.01
        )

    def test_ring_eviction_keeps_memory_bounded(self):
        store = WindowedStore(resolution=1.0, capacity=4)
        series = store.counter("x")
        for at in (0.5, 1.5, 2.5, 3.5):
            series.record(at)
        series.record(10.5)  # reuses the slot window index 2 held
        assert store.total("x", 100.0, 10.5) == 4

    def test_label_select(self):
        store = WindowedStore(resolution=1.0)
        store.counter("req", tenant="a", outcome="ok").record(0.5)
        store.counter("req", tenant="b", outcome="ok").record(0.5)
        store.counter("req", tenant="a", outcome="error").record(0.5)
        assert store.total("req", 10.0, 1.0) == 3
        assert store.total("req", 10.0, 1.0, tenant="a") == 2
        assert store.total("req", 10.0, 1.0, outcome="error") == 1
        assert store.label_values("req", "tenant") == ["a", "b"]

    def test_exemplar_tracks_worst_value(self):
        store = WindowedStore(resolution=1.0)
        series = store.histogram("lat")
        series.record(0.5, 0.1, exemplar="t-a")
        series.record(0.5, 0.9, exemplar="t-b")
        series.record(0.5, 0.5, exemplar="t-c")
        assert store.exemplar("lat", 10.0, 1.0) == "t-b"

    def test_export_round_trips_counts(self):
        store = WindowedStore(resolution=0.5)
        store.histogram("lat", tenant="a").record(0.2, 0.05, exemplar="t-1")
        records = store.export()
        assert len(records) == 1
        assert records[0]["series"] == "lat{tenant=a}"
        window = records[0]["windows"][0]
        assert window["count"] == 1
        assert window["exemplar"] == "t-1"


def _record_outcome(store, at, outcome, latency=0.01, tenant="tenant-0"):
    store.histogram(
        "serve.requests", tenant=tenant, api="X", region="-",
        outcome=outcome, code="-",
    ).record(at, latency)


class TestSLOEngine:
    def test_availability_budget_spend(self):
        store = WindowedStore(resolution=0.25)
        spec = SLOSpec(name="avail", objective=0.9, period=100.0)
        engine = SLOEngine(store, [spec])
        for index in range(90):
            _record_outcome(store, 1.0 + index * 0.1, "ok")
        for index in range(10):
            _record_outcome(store, 20.0 + index * 0.1, "error")
        status = engine.status(spec, 50.0)
        assert (status.good, status.total) == (90, 100)
        assert status.budget_spent == pytest.approx(1.0)
        assert status.exhausted

    def test_client_errors_do_not_burn_budget(self):
        store = WindowedStore(resolution=0.25)
        spec = SLOSpec(name="avail", objective=0.9, period=100.0)
        engine = SLOEngine(store, [spec])
        for index in range(20):
            _record_outcome(store, 1.0 + index * 0.1, "client_error")
        status = engine.status(spec, 50.0)
        assert status.good == status.total == 20
        assert status.budget_spent == 0.0

    def test_latency_slo_counts_threshold_misses(self):
        store = WindowedStore(resolution=0.25)
        spec = SLOSpec(name="lat", kind="latency", objective=0.5,
                       threshold_s=0.25, period=100.0)
        engine = SLOEngine(store, [spec])
        _record_outcome(store, 1.0, "ok", latency=0.1)
        _record_outcome(store, 1.1, "ok", latency=0.9)
        status = engine.status(spec, 50.0)
        assert (status.good, status.total) == (1, 2)

    def test_page_needs_both_windows_burning(self):
        # period 7200 -> page long window 10s, short window 0.833s.
        store = WindowedStore(resolution=0.25)
        spec = SLOSpec(name="avail", objective=0.999, period=7200.0)
        engine = SLOEngine(store, [spec])
        for index in range(40):
            _record_outcome(store, 20.0 + index * 0.1, "error")
        burning = engine.status(spec, 24.0)
        page = next(a for a in burning.alerts if a.severity == "page")
        assert page.firing
        # 5 virtual seconds after the burst stops, the long window
        # still burns but the short window has gone quiet: no page.
        quiet = engine.status(spec, 29.0)
        page = next(a for a in quiet.alerts if a.severity == "page")
        assert page.long_burn >= page.burn_rate
        assert not page.firing

    def test_sweep_records_fire_and_clear_edges(self):
        store = WindowedStore(resolution=0.25)
        spec = SLOSpec(name="avail", objective=0.999, period=7200.0)
        engine = SLOEngine(store, [spec])
        for index in range(40):
            _record_outcome(store, 20.0 + index * 0.1, "error")
        transitions = engine.sweep(60.0)
        pages = [t for t in transitions if t["severity"] == "page"]
        assert [t["firing"] for t in pages] == [True, False]
        fired, cleared = pages
        assert 20.0 <= fired["at"] <= 24.5
        assert cleared["at"] > fired["at"]
        # Replaying the same store gives the same history.
        assert engine.sweep(60.0) == transitions

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            SLOSpec(name="bad", objective=1.5)
        with pytest.raises(ValueError):
            SLOSpec(name="bad", kind="weather")
        with pytest.raises(ValueError):
            SLOSpec(name="bad", period=0.0)

    def test_spec_dict_round_trip(self):
        spec = SLOSpec(name="lat", kind="latency", objective=0.95,
                       threshold_s=0.5, period=300.0, tenant="tenant-1")
        assert SLOSpec.from_dict(spec.as_dict()) == spec

    def test_default_slos_cover_tenants(self):
        specs = default_slos(["tenant-0", "tenant-1"], period=60.0)
        names = [spec.name for spec in specs]
        assert "availability" in names
        assert "latency-p99" in names
        assert sum(1 for spec in specs if spec.tenant) == 2


def _ctx(outcome="ok", shed=False):
    ctx = RequestContext("t-1", "tenant-0", "X", 0.0)
    ctx.outcome = outcome
    ctx.shed = shed
    return ctx


class TestTailSampler:
    def test_errors_sheds_and_slow_always_kept(self):
        sampler = TailSampler(keep_rate=0.0, slow_threshold_s=1.0)
        assert sampler.decide(_ctx("error"), 0.01)["reason"] == "error"
        assert sampler.decide(_ctx("shed", shed=True), 0.01)[
            "reason"] == "shed"
        assert sampler.decide(_ctx("ok"), 2.0)["reason"] == "slow"
        assert all(d["sampled"] for d in (
            sampler.decide(_ctx("error"), 0.01),
            sampler.decide(_ctx("ok"), 2.0),
        ))

    def test_fast_ok_requests_drop_at_zero_keep(self):
        sampler = TailSampler(keep_rate=0.0)
        decision = sampler.decide(_ctx("ok"), 0.01)
        assert not decision["sampled"]
        assert decision["reason"] == "dropped"

    def test_probabilistic_keep_is_seeded_and_deterministic(self):
        def run():
            sampler = TailSampler(keep_rate=0.5, seed=3)
            kept = []
            for index in range(400):
                ctx = _ctx("ok")
                ctx.trace_id = f"t3-{index:08x}"
                if sampler.decide(ctx, 0.01)["sampled"]:
                    kept.append(ctx.trace_id)
            return kept

        first, second = run(), run()
        assert first == second  # crc32 draw, not process-seeded hash()
        assert 0.35 < len(first) / 400 < 0.65


class TestObsPlane:
    def _plane(self, **kwargs):
        clock = VirtualClock()
        telemetry = Telemetry(service="ec2", clock=clock)
        plane = ObsPlane(telemetry, **kwargs)
        return clock, telemetry, plane

    def test_request_records_series_and_keeps_trace(self):
        clock, telemetry, plane = self._plane(sample_keep=1.0)
        with plane.request("tenant-0", "DescribeVpcs") as ctx:
            clock.sleep(0.1)
            plane.classify(ctx, "")
        assert telemetry.obs is plane
        assert plane.store.total("serve.requests", 10.0, clock.now(),
                                 outcome="ok") == 1
        roots = list(telemetry.tracer.walk())
        assert roots[0].name == "serve.request"
        assert roots[0].attributes["sampled"] is True
        assert roots[0].attributes["trace_id"] == ctx.trace_id

    def test_exception_is_an_error_and_always_kept(self):
        clock, telemetry, plane = self._plane(sample_keep=0.0)
        with pytest.raises(RuntimeError):
            with plane.request("tenant-0", "DescribeVpcs"):
                raise RuntimeError("boom")
        assert plane.store.total("serve.requests", 10.0, clock.now(),
                                 outcome="error") == 1
        roots = list(telemetry.tracer.walk())
        assert roots and roots[0].attributes["sample_reason"] == "error"
        assert roots[0].attributes["error_code"] == "RuntimeError"

    def test_dropped_trace_is_pruned_but_still_counted(self):
        clock, telemetry, plane = self._plane(sample_keep=0.0)
        with plane.request("tenant-0", "DescribeVpcs") as ctx:
            plane.classify(ctx, "")
        assert plane.store.total("serve.requests", 10.0, clock.now()) == 1
        assert list(telemetry.tracer.walk()) == []
        # Exemplars only ever name kept traces, so none here.
        assert plane.store.exemplar("serve.requests", 10.0,
                                    clock.now()) == ""

    def test_shed_flag_wins_classification(self):
        __, __, plane = self._plane(sample_keep=0.0)
        ctx = _ctx("ok", shed=True)
        plane.classify(ctx, "ServiceUnavailable")
        assert ctx.outcome == "shed"
        # The same code without the admission flag is infrastructure.
        plane.classify(_ctx("ok"), "ServiceUnavailable")

    def test_infra_vs_client_error_split(self):
        __, __, plane = self._plane()
        infra, client = _ctx(), _ctx()
        plane.classify(infra, "RequestTimeout")
        plane.classify(client, "InvalidParameterValue")
        assert infra.outcome == "error"
        assert client.outcome == "client_error"


class TestBreakerStateExport:
    def test_transitions_emit_events_gauge_and_series(self):
        clock = VirtualClock()
        telemetry = Telemetry(service="ec2", clock=clock)
        ObsPlane(telemetry)
        breaker = CircuitBreaker(target="vpc", failure_threshold=2,
                                 cooldown=5.0, clock=clock,
                                 telemetry=telemetry)
        breaker.record_failure()
        breaker.record_failure()  # trips: closed -> open
        clock.sleep(6.0)
        breaker.before_call()  # cooldown passed: open -> half_open
        breaker.record_success()  # probe ok: half_open -> closed
        edges = [
            (e.attributes["from"], e.attributes["to"])
            for e in telemetry.orphan_events if e.name == "breaker_state"
        ]
        assert edges == [("closed", "open"), ("open", "half_open"),
                         ("half_open", "closed")]
        gauge = telemetry.metrics.gauge("resilience.breaker_state",
                                        target="vpc")
        assert gauge.value == 0.0
        series = telemetry.obs.store.select("resilience.breaker_state",
                                            target="vpc")
        values = [
            value for window in series[0].windows(0.0, clock.now())
            for value in window.values
        ]
        assert values == [2.0, 1.0, 0.0]

    def test_no_event_when_state_unchanged(self):
        telemetry = Telemetry(service="ec2")
        breaker = CircuitBreaker(target="vpc", failure_threshold=3,
                                 telemetry=telemetry)
        breaker.record_success()  # already closed: no edge
        assert not [e for e in telemetry.orphan_events
                    if e.name == "breaker_state"]


class TestFailoverTraceTree:
    def test_partitioned_read_renders_one_propagated_tree(self, build):
        clock = VirtualClock()
        telemetry = Telemetry(service=build.service, clock=clock)
        plane = ObsPlane(telemetry, seed=7, sample_keep=1.0)
        timeline = FaultTimeline(partition_window(
            "us-east-1", "eu-west-1", start=10.0, duration=20.0,
        ))
        netem = NetEm(three_region_topology(), clock=clock,
                      timeline=timeline, seed=7, telemetry=telemetry)
        front = _frontdoor(
            build, netem, telemetry, seed=7,
            home_region="us-east-1",
            client_regions={"geo": "eu-west-1"},
            replication_lag=0.5,
            placer=_single_home_placer(7),
        )
        creates, read_api, read_params = _probe_workload(build, 7)
        __, code = _invoke(front, "geo", *creates[0])
        assert code == ""
        _invoke(front, "geo", read_api, read_params)
        clock.sleep(2.0)
        front.invoke(read_api, read_params, api_key="geo")  # replica sync
        clock.sleep(10.0)  # cross into the partition window
        body, code = _invoke(front, "geo", read_api, read_params)
        assert body.get("Stale") is True

        roots = [
            span for span in telemetry.tracer.walk()
            if span.name == "serve.request"
            and span.attributes.get("failover")
        ]
        assert len(roots) == 1
        root = roots[0]
        assert root.attributes["client_region"] == "eu-west-1"
        assert root.attributes["resource_region"] == "us-east-1"
        assert root.attributes["outcome"] == "ok"
        assert root.attributes["trace_id"].startswith("t7-")
        hops = {span.name: span for span in root.children}
        assert set(hops) == {"net.hop", "replica.failover"}
        wan = hops["net.hop"]
        assert wan.attributes["src"] == "eu-west-1"
        assert wan.attributes["dst"] == "us-east-1"
        assert wan.attributes["reason"] == "partition"
        assert wan.status == "error"  # the WAN leg was partitioned
        local = hops["replica.failover"]
        assert local.attributes["delivered"] is True
        assert local.attributes["dst"] == "eu-west-1"
        for span in root.children:
            assert span.span_id.startswith(root.span_id + ".h")
            assert "rtt_s" in span.attributes
        assert plane.sampler.kept_by_reason  # the tree was kept


NOISY_PARTITION_ARGS = dict(
    seed=3, loss=0.0, base_rtt=0.04, partition_duration=2.0,
    workers=1, requests_per_worker=80, tenants=2, sample_keep=0.05,
)


@pytest.fixture(scope="module")
def noisy_partition_run(build):
    """One single-worker, loss-free, partition-only run: every infra
    error is a partition artifact and the run is fully deterministic."""
    capture = {}
    result = noisy_cross_region_replication(
        build, capture=capture, **NOISY_PARTITION_ARGS
    )
    return result, capture


class TestBurnAlertTiming:
    def test_alerts_fire_inside_partition_windows(self, build,
                                                  noisy_partition_run):
        result, capture = noisy_partition_run
        assert result["ok"]
        slo = result["load"]["obs"]["slo"]
        fired = [t for t in slo["transitions"] if t["firing"]]
        assert fired, "partitions never tripped a burn alert"
        assert any(t["severity"] == "page" for t in fired)
        windows = [
            window
            for spans in result["partition_windows"].values()
            for window in spans
        ]
        assert windows
        first_start = min(start for start, __ in windows)
        page_window = 1440.0 / 720.0  # the page alert's long window
        resolution = capture["plane"].store.resolution
        for transition in fired:
            start_ok = any(
                start <= transition["at"] <= (end or 1e9) + page_window
                for start, end in windows
            )
            assert start_ok, (
                f"{transition} fired outside every partition window "
                f"{windows}"
            )
        # The first alert lands on the first sweep tick after the
        # partition opens — the "page fired when the partition
        # started" fact, to within the store's resolution.
        assert min(t["at"] for t in fired) <= first_start + 2 * resolution
        # Seed-determinism: the same run reproduces the exact alert
        # timeline, virtual second for virtual second.
        rerun = noisy_cross_region_replication(
            build, **NOISY_PARTITION_ARGS
        )
        assert rerun["load"]["obs"]["slo"]["transitions"] == (
            slo["transitions"]
        )

    def test_healthy_baseline_never_pages(self, build):
        result = noisy_cross_region_replication(
            build, seed=11, loss=0.0, partition_duration=0.0,
            workers=1, requests_per_worker=40, tenants=2,
        )
        slo = result["load"]["obs"]["slo"]
        assert [t for t in slo["transitions"]
                if t["severity"] == "page"] == []
        assert slo["exhausted"] == []


class TestTailSamplingBounds:
    def test_kept_under_ten_percent_with_full_error_retention(self, build):
        capture = {}
        noisy_cross_region_replication(
            build, seed=11, loss=0.02, partition_duration=6.0,
            workers=4, requests_per_worker=60, tenants=2,
            sample_keep=0.02, capture=capture,
        )
        plane = capture["plane"]
        sampler = plane.sampler
        assert sampler.seen >= 240  # every offered request was seen
        assert sampler.kept < 0.10 * sampler.seen
        now = capture["clock"].now()
        errors = plane.store.total("serve.requests", now + 1.0, now,
                                   outcome="error")
        sheds = plane.store.total("serve.requests", now + 1.0, now,
                                  outcome="shed")
        assert sampler.kept_by_reason.get("error", 0) == errors
        assert sampler.kept_by_reason.get("shed", 0) == sheds
        # Kept trace trees are exactly the tracer's serve.request roots.
        kept_roots = [
            span for span in capture["telemetry"].tracer.walk()
            if span.name == "serve.request"
        ]
        assert len(kept_roots) == sampler.kept


def _strip_exemplars(series_records):
    out = []
    for record in series_records:
        record = dict(record)
        record["windows"] = [
            {k: v for k, v in window.items() if k != "exemplar"}
            for window in record["windows"]
        ]
        out.append(record)
    return out


class TestSchema2RoundTrip:
    @pytest.fixture(scope="class")
    def traces_by_keep(self, build, tmp_path_factory):
        tmp = tmp_path_factory.mktemp("obs-traces")
        paths = {}
        for keep in (0.0, 0.5, 1.0):
            path = tmp / f"keep-{keep}.jsonl"
            noisy_cross_region_replication(
                build, seed=11, loss=0.0, partition_duration=2.0,
                workers=1, requests_per_worker=50, tenants=2,
                sample_keep=keep, trace=str(path),
            )
            paths[keep] = path
        return paths

    def test_aggregates_identical_at_any_keep_rate(self, traces_by_keep):
        loaded = {
            keep: load_trace(path)
            for keep, path in traces_by_keep.items()
        }
        baseline = loaded[0.0]
        assert baseline.meta["schema"] == 2
        assert baseline.meta["obs"] is True
        for keep in (0.5, 1.0):
            data = loaded[keep]
            assert data.metrics == baseline.metrics
            assert _strip_exemplars(data.series) == _strip_exemplars(
                baseline.series
            )
            assert data.slo == baseline.slo
        counts = {
            keep: sum(1 for span in data.spans
                      if span["name"] == "serve.request")
            for keep, data in loaded.items()
        }
        assert counts[0.0] < counts[0.5] < counts[1.0] == 50
        samplings = {k: d.sampling for k, d in loaded.items()}
        assert samplings[1.0]["kept"] == 50
        assert samplings[0.0]["kept"] == counts[0.0]

    def test_report_and_cli_agree_on_budget_verdict(self, traces_by_keep,
                                                    capsys):
        path = str(traces_by_keep[0.5])
        data = load_trace(path)
        code = cli_main(["slo", path])
        out = capsys.readouterr().out
        assert code == (4 if data.slo["exhausted"] else 0)
        assert "verdict:" in out
        assert code == cli_main(["slo", "--json", path])

    def test_slo_cli_rejects_trace_without_obs(self, tmp_path):
        telemetry = Telemetry(service="ec2")
        path = tmp_path / "plain.jsonl"
        write_trace(telemetry, path)
        assert cli_main(["slo", str(path)]) == 2

    def test_trace_id_lookup_renders_kept_tree(self, traces_by_keep,
                                               capsys):
        path = str(traces_by_keep[1.0])
        data = load_trace(path)
        exemplar = next(
            window["exemplar"]
            for record in data.series
            if record["series"].startswith("serve.requests")
            for window in record["windows"]
            if window.get("exemplar")
        )
        rendered = render_trace(data, exemplar)
        assert exemplar in rendered
        assert "serve.request" in rendered
        assert cli_main(["report", path, "--trace-id", exemplar]) == 0
        capsys.readouterr()
        assert cli_main(["report", path, "--trace-id", "t0-missing"]) == 1
        assert "not in this file" in capsys.readouterr().out


class TestDriftMonitor:
    def test_probes_agree_on_healthy_emulator(self, build):
        capture = {}
        noisy_cross_region_replication(
            build, seed=11, loss=0.0, partition_duration=0.0,
            workers=1, requests_per_worker=40, tenants=2,
            drift_rate=0.9, capture=capture,
        )
        drift = capture["plane"].drift.as_dict()
        assert drift["checks"] > 0
        assert drift["divergences"] == 0
        assert drift["samples"] == []


class TestDashboard:
    def test_frames_replay_deterministically(self, noisy_partition_run):
        __, capture = noisy_partition_run
        plane, netem = capture["plane"], capture["netem"]
        frames = record_frames(plane, interval=2.0, netem=netem)
        assert frames
        final = frames[-1]["frame"]
        assert final.startswith("repro top")
        assert "SLO budgets" in final
        assert "tenant-0" in final
        assert record_frames(plane, interval=2.0, netem=netem) == frames

    def test_render_frame_is_pure(self, noisy_partition_run):
        __, capture = noisy_partition_run
        at = capture["clock"].now() / 2.0
        first = render_frame(capture["plane"], now=at, lookback=5.0)
        assert first == render_frame(capture["plane"], now=at,
                                     lookback=5.0)

    def test_fairness_panel_shows_allocator_grants(self, build):
        from repro.serve import AllocationConfig

        telemetry = Telemetry(service=build.service)
        plane = ObsPlane(telemetry)
        front = FrontDoor(
            build.module, build.make_backend, telemetry=telemetry,
            seed=7,
            allocation=AllocationConfig(total_rate=40.0,
                                        total_burst=16.0,
                                        realloc_interval=0.5),
        )
        vpcs = {}
        for tenant in ("hog", "quiet"):
            created = front.invoke(
                "CreateVpc", {"cidr_block": "10.0.0.0/16"},
                api_key=tenant,
            )
            assert created.success, created.error_code
            vpcs[tenant] = created.data["vpc_id"]
        for _ in range(20):
            for tenant, calls in (("hog", 5), ("quiet", 1)):
                for _ in range(calls):
                    response = front.invoke(
                        "DescribeVpcs", {"vpc_id": vpcs[tenant]},
                        api_key=tenant,
                    )
                    assert response.success, response.error_code
            front.clock.sleep(0.25)
            front.allocator.maybe_realloc()
        frame = render_frame(plane, lookback=5.0)
        lines = frame.splitlines()
        assert "fairness:" in lines
        panel = lines[lines.index("fairness:") + 1:]
        grants = {}
        for line in panel:
            if "granted" not in line:
                break
            assert "demand" in line and "regrant" in line
            tenant = line.split()[0]
            grants[tenant] = float(
                line.split("granted")[1].split("rps")[0]
            )
        # Both tenants show up, and the hungrier one holds the
        # larger grant.
        assert set(grants) == {"hog", "quiet"}
        assert grants["hog"] > grants["quiet"]


class TestObsParity:
    def test_plane_does_not_perturb_serving_behavior(self, build):
        def run(with_obs):
            telemetry = Telemetry(service=build.service)
            if with_obs:
                ObsPlane(telemetry, seed=5)
            front = FrontDoor(build.module, build.make_backend,
                              telemetry=telemetry, seed=5)
            generator = LoadGenerator(front, seed=5, workers=1,
                                      requests_per_worker=60, tenants=2)
            report = generator.run()
            return report

        plain, instrumented = run(False), run(True)
        assert instrumented.by_code == plain.by_code
        assert instrumented.requests == plain.requests
        assert instrumented.linearizable and plain.linearizable
        assert plain.obs is None and instrumented.obs is not None


class TestServeBenchObsCli:
    def test_serve_bench_obs_emits_schema2_trace(self, tmp_path, capsys):
        trace = tmp_path / "bench.jsonl"
        spec_file = tmp_path / "slos.json"
        spec_file.write_text(json.dumps([
            {"name": "availability", "kind": "availability",
             "objective": 0.5, "period": 60.0},
        ]))
        code = cli_main([
            "serve-bench", "ec2", "--workers", "1", "--requests", "40",
            "--seed", "5", "--slo", str(spec_file),
            "--telemetry", str(trace), "--json",
        ])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["obs"]["slo"]["slos"][0]["slo"]["objective"] == 0.5
        data = load_trace(trace)
        assert data.meta["obs"] is True
        assert data.sampling is not None
        # The loose 50% objective holds on a chaos-free run.
        assert cli_main(["slo", str(trace)]) == 0
