"""Tests for the interpreter's builtin functions, incl. property tests."""

import ipaddress

from hypothesis import given, strategies as st

from repro.interpreter.builtins import (
    append,
    cidr_overlaps,
    cidr_overlaps_any,
    cidr_within,
    concat,
    contains,
    drop,
    exists,
    length,
    lookup,
    prefix_len,
    put,
    remove,
    valid_cidr,
    valid_ip,
)


class TestCidr:
    def test_valid_cidr_accepts_blocks(self):
        assert valid_cidr("10.0.0.0/16")
        assert valid_cidr("192.168.1.0/24")

    def test_valid_cidr_rejects_garbage(self):
        assert not valid_cidr("not-a-cidr")
        assert not valid_cidr("10.0.0.1")  # no prefix
        assert not valid_cidr("300.0.0.0/8")
        assert not valid_cidr(None)
        assert not valid_cidr(42)

    def test_prefix_len(self):
        assert prefix_len("10.0.0.0/16") == 16
        assert prefix_len("10.0.0.0/29") == 29
        assert prefix_len("junk") == -1

    def test_within(self):
        assert cidr_within("10.0.1.0/24", "10.0.0.0/16")
        assert not cidr_within("10.1.0.0/24", "10.0.0.0/16")
        assert not cidr_within("junk", "10.0.0.0/16")

    def test_overlaps(self):
        assert cidr_overlaps("10.0.0.0/24", "10.0.0.128/25")
        assert not cidr_overlaps("10.0.0.0/24", "10.0.1.0/24")

    def test_overlaps_any(self):
        blocks = ["10.0.1.0/24", "10.0.2.0/24"]
        assert cidr_overlaps_any("10.0.1.128/25", blocks)
        assert not cidr_overlaps_any("10.0.3.0/24", blocks)
        assert not cidr_overlaps_any("10.0.1.0/24", None)

    def test_valid_ip(self):
        assert valid_ip("10.1.2.3")
        assert not valid_ip("10.1.2.3/32")
        assert not valid_ip("hello")

    @given(st.integers(min_value=0, max_value=2**32 - 1),
           st.integers(min_value=0, max_value=32))
    def test_valid_cidr_total(self, address, prefix):
        text = f"{ipaddress.IPv4Address(address)}/{prefix}"
        assert valid_cidr(text)
        assert prefix_len(text) == prefix

    @given(st.integers(min_value=0, max_value=2**24 - 1))
    def test_within_is_reflexive(self, network):
        block = f"{ipaddress.IPv4Address(network * 256)}/24"
        assert cidr_within(block, block)
        assert cidr_overlaps(block, block)


class TestCollections:
    def test_append_returns_new_list(self):
        original = [1, 2]
        extended = append(original, 3)
        assert extended == [1, 2, 3]
        assert original == [1, 2]

    def test_append_on_null(self):
        assert append(None, "x") == ["x"]

    def test_remove_first_occurrence_only(self):
        assert remove([1, 2, 1], 1) == [2, 1]

    def test_remove_missing_is_noop(self):
        assert remove([1], 99) == [1]

    def test_put_and_drop_are_persistent(self):
        base = {"a": 1}
        updated = put(base, "b", 2)
        assert updated == {"a": 1, "b": 2}
        assert base == {"a": 1}
        assert drop(updated, "a") == {"b": 2}
        assert drop({}, "missing") == {}

    def test_lookup(self):
        assert lookup({"k": "v"}, "k") == "v"
        assert lookup({"k": "v"}, "absent") is None
        assert lookup(None, "k") is None

    def test_contains(self):
        assert contains([1, 2], 2)
        assert contains({"k": 1}, "k")
        assert contains("hello", "ell")
        assert not contains(None, "x")

    def test_length(self):
        assert length([1, 2, 3]) == 3
        assert length({}) == 0
        assert length(None) == 0
        assert length("abc") == 3

    def test_exists(self):
        assert exists("x")
        assert exists(0) is True  # zero is a real value
        assert not exists(None)
        assert not exists("")

    def test_concat(self):
        assert concat("a", "-", "b") == "a-b"
        assert concat("a", None, "b") == "ab"

    @given(st.lists(st.integers()), st.integers())
    def test_append_then_remove_preserves_multiset(self, items, item):
        result = remove(append(items, item), item)
        assert sorted(result) == sorted(items)

    @given(st.dictionaries(st.text(max_size=5), st.integers(), max_size=5),
           st.text(max_size=5), st.integers())
    def test_put_then_lookup(self, mapping, key, value):
        assert lookup(put(mapping, key, value), key) == value
        assert drop(put(mapping, key, value), key).get(key) is None
