"""Tests for crash-tolerant multi-process sharded serving (repro.serve.shard).

Covers the supervisor (spawn, heartbeat, restart storms, graceful
shutdown), the per-shard write-attempt log (torn-tail recovery),
router failover envelopes, and the acceptance soak: a seeded
worker-kill schedule firing at every serve-layer kill site under
concurrent load, gated on the extended linearizability check and
byte-identical recovery.
"""

import threading
import time

import pytest

from repro.core import build_learned_emulator
from repro.interpreter import Emulator
from repro.resilience.chaos import (
    KILL_SITES,
    SimulatedCrash,
    clear_kill_switch,
    install_kill_switch,
)
from repro.serve import (
    LoadGenerator,
    ShardedFrontDoor,
    ShardLog,
    ShardSupervisor,
    parse_kill_schedule,
    shard_for,
)
from repro.serve.loadgen import _canonical
from repro.serve.shard import CRASH_EXIT_CODE, WORKER_KILL_SITES
from repro.spec import parse_module

from .test_interpreter import PUBLIC_IP_MODULE


@pytest.fixture(autouse=True)
def _no_leftover_kill_switch():
    clear_kill_switch()
    yield
    clear_kill_switch()


def toy_module():
    return parse_module(PUBLIC_IP_MODULE, service="toy")


def wait_until(predicate, timeout=30.0, interval=0.05):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


def invoke(supervisor, shard, api, params, tenant="t"):
    return supervisor.request(shard, {
        "op": "invoke", "tenant": tenant, "api": api, "params": params,
    })


def create_ip(supervisor, shard, tenant="t", region="us-east"):
    return invoke(
        supervisor, shard, "CreatePublicIP", {"region": region},
        tenant=tenant,
    )


class TestPlacement:
    def test_stable_and_in_range(self):
        for tenant in ("alice", "bob", "tenant-7", "a b/c"):
            first = shard_for(tenant, 4)
            assert first == shard_for(tenant, 4)
            assert 0 <= first < 4

    def test_spreads_tenants(self):
        placed = {shard_for(f"tenant-{i}", 4) for i in range(100)}
        assert placed == {0, 1, 2, 3}

    def test_single_shard_degenerate(self):
        assert shard_for("anyone", 1) == 0
        assert shard_for("anyone", 0) == 0  # clamped, not div-by-zero


class TestParseKillSchedule:
    def test_basic(self):
        assert parse_kill_schedule("0:mid-publish:3") == {
            0: [{"mid-publish": 3}]
        }

    def test_queues_per_shard_in_order(self):
        parsed = parse_kill_schedule(
            "1:mid-transition-commit:2,1:mid-serve-wal-append:4,"
            "0:mid-publish:1"
        )
        assert parsed == {
            1: [{"mid-transition-commit": 2}, {"mid-serve-wal-append": 4}],
            0: [{"mid-publish": 1}],
        }

    def test_tolerates_empty_chunks(self):
        assert parse_kill_schedule("0:mid-publish:1,,") == {
            0: [{"mid-publish": 1}]
        }

    def test_rejects_bad_shapes(self):
        with pytest.raises(ValueError, match="expected shard:site:hit"):
            parse_kill_schedule("0:mid-publish")
        with pytest.raises(ValueError, match="must be integers"):
            parse_kill_schedule("x:mid-publish:1")
        with pytest.raises(ValueError, match="unknown kill site"):
            parse_kill_schedule("0:mid-made-up:1")
        with pytest.raises(ValueError, match="shard must be"):
            parse_kill_schedule("-1:mid-publish:1")
        with pytest.raises(ValueError, match="shard must be"):
            parse_kill_schedule("0:mid-publish:0")

    def test_worker_sites_are_registered(self):
        for site in WORKER_KILL_SITES:
            assert site in KILL_SITES


class TestShardLog:
    def test_roundtrip_and_reopen(self, tmp_path):
        log = ShardLog(tmp_path)
        assert log.append("a", "CreatePublicIP", {"region": "r"}) == 1
        assert log.append_reset("a") == 2
        assert log.append("b", "CreateNIC", {"zone": "z"}) == 3
        log.close()

        reopened = ShardLog(tmp_path)
        assert reopened.dropped == 0
        assert reopened.seq == 3
        kinds = [r["type"] for r in reopened.records]
        assert kinds == ["attempt", "reset", "attempt"]
        assert reopened.records[0]["tenant"] == "a"
        assert reopened.append("c", "CreateNIC", {"zone": "z"}) == 4
        reopened.close()

    def test_torn_append_dropped_on_reopen(self, tmp_path):
        log = ShardLog(tmp_path)
        log.append("t", "CreatePublicIP", {"region": "r"})
        install_kill_switch({"mid-serve-wal-append": 1})
        with pytest.raises(SimulatedCrash):
            log.append("t", "CreatePublicIP", {"region": "r"})
        clear_kill_switch()
        # The file really holds a torn half-line, not a clean tail.
        raw = (tmp_path / "shard.wal").read_bytes()
        assert not raw.endswith(b"\n")

        recovered = ShardLog(tmp_path)
        assert recovered.dropped == 1
        assert recovered.seq == 1
        assert len(recovered.records) == 1
        # The next append reuses the seq the torn attempt never earned.
        assert recovered.append("t", "CreatePublicIP", {"region": "r"}) == 2
        recovered.close()


class TestSupervisor:
    def test_rpc_roundtrip_and_stats(self, tmp_path):
        with ShardSupervisor(
            toy_module(), shards=2, data_dir=tmp_path
        ) as supervisor:
            shard = supervisor.shard_for("t")
            reply = create_ip(supervisor, shard)
            assert reply["ok"] and reply["success"]
            read = invoke(
                supervisor, shard, "DescribeNIC", {"nic_id": "missing"}
            )
            assert read["ok"] and not read["success"]
            stats = {s["shard"]: s for s in supervisor.shard_stats()}
            assert stats[shard]["writes"] == 1
            assert stats[shard]["admitted"] == 1
            # The read was dispatched but never logged as an attempt.
            assert stats[shard]["requests"] == 2

    def test_kill_then_tick_restarts(self, tmp_path):
        with ShardSupervisor(
            toy_module(), shards=1, data_dir=tmp_path
        ) as supervisor:
            create_ip(supervisor, 0)
            supervisor.kill(0)
            assert not supervisor.alive(0)
            seen = supervisor.tick()
            assert seen["restarted"] == 1
            assert supervisor.generation(0) == 1
            assert supervisor.restarts == 1
            assert create_ip(supervisor, 0)["success"]
            assert len(supervisor.restart_log) == 1
            entry = supervisor.restart_log[0]
            assert entry["shard"] == 0 and entry["generation"] == 1
            assert entry["recovery_seconds"] > 0.0

    def test_kill_without_restart_sheds(self, tmp_path):
        with ShardSupervisor(
            toy_module(), shards=1, data_dir=tmp_path,
            auto_restart=False,
        ) as supervisor:
            supervisor.kill(0)
            assert create_ip(supervisor, 0) is None
            assert supervisor.restarts == 0

    def test_mid_transition_commit_death_is_rolled_forward(self, tmp_path):
        """The logged-but-uncommitted attempt replays on restart: the
        recovered registry equals a control that committed all three."""
        with ShardSupervisor(
            toy_module(), shards=1, data_dir=tmp_path,
            kill_schedules={0: [{"mid-transition-commit": 3}]},
        ) as supervisor:
            assert create_ip(supervisor, 0)["success"]
            assert create_ip(supervisor, 0)["success"]
            assert create_ip(supervisor, 0) is None  # died pre-commit
            assert wait_until(
                lambda: supervisor.alive(0)
                and supervisor.generation(0) == 1
            )
            reports = supervisor.recovery_reports()[0]
            assert [r["identical"] for r in reports] == [True]
            assert reports[0]["replayed"] == 3
            control = Emulator(toy_module())
            for __ in range(3):
                control.invoke("CreatePublicIP", {"region": "us-east"})
            live = supervisor.snapshot(0, "t")
            assert _canonical(live) == _canonical(control.snapshot())
            assert supervisor.recovery_failures == []

    def test_torn_wal_append_recovers_byte_identical(self, tmp_path):
        """A death mid-WAL-append tears the line; recovery drops it and
        the registry is byte-identical to the pre-crash snapshot."""
        with ShardSupervisor(
            toy_module(), shards=1, data_dir=tmp_path,
            kill_schedules={0: [{"mid-serve-wal-append": 4}]},
        ) as supervisor:
            for __ in range(3):
                assert create_ip(supervisor, 0)["success"]
            before = supervisor.snapshot(0, "t")
            assert create_ip(supervisor, 0) is None  # died mid-append
            assert wait_until(
                lambda: supervisor.alive(0)
                and supervisor.generation(0) == 1
            )
            after = supervisor.snapshot(0, "t")
            assert _canonical(after) == _canonical(before)
            reports = supervisor.recovery_reports()[0]
            assert reports[0]["torn_dropped"] == 1
            assert reports[0]["identical"]
            assert supervisor.recovery_failures == []

    def test_restart_storm_converges(self, tmp_path):
        """k queued kills on one shard: each generation dies once, the
        queue drains, and generation k serves clean."""
        storm = [{"mid-transition-commit": 1}] * 3
        with ShardSupervisor(
            toy_module(), shards=1, data_dir=tmp_path,
            kill_schedules={0: list(storm)},
        ) as supervisor:
            outcome = None
            for __ in range(10):
                reply = create_ip(supervisor, 0)
                if reply is not None and reply["success"]:
                    outcome = reply
                    break
                generation = supervisor.generation(0)
                assert wait_until(
                    lambda: supervisor.alive(0)
                    and supervisor.generation(0) > generation
                )
            assert outcome is not None
            assert supervisor.restarts == 3
            assert supervisor.generation(0) == 3
            # Every crashed attempt was logged, so every generation
            # replays its predecessors' writes; all self-checks pass.
            assert supervisor.recovery_failures == []
            stats = supervisor.shard_stats()[0]
            assert stats["admitted"] == 4  # 3 crashed attempts + 1 live

    def test_slow_worker_is_busy_not_dead(self, tmp_path):
        """A stalled request holds the shard's RPC lock; heartbeat
        ticks must count it busy and never false-positive restart."""
        with ShardSupervisor(
            toy_module(), shards=1, data_dir=tmp_path,
            heartbeat_timeout=0.05, max_misses=1,
        ) as supervisor:
            result = {}

            def stall():
                result["reply"] = supervisor.request(
                    0, {"op": "stall", "seconds": 1.0}
                )

            thread = threading.Thread(target=stall)
            thread.start()
            try:
                assert wait_until(
                    lambda: supervisor._handles[0].lock.locked(),
                    timeout=5.0,
                )
                busy = 0
                while thread.is_alive():
                    busy += supervisor.tick()["busy"]
                    time.sleep(0.05)
            finally:
                thread.join(timeout=10)
            assert busy > 0
            assert result["reply"]["ok"]
            assert supervisor.restarts == 0
            assert supervisor._handles[0].misses == 0

    def test_stuck_worker_restarted_after_max_misses(self, tmp_path):
        """A wedged worker with a *free* RPC lock misses pings and is
        terminated after max_misses consecutive misses."""
        with ShardSupervisor(
            toy_module(), shards=1, data_dir=tmp_path,
            heartbeat_timeout=0.05, max_misses=2,
        ) as supervisor:
            handle = supervisor._handles[0]
            # Wedge the worker without holding the parent-side lock:
            # the heartbeat sees a free lock but no ping replies.
            handle.next_id += 1
            handle.conn.send({
                "op": "stall", "seconds": 30.0, "id": handle.next_id,
            })
            time.sleep(0.1)
            assert supervisor.tick()["missed"] == 1
            assert handle.misses == 1
            seen = supervisor.tick()
            assert seen["missed"] == 1 and seen["restarted"] == 1
            assert supervisor.restarts == 1
            assert create_ip(supervisor, 0)["success"]

    def test_clean_shutdown_drains_inflight_requests(self, tmp_path):
        supervisor = ShardSupervisor(
            toy_module(), shards=1, data_dir=tmp_path,
            snapshot_interval=1000,  # no snapshot before shutdown
        )
        assert create_ip(supervisor, 0)["success"]
        result = {}

        def inflight():
            result["reply"] = supervisor.request(
                0, {"op": "stall", "seconds": 0.8}
            )

        thread = threading.Thread(target=inflight)
        thread.start()
        assert wait_until(
            lambda: supervisor._handles[0].lock.locked(), timeout=5.0
        )
        supervisor.close()
        thread.join(timeout=10)
        # The in-flight request completed rather than being cut off...
        assert result["reply"]["ok"]
        # ...the worker exited cleanly (not crashed, not terminated)...
        assert supervisor._handles[0].process.exitcode == 0
        # ...and shutdown flushed a final snapshot for the tenant.
        snapshot = tmp_path / "shard-0" / "tenant-t.snapshot.json"
        assert snapshot.exists()

    def test_crash_exit_code_is_distinguishable(self, tmp_path):
        with ShardSupervisor(
            toy_module(), shards=1, data_dir=tmp_path,
            auto_restart=False,
            kill_schedules={0: [{"mid-transition-commit": 1}]},
        ) as supervisor:
            assert create_ip(supervisor, 0) is None
            handle = supervisor._handles[0]
            handle.process.join(timeout=10)
            assert handle.process.exitcode == CRASH_EXIT_CODE


class TestShardedFrontDoorFailover:
    def test_unavailable_envelope_then_recovery(self, tmp_path):
        module = toy_module()
        with ShardedFrontDoor(
            module, lambda: Emulator(module), shards=2,
            data_dir=tmp_path,
        ) as front:
            key = "alice"
            shard = front.supervisor.shard_for(key)
            ok = front.invoke(
                "CreatePublicIP", {"region": "us-east"}, api_key=key
            )
            assert ok.success
            front.supervisor.kill(shard)
            shed = front.invoke(
                "CreatePublicIP", {"region": "us-east"}, api_key=key
            )
            assert not shed.success
            assert shed.error_code == "ServiceUnavailable"
            assert shed.data["ShardUnavailable"] is True
            assert shed.data["Shard"] == shard
            assert shed.data["RetryAfterSeconds"] > 0
            # Bounded failover: the shard comes back and serves.
            assert wait_until(
                lambda: front.supervisor.alive(shard)
                and front.supervisor.generation(shard) == 1
            )
            retried = front.invoke(
                "CreatePublicIP", {"region": "us-east"}, api_key=key
            )
            assert retried.success
            ok, mismatches = front.verify_linearizable()
            assert ok, mismatches
            stats = front.mvcc_stats()
            assert stats["shards"] == 2
            assert stats["restarts"] == 1

    def test_json_envelope_carries_retry_hint(self, tmp_path):
        module = toy_module()
        with ShardedFrontDoor(
            module, lambda: Emulator(module), shards=1,
            data_dir=tmp_path, auto_restart=False,
        ) as front:
            front.supervisor.kill(0)
            envelope = front.dispatch({
                "Action": "CreatePublicIP",
                "Parameters": {"region": "us-east"},
            }, api_key="bob")
            error = envelope["Error"]
            assert error["Code"] == "ServiceUnavailable"
            assert error["ShardUnavailable"] is True
            assert error["RetryAfterSeconds"] > 0

    def test_rejects_netem_composition(self):
        """shard x region is a config gap, named as one: a typed
        ConfigError at construction (still a ValueError for old
        callers) whose message points at the roadmap item."""
        from repro.serve.frontdoor import ConfigError

        module = toy_module()
        with pytest.raises(ConfigError, match="netem") as excinfo:
            ShardedFrontDoor(
                module, lambda: Emulator(module), network=object()
            )
        assert isinstance(excinfo.value, ValueError)
        assert "ROADMAP" in str(excinfo.value)
        assert "shard x region" in str(excinfo.value)

    def test_loadgen_honors_failover_retry_after(self, tmp_path):
        """Killing the only shard mid-run makes well-behaved clients
        back off by the Retry-After hint; the report logs each wait."""
        module = toy_module()
        with ShardedFrontDoor(
            module, lambda: Emulator(module), shards=1,
            data_dir=tmp_path, retry_after=0.5,
        ) as front:
            generator = LoadGenerator(
                front, seed=3, workers=2, requests_per_worker=40,
                tenants=2,
            )
            killer = threading.Timer(
                0.2, lambda: front.supervisor.kill(0)
            )
            killer.start()
            try:
                report = generator.run(verify=True)
            finally:
                killer.cancel()
            if front.supervisor.restarts:
                assert report.linearizable, report.mismatches
            if report.failover_honored:
                assert report.failover_seconds > 0
                entry = report.failover_log[0]
                assert entry["shard"] == 0
                assert entry["hint"] == pytest.approx(0.5)


@pytest.fixture(scope="module")
def build():
    return build_learned_emulator("ec2", seed=7, align=False)


class TestShardScenario:
    def test_shard_worker_failover_drill(self, build, tmp_path):
        from repro.scenarios import shard_worker_failover

        result = shard_worker_failover(build, data_dir=tmp_path)
        assert result["ok"], result
        assert result["phases"]["failover"]["write_code"] == (
            "ServiceUnavailable"
        )
        assert result["phases"]["recovered"]["byte_identical"]
        assert result["restarts"] == 1
        assert result["linearizable"]


class TestShardedSoak:
    def test_hostile_soak_all_kill_sites(self, build, tmp_path):
        """The acceptance soak: 2000 requests over 4 shards while a
        seeded schedule kills workers at every serve-layer site —
        mid-transition-commit, mid-publish and mid-serve-wal-append.
        Gates: extended linearizability over the merged attempt logs,
        byte-identical recovery on every restart, and failover waits
        actually honored by the load."""
        shards = 4
        tenants = 8
        # Aim each site at a shard that will actually see traffic.
        trafficked = []
        for index in range(tenants):
            shard = shard_for(f"tenant-{index}", shards)
            if shard not in trafficked:
                trafficked.append(shard)
        assert len(trafficked) >= 3, "placement regressed"
        schedules = {
            trafficked[0]: [{"mid-transition-commit": 10}],
            trafficked[1]: [{"mid-publish": 12}],
            trafficked[2]: [{"mid-serve-wal-append": 14}],
        }
        with ShardedFrontDoor(
            build.module, build.make_backend, shards=shards,
            data_dir=tmp_path, kill_schedules=schedules,
            snapshot_interval=8, retry_after=0.25,
        ) as front:
            generator = LoadGenerator(
                front, seed=23, workers=8, requests_per_worker=250,
                tenants=tenants,
            )
            report = generator.run(verify=True)
            supervisor = front.supervisor

            assert report.requests == 2000
            assert report.linearizable is True, report.mismatches
            # Every scheduled kill fired and was repaired.
            assert supervisor.restarts >= 3
            killed = {e["shard"] for e in supervisor.restart_log}
            assert set(schedules) <= killed
            # Every recovery (every generation) passed byte-identity.
            assert supervisor.recovery_failures == []
            for reports in supervisor.recovery_reports().values():
                assert all(r["identical"] for r in reports)
            # Clients saw the failover and backed off by the hint.
            assert report.failover_honored > 0
            assert report.failover_seconds > 0
            # Surviving shards kept serving: every shard with traffic
            # admitted writes despite the kills.
            admitted = {
                s["shard"]: s["admitted"]
                for s in supervisor.shard_stats()
            }
            for shard in trafficked:
                assert admitted.get(shard, 0) > 0
            merged = front.mvcc_stats()
            assert merged["publishes"] > 0
            assert merged["read_lock_acquisitions"] == 0
