"""The headline result: Fig. 3's shape must hold.

The paper reports: the D2C baseline aligns in only 3 of 12 traces,
while the grammar-constrained workflow with checks and alignment
aligns everywhere; without alignment it sits in between, missing
exactly the behaviours documentation omits.
"""

import pytest

from repro.core import run_fig3_evaluation


@pytest.fixture(scope="module")
def results():
    return run_fig3_evaluation(seed=7)


class TestFig3Shape:
    def test_learned_aligned_is_perfect(self, results):
        aligned, total = results["learned_aligned"].total
        assert (aligned, total) == (12, 12)

    def test_d2c_aligns_three_of_twelve(self, results):
        aligned, total = results["d2c"].total
        assert (aligned, total) == (3, 12)

    def test_no_align_sits_in_between(self, results):
        aligned, __ = results["learned_no_align"].total
        assert 3 < aligned < 12

    def test_ordering_holds_per_scenario(self, results):
        for scenario in ("provisioning", "state_updates", "edge_cases"):
            d2c, __ = results["d2c"].per_scenario[scenario]
            no_align, __ = results["learned_no_align"].per_scenario[
                scenario
            ]
            aligned, __ = results["learned_aligned"].per_scenario[scenario]
            assert d2c <= no_align <= aligned

    def test_no_align_misses_only_undocumented_edges(self, results):
        failures = set(results["learned_no_align"].failures)
        assert failures == {
            "edge_start_running_instance", "edge_dns_context",
        }

    def test_d2c_fails_every_edge_case(self, results):
        edge, total = results["d2c"].per_scenario["edge_cases"]
        assert (edge, total) == (0, 4)

    def test_d2c_failures_match_the_papers_taxonomy(self, results):
        failures = results["d2c"].failures
        # Transition error: silent StartInstances success.
        assert "IncorrectInstanceState" in failures[
            "edge_start_running_instance"
        ]
        # Shallow validation: the /29 subnet is admitted.
        assert "InvalidSubnet.Range" in failures[
            "edge_invalid_subnet_prefix"
        ]
        # Missing dependency check on DeleteVpc.
        assert "DependencyViolation" in failures[
            "edge_delete_vpc_dependency"
        ]
        # State error: InstanceTenancy missing from responses.
        assert "instance_tenancy" in failures["provision_compute"]
