"""Every catalog in the corpus runs the full pipeline to convergence.

The scaling argument of the paper (one workflow, any service) asserted
over the whole corpus: extraction, linking, checks, validator,
alignment convergence, full catalog coverage, and a clean guided
differential pass for all seven services.
"""

import pytest

from repro.alignment import diff_traces, TraceBuilder
from repro.analysis import catalog_coverage
from repro.cloud import make_cloud
from repro.core import build_learned_emulator
from repro.docs import build_catalog, CATALOGS

ALL_SERVICES = sorted(CATALOGS)


@pytest.fixture(scope="module", params=ALL_SERVICES)
def service_build(request):
    return request.param, build_learned_emulator(
        request.param, mode="constrained", seed=7
    )


class TestEveryService:
    def test_every_documented_resource_has_an_sm(self, service_build):
        service, build = service_build
        catalog = build_catalog(service)
        assert set(build.module.machines) == set(catalog.resource_names())

    def test_no_spec_violations(self, service_build):
        __, build = service_build
        assert build.extraction.remaining_violations == []
        assert build.extraction.validator_violations == []

    def test_alignment_converges(self, service_build):
        service, build = service_build
        assert build.alignment is not None
        assert build.alignment.converged, service

    def test_full_catalog_coverage(self, service_build):
        service, build = service_build
        row = catalog_coverage(service, build.make_backend())
        assert row.emulated == row.total, service

    def test_guided_differential_pass_is_clean(self, service_build):
        service, build = service_build
        traces, coverage = TraceBuilder(build.module).build_all()
        report = diff_traces(make_cloud(service), build.make_backend(),
                             traces)
        assert report.divergences == [], service
        assert coverage.coverage_ratio > 0.8, service

    def test_notfound_codes_are_provider_flavoured(self, service_build):
        service, build = service_build
        codes = set(build.extraction.notfound_codes.values())
        if service in ("ec2",):
            assert any(code.endswith(".NotFound") for code in codes)
        if service == "dynamodb":
            assert "ResourceNotFoundException" in codes
        if service == "gcp_compute":
            assert "notFound" in codes


class TestCorpusShape:
    """Catalog sizes pinned, so the corpus doesn't drift silently."""

    @pytest.mark.parametrize("service,resources,apis", [
        ("ec2", 28, 165),
        ("network_firewall", 8, 45),
        ("dynamodb", 7, 57),
        ("eks", 9, 58),
        ("azure_network", 6, 29),
        ("gcp_compute", 6, 31),
        ("s3", 5, 29),
    ])
    def test_catalog_sizes(self, service, resources, apis):
        catalog = build_catalog(service)
        assert len(catalog.resources) == resources
        assert len(catalog.api_names()) == apis
