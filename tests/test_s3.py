"""Tests for the S3-flavoured storage service: the keyed-object domain."""

import pytest

from repro.alignment import diff_traces, TraceBuilder
from repro.cloud import make_cloud
from repro.core import build_learned_emulator


@pytest.fixture(scope="module")
def build():
    return build_learned_emulator("s3", mode="constrained", seed=7)


@pytest.fixture
def emulator(build):
    return build.make_backend()


class TestPipeline:
    def test_extraction_and_alignment(self, build):
        assert len(build.module.machines) == 5
        assert build.alignment is not None
        assert build.alignment.converged

    def test_full_differential_pass_is_clean(self, build):
        traces, __ = TraceBuilder(build.module).build_all()
        report = diff_traces(make_cloud("s3"), build.make_backend(),
                             traces)
        assert report.divergences == []


class TestBucketSemantics:
    def test_object_lifecycle(self, emulator):
        bucket = emulator.invoke("CreateBucket", {"BucketName": "logs"})
        bucket_id = bucket.data["id"]
        assert emulator.invoke(
            "PutObject",
            {"BucketId": bucket_id, "ObjectKey": "a.txt",
             "Body": "hello"},
        ).success
        got = emulator.invoke(
            "GetObject", {"BucketId": bucket_id, "ObjectKey": "a.txt"}
        )
        assert got.data["value"] == "hello"
        missing = emulator.invoke(
            "GetObject", {"BucketId": bucket_id, "ObjectKey": "b.txt"}
        )
        assert missing.error_code == "NoSuchKey"

    def test_bucket_not_empty_guard(self, emulator):
        bucket = emulator.invoke("CreateBucket", {"BucketName": "b"})
        bucket_id = bucket.data["id"]
        emulator.invoke(
            "PutObject",
            {"BucketId": bucket_id, "ObjectKey": "k", "Body": "v"},
        )
        delete = emulator.invoke("DeleteBucket", {"BucketId": bucket_id})
        assert delete.error_code == "BucketNotEmpty"
        emulator.invoke(
            "DeleteObject", {"BucketId": bucket_id, "ObjectKey": "k"}
        )
        assert emulator.invoke("DeleteBucket",
                               {"BucketId": bucket_id}).success

    def test_versioning_toggle(self, emulator):
        bucket = emulator.invoke("CreateBucket", {"BucketName": "b"})
        bad = emulator.invoke(
            "PutBucketVersioning",
            {"BucketId": bucket.data["id"], "Versioning": "Maybe"},
        )
        assert bad.error_code == (
            "IllegalVersioningConfigurationException"
        )
        assert emulator.invoke(
            "PutBucketVersioning",
            {"BucketId": bucket.data["id"], "Versioning": "Enabled"},
        ).success
        state = emulator.invoke(
            "GetBucketVersioning", {"BucketId": bucket.data["id"]}
        )
        assert state.data["versioning"] == "Enabled"


class TestMultipartUpload:
    @pytest.fixture
    def upload(self, emulator):
        bucket = emulator.invoke("CreateBucket", {"BucketName": "b"})
        upload = emulator.invoke(
            "CreateMultipartUpload",
            {"BucketId": bucket.data["id"], "ObjectKey": "big.bin"},
        )
        return upload.data["id"]

    def test_part_upload_and_complete(self, emulator, upload):
        for part in ("1", "2", "3"):
            assert emulator.invoke(
                "UploadPart",
                {"MultipartUploadId": upload, "PartNumber": part},
            ).success
        duplicate = emulator.invoke(
            "UploadPart",
            {"MultipartUploadId": upload, "PartNumber": "2"},
        )
        assert duplicate.error_code == "InvalidPart"
        assert emulator.invoke(
            "CompleteMultipartUpload", {"MultipartUploadId": upload}
        ).success

    def test_no_uploads_after_abort(self, emulator, upload):
        assert emulator.invoke(
            "AbortMultipartUpload", {"MultipartUploadId": upload}
        ).success
        late = emulator.invoke(
            "UploadPart",
            {"MultipartUploadId": upload, "PartNumber": "1"},
        )
        assert late.error_code == "NoSuchUpload"

    def test_complete_twice_fails(self, emulator, upload):
        emulator.invoke("CompleteMultipartUpload",
                        {"MultipartUploadId": upload})
        again = emulator.invoke("CompleteMultipartUpload",
                                {"MultipartUploadId": upload})
        assert again.error_code == "NoSuchUpload"


class TestBucketPolicy:
    def test_policy_requires_public_access_unblock(self, emulator):
        bucket = emulator.invoke("CreateBucket", {"BucketName": "b"})
        bucket_id = bucket.data["id"]
        denied = emulator.invoke(
            "PutBucketPolicy",
            {"BucketId": bucket_id, "PolicyDocument": "{}"},
        )
        assert denied.error_code == "AccessDenied"
        emulator.invoke(
            "PutPublicAccessBlock",
            {"BucketId": bucket_id, "PublicAccessBlocked": False},
        )
        allowed = emulator.invoke(
            "PutBucketPolicy",
            {"BucketId": bucket_id, "PolicyDocument": "{}"},
        )
        assert allowed.success

    def test_cloud_agrees_on_policy_guard(self):
        cloud = make_cloud("s3")
        bucket = cloud.invoke("CreateBucket", {"BucketName": "b"})
        denied = cloud.invoke(
            "PutBucketPolicy",
            {"BucketId": bucket.data["id"], "PolicyDocument": "{}"},
        )
        assert denied.error_code == "AccessDenied"
