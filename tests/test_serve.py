"""Tests for the hardened concurrent serving layer (repro.serve)."""

import json
import threading

import pytest

from repro.core import build_learned_emulator
from repro.resilience.chaos import ChaosEngine, ChaosProxy, HOSTILE_PROFILE
from repro.resilience.policy import VirtualClock
from repro.resilience.ratelimit import TokenBucket
from repro.serve import (
    AdmissionController,
    AdmittedLog,
    ConcurrentEmulator,
    FrontDoor,
    LoadGenerator,
    OVERLOADED,
    RWLock,
    THROTTLED,
)
from repro.telemetry import Telemetry


@pytest.fixture(scope="module")
def build():
    return build_learned_emulator("ec2", seed=7, align=False)


def make_front(build, **kwargs):
    return FrontDoor(build.module, build.make_backend, **kwargs)


class TestRWLock:
    def test_readers_share(self):
        lock = RWLock()
        both_in = threading.Barrier(2, timeout=5)

        def reader():
            with lock.read():
                both_in.wait()  # only passes if both hold it at once

        threads = [threading.Thread(target=reader) for __ in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=5)
        assert not any(t.is_alive() for t in threads)

    def test_writer_excludes_readers(self):
        lock = RWLock()
        order = []
        writer_in = threading.Event()

        def writer():
            with lock.write():
                writer_in.set()
                order.append("write-start")
                order.append("write-end")

        def reader():
            writer_in.wait(timeout=5)
            with lock.read():
                order.append("read")

        w, r = threading.Thread(target=writer), threading.Thread(
            target=reader
        )
        w.start(), r.start()
        w.join(timeout=5), r.join(timeout=5)
        assert order == ["write-start", "write-end", "read"]

    def test_writer_preference_blocks_new_readers(self):
        lock = RWLock()
        lock.acquire_read()
        write_done = threading.Event()

        def writer():
            with lock.write():
                write_done.set()

        thread = threading.Thread(target=writer)
        thread.start()
        # A waiting writer parks new readers behind it.
        import time

        time.sleep(0.05)
        assert not write_done.is_set()
        lock.release_read()
        thread.join(timeout=5)
        assert write_done.is_set()


class TestTokenBucket:
    def test_burst_then_refill_on_virtual_clock(self):
        clock = VirtualClock()
        bucket = TokenBucket(rate=1.0, burst=2.0, clock=clock)
        assert bucket.try_take()
        assert bucket.try_take()
        assert not bucket.try_take()
        assert bucket.retry_after() == pytest.approx(1.0)
        clock.sleep(1.0)
        assert bucket.try_take()

    def test_burst_caps_refill(self):
        clock = VirtualClock()
        bucket = TokenBucket(rate=10.0, burst=3.0, clock=clock)
        clock.sleep(100.0)
        taken = sum(1 for __ in range(10) if bucket.try_take())
        assert taken == 3


class TestReadOnlyClassification:
    def test_creates_are_writes_describes_are_reads(self, build):
        emulator = build.make_backend()
        for api, (__, transition) in build.module.transition_index().items():
            if api.startswith("_"):
                continue
            if transition.category == "create":
                assert not emulator.read_only(api), api
            if transition.category == "describe" and not transition.params:
                assert emulator.read_only(api), api

    def test_unknown_api_classified_read(self, build):
        # It fails before touching state, so it rides the shared lock.
        assert build.make_backend().read_only("NoSuchApi")

    def test_concurrent_emulator_requires_classifier(self):
        with pytest.raises(TypeError):
            ConcurrentEmulator(object())


class TestValidation:
    def test_type_invalid_parameter_rejected(self, build):
        front = make_front(build)
        response = front.invoke("CreateVpc", {"CidrBlock": 123})
        assert not response.success
        assert response.error_code == "ValidationError"
        assert "CidrBlock" in response.error_message or "cidr" in (
            response.error_message
        )

    def test_missing_subject_rejected_before_dispatch(self, build):
        front = make_front(build)
        response = front.invoke("DeleteVpc", {})
        assert not response.success
        assert response.error_code == "MissingParameter"
        # Nothing reached the emulator: the admitted log stays empty.
        assert len(front.admitted) == 0

    def test_unknown_parameters_tolerated(self, build):
        front = make_front(build)
        response = front.invoke(
            "CreateVpc",
            {"CidrBlock": "10.0.0.0/16", "TotallyUnknownKey": object()},
        )
        assert response.success

    def test_unknown_action_is_the_emulators_answer(self, build):
        front = make_front(build)
        body = front.dispatch({"Action": "NoSuchApi"})
        assert body["Error"]["Code"] == "InvalidAction"

    def test_validation_rejects_counted(self, build):
        telemetry = Telemetry(service="ec2")
        front = make_front(build, telemetry=telemetry)
        front.invoke("CreateVpc", {"CidrBlock": 123})
        snapshot = telemetry.metrics.snapshot()
        assert any(
            key.startswith("serve.validation_rejects") for key in snapshot
        )


class TestTenancy:
    def test_namespaces_are_isolated(self, build):
        front = make_front(build)
        created = front.invoke(
            "CreateVpc", {"CidrBlock": "10.0.0.0/16"}, api_key="alice"
        )
        assert created.success
        vpc = created.data["id"]
        stranger = front.invoke(
            "DeleteVpc", {"VpcId": vpc}, api_key="bob"
        )
        assert not stranger.success
        assert "NotFound" in stranger.error_code
        owner = front.invoke(
            "DeleteVpc", {"VpcId": vpc}, api_key="alice"
        )
        assert owner.success

    def test_require_key_rejects_anonymous(self, build):
        front = make_front(build, require_key=True)
        body = front.dispatch({"Action": "DescribeVpcs"})
        assert body["Error"]["Code"] == "MissingAuthenticationToken"

    def test_tenant_table_bound(self, build):
        front = make_front(build, max_tenants=2)
        params = {"CidrBlock": "10.0.0.0/16"}
        assert front.invoke("CreateVpc", params, api_key="t1").success
        assert front.invoke("CreateVpc", params, api_key="t2").success
        third = front.invoke("CreateVpc", params, api_key="t3")
        assert third.error_code == "UnrecognizedClientException"

    def test_per_tenant_request_id_streams_deterministic(self, build):
        first = make_front(build, seed=5)
        second = make_front(build, seed=5)
        body_a = first.dispatch({"Action": "DescribeVpcs"}, api_key="a")
        body_b = second.dispatch({"Action": "DescribeVpcs"}, api_key="a")
        assert body_a["ResponseMetadata"]["RequestId"] == (
            body_b["ResponseMetadata"]["RequestId"]
        )


class TestAdmission:
    def test_bucket_exhaustion_sheds_with_retry_after(self):
        clock = VirtualClock()
        controller = AdmissionController(
            clock=clock, rate=5.0, burst=2.0, degrade_after=100
        )
        decisions = [
            controller.admit("t", "CreateVpc", read_only=False)
            for __ in range(3)
        ]
        for decision in decisions[:2]:
            assert decision.admitted
            controller.release()
        shed = decisions[2]
        assert not shed.admitted
        assert shed.response.error_code == THROTTLED
        assert shed.response.data["RetryAfterSeconds"] > 0

    def test_degraded_mode_keeps_reads_alive(self):
        clock = VirtualClock()
        controller = AdmissionController(
            clock=clock, rate=5.0, burst=1.0, degrade_after=3
        )
        assert controller.admit("t", "CreateVpc", read_only=False).admitted
        controller.release()
        for __ in range(3):
            controller.admit("t", "CreateVpc", read_only=False)
        assert controller.degraded("t")
        read = controller.admit("t", "DescribeVpcs", read_only=True)
        assert read.admitted
        controller.release()
        write = controller.admit("t", "CreateVpc", read_only=False)
        assert not write.admitted
        assert write.response.error_code == OVERLOADED

    def test_degraded_tenant_recovers_when_bucket_refills(self):
        clock = VirtualClock()
        controller = AdmissionController(
            clock=clock, rate=5.0, burst=1.0, degrade_after=2
        )
        controller.admit("t", "CreateVpc", read_only=False)
        controller.release()
        for __ in range(2):
            controller.admit("t", "CreateVpc", read_only=False)
        assert controller.degraded("t")
        clock.sleep(1.0)  # refills 5 tokens (capped at burst=1)
        write = controller.admit("t", "CreateVpc", read_only=False)
        assert write.admitted
        controller.release()
        assert not controller.degraded("t")

    def test_recover_hysteresis_needs_consecutive_tokens(self):
        """``recover_after > 1``: one lucky token does not clear
        degraded mode — only a sustained run of grants does, so a
        tenant flapping around the degrade threshold stays degraded
        instead of toggling its admission mode on every request."""
        clock = VirtualClock()
        controller = AdmissionController(
            clock=clock, rate=2.0, burst=1.0,
            degrade_after=2, recover_after=3,
        )
        controller.admit("t", "CreateVpc", read_only=False)
        controller.release()
        for __ in range(2):
            controller.admit("t", "CreateVpc", read_only=False)
        assert controller.degraded("t")
        # One refilled token: admitted, but still degraded (1 < 3).
        clock.sleep(0.5)
        assert controller.admit("t", "CreateVpc",
                                read_only=False).admitted
        controller.release()
        assert controller.degraded("t")
        # A shed in between resets the consecutive-token run.
        controller.admit("t", "CreateVpc", read_only=False)
        clock.sleep(0.5)
        assert controller.admit("t", "CreateVpc",
                                read_only=False).admitted
        controller.release()
        assert controller.degraded("t")
        # Three consecutive grants finally clear the mode.
        for __ in range(2):
            clock.sleep(0.5)
            assert controller.admit("t", "CreateVpc",
                                    read_only=False).admitted
            controller.release()
        assert not controller.degraded("t")

    def test_default_recover_after_is_first_token(self):
        """The default ``recover_after=1`` keeps the original
        semantics: the first refilled token ends degraded mode."""
        clock = VirtualClock()
        controller = AdmissionController(
            clock=clock, rate=5.0, burst=1.0, degrade_after=2,
        )
        controller.admit("t", "CreateVpc", read_only=False)
        controller.release()
        for __ in range(2):
            controller.admit("t", "CreateVpc", read_only=False)
        assert controller.degraded("t")
        clock.sleep(1.0)
        assert controller.admit("t", "CreateVpc",
                                read_only=False).admitted
        controller.release()
        assert not controller.degraded("t")

    def test_admission_queue_bound(self):
        controller = AdmissionController(
            clock=VirtualClock(), rate=1e9, burst=1e9,
            max_concurrent=1, queue_depth=1,
        )
        assert controller.admit("t", "X", read_only=False).admitted
        assert controller.admit("t", "X", read_only=False).admitted
        third = controller.admit("t", "X", read_only=False)
        assert not third.admitted
        assert third.response.error_code == OVERLOADED
        assert "queue" in third.response.error_message

    def test_overload_at_10x_rate_sheds_without_crashing(self, build):
        telemetry = Telemetry(service="ec2")
        front = make_front(
            build, telemetry=telemetry, rate=50.0, burst=20.0
        )
        generator = LoadGenerator(
            front, seed=11, workers=4, requests_per_worker=250,
            read_ratio=0.5, tenants=1, offered_rate=500.0,
        )
        report = generator.run()
        assert report.linearizable, report.mismatches
        assert report.by_code.get(THROTTLED, 0) > 0
        assert report.shed > report.requests // 4
        assert report.by_code.get("", 0) > 0  # but the service lived
        snapshot = telemetry.metrics.snapshot()
        assert any(key.startswith("serve.shed") for key in snapshot)
        assert "serve.queue_depth_samples" in snapshot


class TestAdmittedLog:
    def test_commit_order_and_dump(self, tmp_path):
        log = AdmittedLog()
        log.append("a", "CreateVpc", {"CidrBlock": "10.0.0.0/16"}, True)
        log.append("b", "CreateVpc", {}, False)
        assert [r["seq"] for r in log.records] == [1, 2]
        assert log.per_tenant("a")[0]["api"] == "CreateVpc"
        target = log.dump_jsonl(tmp_path / "admitted.jsonl")
        lines = target.read_text().splitlines()
        assert len(lines) == 2
        assert json.loads(lines[1])["tenant"] == "b"


class TestConcurrentSoak:
    WORKERS = 8
    PER_WORKER = 250  # 8 × 250 = 2000 mixed requests

    def test_clean_soak_is_linearizable(self, build):
        front = make_front(build)
        generator = LoadGenerator(
            front, seed=21, workers=self.WORKERS,
            requests_per_worker=self.PER_WORKER, read_ratio=0.6,
            tenants=2,
        )
        report = generator.run()
        assert report.requests == self.WORKERS * self.PER_WORKER
        assert report.linearizable, report.mismatches
        assert report.by_code.get("", 0) > 0
        assert len(front.admitted) > 0

    def test_hostile_chaos_soak_is_linearizable(self, build):
        engine = ChaosEngine(HOSTILE_PROFILE, seed=23)
        front = make_front(
            build, wrap=lambda backend: ChaosProxy(backend, engine)
        )
        generator = LoadGenerator(
            front, seed=22, workers=self.WORKERS,
            requests_per_worker=self.PER_WORKER, read_ratio=0.6,
            tenants=2,
        )
        report = generator.run()
        assert report.requests == self.WORKERS * self.PER_WORKER
        assert report.linearizable, report.mismatches
        # Chaos injected faults, but they never entered the log.
        assert sum(engine.injected.values()) > 0
        for record in front.admitted.records:
            assert record["api"] != ""

    def test_serial_rerun_reproduces_request_outcomes(self, build):
        """Same seed, 1 worker: the offered traffic is identical, so
        the outcome histogram is too (scheduling-independent)."""
        def histogram():
            front = make_front(build)
            generator = LoadGenerator(
                front, seed=33, workers=1, requests_per_worker=300,
                tenants=1,
            )
            return generator.run().by_code

        assert histogram() == histogram()


class TestServeTelemetryReport:
    def test_trace_renders_serving_section(self, build, tmp_path):
        from repro.telemetry import load_trace, render_trace_report
        from repro.telemetry.export import write_trace

        telemetry = Telemetry(service="ec2")
        front = make_front(
            build, telemetry=telemetry, rate=20.0, burst=5.0
        )
        generator = LoadGenerator(
            front, seed=9, workers=2, requests_per_worker=100,
            offered_rate=200.0,
        )
        report = generator.run()
        assert report.linearizable
        path = write_trace(telemetry, tmp_path / "serve.jsonl")
        text = render_trace_report(load_trace(path))
        assert "serving:" in text
        assert "request(s)" in text
        assert "shed" in text
