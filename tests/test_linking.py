"""Edge-case tests for specification linking (§4.2)."""

import pytest

from repro.core import wrangled_docs
from repro.extraction import extract_incrementally, link_module
from repro.llm import (
    HelperRequirement,
    make_llm,
    track_helper_name,
    untrack_helper_name,
)
from repro.spec import ast


@pytest.fixture()
def state_and_docs():
    docs = wrangled_docs("ec2")
    llm = make_llm("perfect")
    state = extract_incrementally(llm, docs)
    return state, docs


class TestHelperBuilding:
    def test_track_helper_appends(self):
        helper = HelperRequirement(
            target="vpc", name=track_helper_name("subnet_cidrs"),
            list_attr="subnet_cidrs", op="track",
        )
        transition = helper.build()
        assert transition.name == "_Track_subnet_cidrs"
        assert transition.category == "modify"
        write = transition.body[0]
        assert isinstance(write, ast.Write)
        assert isinstance(write.value, ast.Func)
        assert write.value.name == "append"

    def test_untrack_helper_removes(self):
        helper = HelperRequirement(
            target="vpc", name=untrack_helper_name("subnet_cidrs"),
            list_attr="subnet_cidrs", op="untrack",
        )
        write = helper.build().body[0]
        assert write.value.name == "remove"


class TestLinking:
    def test_duplicate_requirements_patched_once(self, state_and_docs):
        state, docs = state_and_docs
        duplicates = [h for h in state.helper_requirements
                      if h.target == "vpc"]
        state.helper_requirements.extend(duplicates)
        result = link_module(state, docs)
        vpc = result.module.get("vpc")
        helper_names = [
            name for name in vpc.transitions if name.startswith("_")
        ]
        assert len(helper_names) == len(set(helper_names))

    def test_unknown_target_reported_not_crashed(self, state_and_docs):
        state, docs = state_and_docs
        state.helper_requirements.append(
            HelperRequirement(target="ghost_resource",
                              name="_Track_things",
                              list_attr="things", op="track")
        )
        result = link_module(state, docs)
        assert any("ghost_resource" in item for item in result.unresolved)

    def test_missing_list_attribute_restored(self, state_and_docs):
        state, docs = state_and_docs
        vpc = state.specs["vpc"]
        vpc.states = [s for s in vpc.states if s.name != "gateways"]
        result = link_module(state, docs)
        restored = result.module.get("vpc").state_type("gateways")
        assert restored is not None and restored.kind == "list"

    def test_leftover_stub_reported(self, state_and_docs):
        state, docs = state_and_docs
        vpc = state.specs["vpc"]
        vpc.transitions["PhantomApi"] = ast.Transition(
            name="PhantomApi", is_stub=True
        )
        result = link_module(state, docs)
        assert any("PhantomApi" in item for item in result.unresolved)

    def test_notfound_codes_cover_every_resource_with_one(self,
                                                          state_and_docs):
        state, docs = state_and_docs
        result = link_module(state, docs)
        for res in docs.resources:
            if res.notfound_code:
                assert result.notfound_codes[res.name] == (
                    res.notfound_code
                )
