"""Tests for the documentation substrate: prose, renderers, wrangler."""

import pytest
from hypothesis import given, strategies as st

from repro.docs import (
    build_catalog,
    CATALOGS,
    coverage,
    inventory,
    moto_emulated,
    parse_rule,
    render_docs,
    render_rule,
    rule,
    RULE_KINDS,
    TEMPLATES,
    wrangle,
)

IDENT = st.from_regex(r"[a-z][a-z0-9_]{0,15}", fullmatch=True)
CODE = st.from_regex(r"[A-Z][A-Za-z0-9]{0,20}(\.[A-Z][A-Za-z0-9]{0,10})?",
                     fullmatch=True)
VALUE = st.one_of(
    st.booleans(),
    st.integers(min_value=-1000, max_value=1000),
    st.from_regex(r"[A-Za-z][A-Za-z0-9_.-]{0,12}", fullmatch=True),
)

#: Strategy fields per rule kind, mirroring the vocabulary in model.py.
_FIELDS_BY_KIND = {
    "set_attr_param": {"attr": IDENT, "param": IDENT},
    "set_attr_const": {"attr": IDENT, "value": VALUE},
    "set_attr_fresh": {"attr": IDENT},
    "clear_attr": {"attr": IDENT},
    "append_to_attr": {"attr": IDENT, "param": IDENT},
    "remove_from_attr": {"attr": IDENT, "param": IDENT},
    "map_put": {"attr": IDENT, "key_param": IDENT, "value_param": IDENT},
    "map_remove": {"attr": IDENT, "key_param": IDENT},
    "map_read": {"attr": IDENT, "key_param": IDENT},
    "read_attr": {"attr": IDENT},
    "link_ref": {"attr": IDENT, "param": IDENT},
    "call_ref": {"param": IDENT, "transition": IDENT},
    "call_attr": {"attr": IDENT, "transition": IDENT},
    "track_in_ref": {"param": IDENT, "list_attr": IDENT, "source": IDENT},
    "untrack_in_attr": {"attr": IDENT, "list_attr": IDENT, "source": IDENT},
    "require_param": {"param": IDENT, "code": CODE},
    "require_one_of": {
        "param": IDENT,
        "values": st.lists(
            st.from_regex(r"[A-Za-z0-9_.-]{1,10}", fullmatch=True),
            min_size=1, max_size=4, unique=True,
        ).map(tuple),
        "code": CODE,
    },
    "check_valid_cidr": {"param": IDENT, "code": CODE},
    "check_prefix_between": {
        "param": IDENT,
        "lo": st.integers(min_value=0, max_value=32),
        "hi": st.integers(min_value=0, max_value=32),
        "code": CODE,
    },
    "check_cidr_within": {"param": IDENT, "ref": IDENT, "ref_attr": IDENT,
                          "code": CODE},
    "check_no_overlap": {"param": IDENT, "ref": IDENT, "list_attr": IDENT,
                         "code": CODE},
    "check_attr_is": {"attr": IDENT, "value": VALUE, "code": CODE},
    "check_attr_is_not": {"attr": IDENT, "value": VALUE, "code": CODE},
    "check_attr_set": {"attr": IDENT, "code": CODE},
    "check_attr_unset": {"attr": IDENT, "code": CODE},
    "check_list_empty": {"attr": IDENT, "code": CODE},
    "check_attr_matches_ref": {"attr": IDENT, "ref": IDENT,
                               "ref_attr": IDENT, "code": CODE},
    "check_ref_attr_is": {"ref": IDENT, "ref_attr": IDENT, "value": VALUE,
                          "code": CODE},
    "check_in_list": {"param": IDENT, "attr": IDENT, "code": CODE},
    "check_not_in_list": {"param": IDENT, "attr": IDENT, "code": CODE},
    "check_in_map": {"attr": IDENT, "key_param": IDENT, "code": CODE},
    "check_param_implies_attr": {"param": IDENT, "value": VALUE,
                                 "attr": IDENT, "attr_value": VALUE,
                                 "code": CODE},
}


@st.composite
def rules(draw):
    kind = draw(st.sampled_from(sorted(_FIELDS_BY_KIND)))
    fields = {
        name: draw(strategy)
        for name, strategy in _FIELDS_BY_KIND[kind].items()
    }
    return rule(kind, **fields)


class TestProse:
    def test_every_kind_has_a_template(self):
        assert set(TEMPLATES) == set(RULE_KINDS)
        assert set(_FIELDS_BY_KIND) == set(RULE_KINDS)

    @given(rules())
    def test_render_parse_round_trip(self, behaviour):
        sentence = render_rule(behaviour)
        recovered = parse_rule(sentence)
        assert recovered is not None, sentence
        assert recovered.kind == behaviour.kind
        assert recovered.as_dict() == behaviour.as_dict()

    def test_narrative_sentences_are_ignored(self):
        assert parse_rule("A VPC is an isolated virtual network.") is None
        assert parse_rule("") is None

    def test_value_decoding(self):
        sentence = render_rule(
            rule("check_attr_is", attr="delete_protection", value=False,
                 code="InvalidOperationException")
        )
        recovered = parse_rule(sentence)
        assert recovered["value"] is False


class TestCatalogShapes:
    """The catalog sizes the paper reports (Fig. 4, §5)."""

    def test_ec2_has_28_resources(self):
        assert len(build_catalog("ec2").resources) == 28

    def test_nfw_has_8_resources_45_apis(self):
        catalog = build_catalog("network_firewall")
        assert len(catalog.resources) == 8
        assert len(catalog.api_names()) == 45

    def test_ddb_has_7_resources_57_apis(self):
        catalog = build_catalog("dynamodb")
        assert len(catalog.resources) == 7
        assert len(catalog.api_names()) == 57

    def test_api_names_unique_within_service(self):
        for name in CATALOGS:
            names = build_catalog(name).api_names()
            assert len(names) == len(set(names)), name

    def test_every_api_has_category(self):
        for name in CATALOGS:
            for res in build_catalog(name).resources:
                for api in res.apis:
                    assert api.category in (
                        "create", "destroy", "describe", "modify"
                    ), f"{name}.{api.name}"

    def test_reference_attributes_point_at_real_resources(self):
        for name in CATALOGS:
            catalog = build_catalog(name)
            known = set(catalog.resource_names()) | {"vpc"}
            for res in catalog.resources:
                for attribute in res.attributes:
                    if attribute.type == "Reference" and attribute.ref:
                        assert attribute.ref in known, (
                            f"{name}.{res.name}.{attribute.name} -> "
                            f"{attribute.ref}"
                        )

    def test_undocumented_rules_exist_for_alignment(self):
        ec2 = build_catalog("ec2")
        hidden = [
            behaviour
            for res in ec2.resources
            for api in res.apis
            for behaviour in api.rules
            if not behaviour.documented
        ]
        assert len(hidden) >= 2  # StartInstances + DNS hostnames at minimum


class TestTable1Inventory:
    """Exact reproduction of Table 1's counts."""

    @pytest.mark.parametrize(
        "service,total,emulated",
        [
            ("ec2", 571, 177),
            ("dynamodb", 57, 39),
            ("network_firewall", 45, 5),
            ("eks", 58, 15),
        ],
    )
    def test_counts(self, service, total, emulated):
        got_total, got_emulated, __ = coverage(service)
        assert got_total == total
        assert got_emulated == emulated

    def test_overall(self):
        services = ("ec2", "dynamodb", "network_firewall", "eks")
        total = sum(len(inventory(s)) for s in services)
        emulated = sum(len(moto_emulated(s)) for s in services)
        assert total == 731
        assert emulated == 236
        assert round(100 * emulated / total) == 32

    def test_moto_nfw_has_create_but_not_delete_firewall(self):
        emulated = moto_emulated("network_firewall")
        assert "CreateFirewall" in emulated
        assert "DeleteFirewall" not in emulated

    def test_emulated_is_subset_of_inventory(self):
        for service in ("ec2", "dynamodb", "network_firewall", "eks"):
            assert set(moto_emulated(service)) <= set(inventory(service))


class TestRenderWrangleRoundTrip:
    """Catalog -> provider text -> wrangler recovers the documented corpus."""

    @pytest.mark.parametrize("service", sorted(CATALOGS))
    def test_round_trip(self, service):
        catalog = build_catalog(service)
        pages = render_docs(catalog)
        recovered = wrangle(pages, provider=catalog.provider, service=service)

        assert recovered.resource_names() == catalog.resource_names()
        for res in catalog.resources:
            got = recovered.resource(res.name)
            assert got.parent == res.parent, res.name
            assert got.notfound_code == res.notfound_code
            assert [a.name for a in got.attributes] == [
                a.name for a in res.attributes
            ]
            assert got.api_names() == res.api_names()

    @pytest.mark.parametrize("service", sorted(CATALOGS))
    def test_round_trip_recovers_documented_rules_only(self, service):
        catalog = build_catalog(service)
        pages = render_docs(catalog)
        recovered = wrangle(pages, provider=catalog.provider, service=service)
        for res in catalog.resources:
            for api in res.apis:
                got = recovered.resource(res.name).api(api.name)
                want = [
                    (b.kind, b.as_dict()) for b in api.documented_rules()
                ]
                have = [(b.kind, b.as_dict()) for b in got.rules]
                assert have == want, f"{service}.{res.name}.{api.name}"

    @pytest.mark.parametrize("service", sorted(CATALOGS))
    def test_round_trip_recovers_params_and_types(self, service):
        catalog = build_catalog(service)
        pages = render_docs(catalog)
        recovered = wrangle(pages, provider=catalog.provider, service=service)
        for res in catalog.resources:
            for api in res.apis:
                got = recovered.resource(res.name).api(api.name)
                assert [
                    (p.name, p.type, p.required, p.ref) for p in got.params
                ] == [
                    (p.name, p.type, p.required, p.ref) for p in api.params
                ], f"{service}.{res.name}.{api.name}"

    def test_attribute_details_round_trip(self):
        catalog = build_catalog("ec2")
        pages = render_docs(catalog)
        recovered = wrangle(pages, provider="aws", service="ec2")
        vpc = recovered.resource("vpc")
        state = next(a for a in vpc.attributes if a.name == "state")
        assert state.type == "Enum"
        assert state.enum_values == ("pending", "available")
        assert state.default == "pending"
        dns = next(a for a in vpc.attributes if a.name == "enable_dns_support")
        assert dns.default is True

    def test_undocumented_rules_absent_from_rendered_text(self):
        catalog = build_catalog("ec2")
        pages = render_docs(catalog)
        full_text = "\n".join(page.text for page in pages)
        # The StartInstances state precondition is enforced by the cloud
        # but never rendered into documentation.
        assert "IncorrectInstanceState" in full_text  # StopInstances has it
        start_pages = [p for p in pages if p.title == "instance:StartInstances"]
        assert len(start_pages) == 1
        assert "IncorrectInstanceState" not in start_pages[0].text
