"""Tests for the simulated LLM: fault models, synthesis, prompting."""

import pytest

from repro.docs import build_catalog, render_docs, wrangle
from repro.llm import (
    build_prompt,
    DIRECT_PROFILE,
    FaultModel,
    make_llm,
    PERFECT_PROFILE,
    SpecSynthesizer,
    SUBTLE_CHECK_KINDS,
    synthesize_with_reprompt,
)
from repro.spec import parse_sm, validate_sm
from repro.spec.serializer import serialize_sm


@pytest.fixture(scope="module")
def ec2_docs():
    catalog = build_catalog("ec2")
    return wrangle(render_docs(catalog), provider="aws", service="ec2")


@pytest.fixture(scope="module")
def vpc_doc(ec2_docs):
    return ec2_docs.resource("vpc")


@pytest.fixture(scope="module")
def subnet_doc(ec2_docs):
    return ec2_docs.resource("subnet")


class TestFaultModel:
    def test_deterministic_across_instances(self, vpc_doc):
        first = FaultModel(DIRECT_PROFILE, seed=3)
        second = FaultModel(DIRECT_PROFILE, seed=3)
        api = vpc_doc.api("DeleteVpc")
        d1 = first.decide_api("vpc", "DeleteVpc", api.documented_rules(),
                              "destroy", [])
        d2 = second.decide_api("vpc", "DeleteVpc", api.documented_rules(),
                               "destroy", [])
        assert d1.dropped_rules == d2.dropped_rules
        assert d1.miscoded_rules == d2.miscoded_rules

    def test_seed_changes_decisions_somewhere(self, ec2_docs):
        def decisions(seed):
            model = FaultModel(DIRECT_PROFILE, seed=seed)
            out = []
            for res in ec2_docs.resources:
                for api in res.apis:
                    d = model.decide_api(res.name, api.name,
                                         api.documented_rules(),
                                         api.category, [])
                    out.append(tuple(r.kind for r in d.dropped_rules))
            return out

        assert decisions(1) != decisions(2)

    def test_perfect_profile_is_clean(self, ec2_docs):
        model = FaultModel(PERFECT_PROFILE, seed=5)
        for res in ec2_docs.resources:
            assert model.decide_attributes(
                res.name, [a.name for a in res.attributes]
            ) == []
            for api in res.apis:
                decision = model.decide_api(
                    res.name, api.name, api.documented_rules(),
                    api.category, [a.name for a in res.attributes],
                )
                assert decision.clean

    def test_direct_profile_drops_subtle_checks_broadly(self, ec2_docs):
        model = FaultModel(DIRECT_PROFILE, seed=7)
        subtle_total = dropped_total = 0
        for res in ec2_docs.resources:
            for api in res.apis:
                rules = api.documented_rules()
                subtle = [r for r in rules if r.kind in SUBTLE_CHECK_KINDS]
                decision = model.decide_api(res.name, api.name, rules,
                                            api.category, [])
                subtle_total += len(subtle)
                dropped_total += len(decision.dropped_rules)
        assert subtle_total > 0
        assert dropped_total / subtle_total > 0.7

    def test_direct_profile_drops_uncommon_attributes(self, ec2_docs):
        model = FaultModel(DIRECT_PROFILE, seed=7)
        instance = ec2_docs.resource("instance")
        dropped = model.decide_attributes(
            "instance", [a.name for a in instance.attributes]
        )
        assert "instance_tenancy" in dropped
        assert "credit_specification" in dropped
        # Common attributes never drop.
        assert "state" not in dropped


class TestSynthesis:
    def test_perfect_synthesis_parses_and_validates(self, ec2_docs):
        synthesizer = SpecSynthesizer(FaultModel(PERFECT_PROFILE))
        for res in ec2_docs.resources:
            text, report = synthesizer.synthesize_text(res)
            spec = parse_sm(text)
            validate_sm(spec)
            assert report.clean
            assert set(spec.transitions) == {a.name for a in res.apis}

    def test_states_mirror_documented_attributes(self, vpc_doc):
        synthesizer = SpecSynthesizer(FaultModel(PERFECT_PROFILE))
        spec, __ = synthesizer.synthesize_sm(vpc_doc)
        assert spec.state_names() == [a.name for a in vpc_doc.attributes]
        assert spec.state_type("enable_dns_support").kind == "bool"
        assert spec.state_type("state").enum_values == (
            "pending", "available",
        )

    def test_helper_requirements_recorded(self, subnet_doc):
        synthesizer = SpecSynthesizer(FaultModel(PERFECT_PROFILE))
        __, report = synthesizer.synthesize_sm(subnet_doc)
        targets = {(h.target, h.op) for h in report.helpers_needed}
        assert ("vpc", "track") in targets
        assert ("vpc", "untrack") in targets

    def test_transition_categories_survive(self, vpc_doc):
        synthesizer = SpecSynthesizer(FaultModel(PERFECT_PROFILE))
        spec, __ = synthesizer.synthesize_sm(vpc_doc)
        assert spec.transitions["CreateVpc"].category == "create"
        assert spec.transitions["DeleteVpc"].category == "destroy"
        assert spec.transitions["DescribeVpcs"].category == "describe"

    def test_round_trip_through_serializer(self, ec2_docs):
        synthesizer = SpecSynthesizer(FaultModel(PERFECT_PROFILE))
        for res in ec2_docs.resources[:6]:
            spec, __ = synthesizer.synthesize_sm(res)
            text = serialize_sm(spec)
            again = parse_sm(text)
            assert serialize_sm(again) == text


class TestPromptingLoop:
    def test_constrained_never_needs_reprompts(self, ec2_docs):
        llm = make_llm("constrained", seed=7)
        for res in ec2_docs.resources:
            result = synthesize_with_reprompt(llm, res)
            assert result.attempts == 1

    def test_reprompt_mode_recovers_from_syntax_errors(self, ec2_docs):
        llm = make_llm("reprompt", seed=7)
        attempts = []
        for res in ec2_docs.resources:
            result = synthesize_with_reprompt(llm, res, max_attempts=6)
            attempts.append(result.attempts)
        # The 25% syntax-fault rate must actually bite somewhere, and
        # re-prompting must recover every time.
        assert max(attempts) > 1

    def test_prompt_contains_documentation_and_grammar(self, vpc_doc):
        prompt = build_prompt(vpc_doc)
        assert "SM" in prompt
        assert "cidr_block" in prompt
        assert "DependencyViolation" in prompt

    def test_reprompt_feedback_included(self, vpc_doc):
        prompt = build_prompt(vpc_doc, feedback="expected ';' at 3:4")
        assert "failed to parse" in prompt

    def test_usage_accounting(self, vpc_doc):
        llm = make_llm("constrained", seed=7)
        llm.generate_spec(vpc_doc, build_prompt(vpc_doc))
        assert llm.usage.requests == 1
        assert llm.usage.prompt_tokens > 100
        assert llm.usage.completion_tokens > 50

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            make_llm("telepathy")


class TestDiagnosisHelper:
    def test_error_message_maps_back_to_rule(self):
        llm = make_llm("constrained")
        message = (
            "Fails with the error code IncorrectInstanceState unless the "
            "`state` attribute is `stopped`."
        )
        learned = llm.diagnose_error_message(message)
        assert learned is not None
        assert learned.kind == "check_attr_is"
        assert learned["value"] == "stopped"

    def test_unstructured_message_yields_none(self):
        llm = make_llm("constrained")
        assert llm.diagnose_error_message("something went wrong") is None
