"""Tests for the fluent spec builder (the programmatic authoring API)."""

import pytest

from repro.interpreter import Emulator
from repro.spec import (
    ast,
    serialize_sm,
    sm,
    SpecSyntaxError,
    SpecValidationError,
)
from repro.spec.parser import parse_sm


def queue_spec():
    return (
        sm("queue", doc="A message queue.")
        .state("depth", "int", default=0)
        .state("paused", "bool", default=False)
        .state("name", "str")
        .create("CreateQueue")
            .param("name", "str")
            .require("name")
            .write("name", "name")
        .modify("SendMessage")
            .param("queue_id", "str")
            .require("queue_id")
            .check("self.paused == false", code="QueuePaused",
                   message="queue {id} is paused")
            .write("depth", "1")  # the grammar has no arithmetic
        .modify("Pause")
            .param("queue_id", "str")
            .write("paused", "true")
        .describe("DescribeQueue")
            .param("queue_id", "str")
            .read("depth")
            .read("paused")
        .done()
    )


class TestBuilder:
    def test_builds_a_valid_sm(self):
        spec = queue_spec()
        assert isinstance(spec, ast.SMSpec)
        assert set(spec.transitions) == {
            "CreateQueue", "SendMessage", "Pause", "DescribeQueue",
        }
        assert spec.transitions["CreateQueue"].category == "create"

    def test_serializes_and_reparses(self):
        spec = queue_spec()
        text = serialize_sm(spec)
        again = parse_sm(text)
        # The doc string serializes as a comment, which parsing drops
        # (comments are not AST); from the first reparse on, the text
        # is a fixed point.
        reparsed = serialize_sm(again)
        assert serialize_sm(parse_sm(reparsed)) == reparsed
        assert set(again.transitions) == set(spec.transitions)

    def test_executes_in_the_emulator(self):
        module = ast.SpecModule(service="custom")
        module.add(queue_spec())
        emulator = Emulator(module)
        queue = emulator.invoke("CreateQueue", {"Name": "jobs"})
        assert queue.success
        assert emulator.invoke(
            "SendMessage", {"QueueId": queue.data["id"]}
        ).success
        emulator.invoke("Pause", {"QueueId": queue.data["id"]})
        paused = emulator.invoke(
            "SendMessage", {"QueueId": queue.data["id"]}
        )
        assert paused.error_code == "QueuePaused"
        assert f"queue {queue.data['id']} is paused" == (
            paused.error_message
        )

    def test_when_builds_conditionals(self):
        spec = (
            sm("toggle")
            .state("mode", "str", default="off")
            .create("Make")
            .modify("Flip")
                .param("toggle_id", "str")
                .when(
                    'mode == "off"',
                    [ast.Write("mode", ast.Literal("on"))],
                    [ast.Write("mode", ast.Literal("off"))],
                )
            .describe("Show")
                .param("toggle_id", "str")
                .read("mode")
            .done()
        )
        module = ast.SpecModule(service="custom")
        module.add(spec)
        emulator = Emulator(module)
        subject = emulator.invoke("Make", {}).data["id"]
        emulator.invoke("Flip", {"ToggleId": subject})
        assert emulator.invoke(
            "Show", {"ToggleId": subject}
        ).data["mode"] == "on"
        emulator.invoke("Flip", {"ToggleId": subject})
        assert emulator.invoke(
            "Show", {"ToggleId": subject}
        ).data["mode"] == "off"

    def test_validation_errors_surface(self):
        with pytest.raises(SpecValidationError):
            (
                sm("broken")
                .state("s", "str")
                .modify("T").param("broken_id").write("ghost", '"x"')
                .done()
            )

    def test_bad_expression_rejected_eagerly(self):
        builder = sm("x").state("s", "str").modify("T")
        with pytest.raises(SpecSyntaxError):
            builder.write("s", "not a ( valid expr")

    def test_unknown_type_spelling_rejected(self):
        with pytest.raises(SpecSyntaxError):
            sm("x").state("s", "quantum")

    def test_enum_and_sm_type_spellings(self):
        spec = (
            sm("typed", parent="owner")
            .state("mode", "enum(a, b)", default="a")
            .state("owner", "SM<owner>")
            .state("parts", "list<str>")
            .create("Make")
            .done()
        )
        assert spec.state_type("mode").enum_values == ("a", "b")
        assert spec.state_type("owner").sm_name == "owner"
        assert spec.state_type("parts").element.kind == "str"
        assert spec.parent == "owner"
