"""Tests for the trace model and the evaluation trace catalog."""

import pytest

from repro.cloud import make_cloud
from repro.scenarios import (
    azure_traces,
    basic_functionality_trace,
    evaluation_traces,
    run_trace,
    Trace,
    TraceStep,
)


class TestTraceRunner:
    @pytest.fixture
    def cloud(self):
        return make_cloud("ec2")

    def test_symbols_thread_between_steps(self, cloud):
        trace = Trace(
            name="t", service="ec2", scenario="test",
            steps=(
                TraceStep("CreateVpc", {"CidrBlock": "10.0.0.0/16"},
                          bind="vpc"),
                TraceStep("DescribeVpcs", {"VpcId": "$vpc"}),
            ),
        )
        run = run_trace(cloud, trace)
        assert run.results[1].response.success
        assert run.env["vpc"] == run.results[0].response.data["id"]

    def test_unbound_symbol_raises(self, cloud):
        trace = Trace(
            name="t", service="ec2", scenario="test",
            steps=(TraceStep("DescribeVpcs", {"VpcId": "$ghost"}),),
        )
        with pytest.raises(KeyError):
            run_trace(cloud, trace)

    def test_failed_bind_produces_dangling_id(self, cloud):
        trace = Trace(
            name="t", service="ec2", scenario="test",
            steps=(
                TraceStep("CreateVpc", {"CidrBlock": "junk"}, bind="vpc"),
                TraceStep("DescribeVpcs", {"VpcId": "$vpc"}),
            ),
        )
        run = run_trace(cloud, trace)
        assert run.env["vpc"] == "dangling-vpc"
        assert not run.results[1].response.success

    def test_reset_between_runs(self, cloud):
        trace = Trace(
            name="t", service="ec2", scenario="test",
            steps=(TraceStep("CreateVpc", {"CidrBlock": "10.0.0.0/16"},
                             bind="vpc"),),
        )
        first = run_trace(cloud, trace)
        second = run_trace(cloud, trace)
        # Reset restores the id generator too: replays are deterministic.
        assert first.env["vpc"] == second.env["vpc"]
        assert len(cloud.entities) == 1


class TestEvaluationCatalog:
    def test_twelve_traces_three_scenarios(self):
        traces = evaluation_traces()
        assert len(traces) == 12
        by_scenario = {}
        for trace in traces:
            by_scenario.setdefault(trace.scenario, []).append(trace)
        assert {k: len(v) for k, v in by_scenario.items()} == {
            "provisioning": 4, "state_updates": 4, "edge_cases": 4,
        }

    def test_unique_names(self):
        names = [t.name for t in evaluation_traces() + azure_traces()]
        assert len(names) == len(set(names))

    def test_basic_functionality_is_the_paper_program(self):
        trace = basic_functionality_trace()
        apis = [s.api for s in trace.steps]
        assert apis[:3] == ["CreateVpc", "CreateSubnet",
                            "ModifySubnetAttribute"]

    @pytest.mark.parametrize("trace", evaluation_traces() + azure_traces(),
                             ids=lambda t: t.name)
    def test_expectations_hold_on_reference_cloud(self, trace):
        cloud = make_cloud(trace.service)
        run = run_trace(cloud, trace)
        for step, result in zip(trace.steps, run.results):
            expected = True if step.expect_success is None else (
                step.expect_success
            )
            assert result.response.success == expected, (
                f"{trace.name}:{step.api} -> "
                f"{result.response.error_code} "
                f"{result.response.error_message}"
            )

    def test_edge_cases_cover_the_papers_examples(self):
        names = {t.name for t in evaluation_traces()}
        assert "edge_delete_vpc_dependency" in names
        assert "edge_start_running_instance" in names
        assert "edge_invalid_subnet_prefix" in names
        assert "edge_dns_context" in names
