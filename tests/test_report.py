"""Tests for the one-shot reproduction report."""

import pytest

from repro.core.report import (
    collect_report_data,
    generate_report,
    render_report,
)


@pytest.fixture(scope="module")
def report_text():
    return generate_report(seed=7, include_multicloud=False)


class TestReport:
    def test_contains_every_experiment(self, report_text):
        for heading in (
            "Table 1", "Fig. 3", "Fig. 4", "versus manual",
            "Alignment internals",
        ):
            assert heading in report_text

    def test_headline_numbers_present(self, report_text):
        assert "| overall | 731 | 236 | 32% |" in report_text
        assert "**3/12**" in report_text      # D2C
        assert "**12/12**" in report_text     # learned + alignment
        assert "| network_firewall | 5/45 | 45/45 |" in report_text

    def test_fig4_counts(self, report_text):
        assert "| ec2 | 28 |" in report_text
        assert "| network_firewall | 8 |" in report_text
        assert "| dynamodb | 7 |" in report_text

    def test_render_is_pure(self):
        data = collect_report_data(seed=7, include_multicloud=False)
        assert render_report(data) == render_report(data)

    def test_report_is_markdown_tables(self, report_text):
        for line in report_text.splitlines():
            if line.startswith("|"):
                assert line.count("|") >= 3
