"""Tests for the alignment machinery: comparator, symbolic classes,
trace generation, diagnosis, the repair loop, and error decoding."""

import pytest

from repro.alignment import (
    classify_assert,
    compare_responses,
    diff_traces,
    ErrorDecoder,
    module_classes,
    normalize_value,
    TraceBuilder,
)
from repro.cloud import make_cloud
from repro.core import build_learned_emulator
from repro.interpreter import ApiResponse
from repro.scenarios import evaluation_traces, run_trace
from repro.spec import parse_sm


class TestComparator:
    def test_success_vs_failure_diverges(self):
        comparison = compare_responses(
            ApiResponse.fail("DependencyViolation"),
            ApiResponse.ok({}),
            {}, {},
        )
        assert not comparison.aligned
        assert "DependencyViolation" in comparison.reason

    def test_error_codes_must_match(self):
        comparison = compare_responses(
            ApiResponse.fail("InvalidSubnet.Range"),
            ApiResponse.fail("InvalidParameterValue"),
            {}, {},
        )
        assert not comparison.aligned

    def test_error_messages_do_not_matter(self):
        comparison = compare_responses(
            ApiResponse.fail("X", "cloud-flavoured message"),
            ApiResponse.fail("X", "completely different words"),
            {}, {},
        )
        assert comparison.aligned

    def test_data_keys_compared(self):
        comparison = compare_responses(
            ApiResponse.ok({"state": "available"}),
            ApiResponse.ok({}),
            {}, {},
        )
        assert not comparison.aligned
        assert "state" in comparison.reason

    def test_bound_ids_compare_symbolically(self):
        ref_env = {"vpc": "vpc-0abc123def45"}
        emu_env = {"vpc": "vpc-00000001"}
        comparison = compare_responses(
            ApiResponse.ok({"vpc": "vpc-0abc123def45"}),
            ApiResponse.ok({"vpc": "vpc-00000001"}),
            ref_env, emu_env,
        )
        assert comparison.aligned

    def test_unbound_tokens_compare_by_presence(self):
        comparison = compare_responses(
            ApiResponse.ok({"public_ip": "public_ip-0aa11bb22cc3"}),
            ApiResponse.ok({"public_ip": "public_ip-00000007"}),
            {}, {},
        )
        assert comparison.aligned

    def test_plain_values_still_compared(self):
        comparison = compare_responses(
            ApiResponse.ok({"cidr": "10.0.0.0/16"}),
            ApiResponse.ok({"cidr": "10.9.0.0/16"}),
            {}, {},
        )
        assert not comparison.aligned

    def test_normalize_recurses_into_containers(self):
        env_inverse = {"subnet-00000001": "subnet"}
        value = {"list": ["subnet-00000001", "plain"],
                 "map": {"k": "subnet-00000001"}}
        normalized = normalize_value(value, env_inverse)
        assert normalized == {"list": ["$subnet", "plain"],
                              "map": {"k": "$subnet"}}


class TestSymbolicClassification:
    def _pattern(self, body: str, states: str = "s: str", params: str = ""):
        spec = parse_sm(
            f"SM x {{ States {states} Transitions {{ "
            f"@modify T({params}) {{ {body} }} }} }}"
        )
        transition = spec.transitions["T"]
        stmt = next(
            s for s in transition.statements()
            if type(s).__name__ == "Assert"
        )
        return classify_assert(spec, transition, stmt)

    def test_require_param(self):
        pattern = self._pattern("assert(exists(v));", params="v: str")
        assert pattern.kind == "require_param"

    def test_attr_unset(self):
        pattern = self._pattern("assert(!exists(s));")
        assert pattern.kind == "attr_unset"

    def test_attr_equals(self):
        pattern = self._pattern(
            'assert(state == "stopped");',
            states="state: enum(running, stopped)",
        )
        assert pattern.kind == "attr_equals"
        assert pattern["value"] == "stopped"

    def test_self_attr_normalized(self):
        pattern = self._pattern(
            'assert(self.state == "stopped");',
            states="state: enum(running, stopped)",
        )
        assert pattern.kind == "attr_equals"

    def test_list_empty(self):
        pattern = self._pattern(
            "assert(len(children) == 0);", states="children: list"
        )
        assert pattern.kind == "list_empty"

    def test_one_of(self):
        pattern = self._pattern(
            'assert(!exists(v) || v in ["a", "b"]);', params="v: str"
        )
        assert pattern.kind == "guarded"
        assert pattern["inner"].kind == "one_of"

    def test_prefix_between(self):
        pattern = self._pattern(
            "assert(prefix_len(c) >= 16 && prefix_len(c) <= 28);",
            params="c: str",
        )
        assert pattern.kind == "prefix_between"
        assert pattern["lo"] == 16

    def test_matches_ref(self):
        pattern = self._pattern(
            "assert(zone == r.zone);", states="zone: str", params="r: SM<x>"
        )
        assert pattern.kind == "matches_ref"


@pytest.fixture(scope="module")
def aligned_ec2():
    return build_learned_emulator("ec2", mode="constrained", seed=7)


class TestTraceGeneration:
    def test_every_transition_gets_an_all_pass_class(self, aligned_ec2):
        classes = module_classes(aligned_ec2.module)
        all_pass = {(c.sm, c.transition) for c in classes if c.is_all_pass}
        public = {
            (sm, t.name)
            for sm, spec in aligned_ec2.module.machines.items()
            for t in spec.transitions.values()
            if not t.name.startswith("_")
        }
        assert all_pass == public

    def test_high_class_coverage(self, aligned_ec2):
        builder = TraceBuilder(aligned_ec2.module)
        __, coverage = builder.build_all(probes=False)
        assert coverage.coverage_ratio > 0.9

    def test_generated_traces_align_after_alignment(self, aligned_ec2):
        builder = TraceBuilder(aligned_ec2.module)
        traces, __ = builder.build_all()
        cloud = make_cloud("ec2")
        emulator = aligned_ec2.make_backend()
        report = diff_traces(cloud, emulator, traces)
        assert report.divergences == []

    def test_violation_traces_actually_fail_on_cloud(self, aligned_ec2):
        builder = TraceBuilder(aligned_ec2.module)
        traces, __ = builder.build_all(probes=False)
        cloud = make_cloud("ec2")
        failing = 0
        for trace in traces:
            if trace.name.endswith("_pass") or not trace.steps:
                continue
            run = run_trace(cloud, trace)
            if not run.results[-1].response.success:
                failing += 1
        assert failing > 50  # most violation classes do violate


class TestAlignmentLoop:
    def test_learns_the_doc_gaps(self):
        build = build_learned_emulator("ec2", mode="constrained", seed=7)
        assert build.alignment is not None
        assert build.alignment.converged
        assert build.alignment.doc_gaps_learned >= 2

    def test_aligned_emulator_passes_evaluation_traces(self, aligned_ec2):
        cloud = make_cloud("ec2")
        emulator = aligned_ec2.make_backend()
        ec2_traces = [
            t for t in evaluation_traces() if t.service == "ec2"
        ]
        report = diff_traces(cloud, emulator, ec2_traces)
        assert report.aligned == len(ec2_traces)

    def test_different_seeds_still_converge(self):
        for seed in (1, 2, 3):
            build = build_learned_emulator("ec2", mode="constrained",
                                           seed=seed)
            assert build.alignment.converged, f"seed {seed}"

    def test_perfect_extraction_converges_fast(self):
        build = build_learned_emulator("network_firewall", mode="perfect")
        assert build.alignment.converged
        assert build.alignment.total_repairs <= 1


class TestErrorDecoder:
    @pytest.fixture(scope="class")
    def emulator(self, aligned_ec2):
        return aligned_ec2.make_backend()

    def test_dependency_violation_names_blockers(self, emulator):
        decoder = ErrorDecoder(emulator)
        vpc = emulator.invoke("CreateVpc", {"CidrBlock": "10.0.0.0/16"})
        subnet = emulator.invoke(
            "CreateSubnet",
            {"VpcId": vpc.data["id"], "CidrBlock": "10.0.1.0/24"},
        )
        params = {"VpcId": vpc.data["id"]}
        delete = emulator.invoke("DeleteVpc", params)
        explanation = decoder.explain("DeleteVpc", params, delete)
        assert explanation.code == "DependencyViolation"
        assert "dependent resource" in explanation.root_cause
        assert any(
            "10.0.1.0/24" in action
            for action in explanation.suggested_actions
        )
        assert subnet.success

    def test_state_precondition_suggests_driver(self, emulator):
        decoder = ErrorDecoder(emulator)
        vpc = emulator.invoke("CreateVpc", {"CidrBlock": "10.1.0.0/16"})
        subnet = emulator.invoke(
            "CreateSubnet",
            {"VpcId": vpc.data["id"], "CidrBlock": "10.1.0.0/24"},
        )
        run = emulator.invoke(
            "RunInstances",
            {"SubnetId": subnet.data["id"], "ImageId": "ami-1",
             "InstanceType": "t2.micro"},
        )
        params = {"InstanceId": run.data["id"],
                  "InstanceType": "m5.large"}
        modify = emulator.invoke("ModifyInstanceAttribute", params)
        explanation = decoder.explain(
            "ModifyInstanceAttribute", params, modify
        )
        assert "'state' is 'running'" in explanation.root_cause
        assert any(
            "StopInstances" in action
            for action in explanation.suggested_actions
        )

    def test_notfound_decoded(self, emulator):
        decoder = ErrorDecoder(emulator)
        params = {"VpcId": "vpc-99999999"}
        response = emulator.invoke("DescribeVpcs", params)
        explanation = decoder.explain("DescribeVpcs", params, response)
        assert "does not exist" in explanation.root_cause

    def test_render_is_readable(self, emulator):
        decoder = ErrorDecoder(emulator)
        params = {"VpcId": "vpc-99999999"}
        response = emulator.invoke("DeleteVpc", params)
        text = decoder.explain("DeleteVpc", params, response).render()
        assert text.startswith("InvalidVpcID.NotFound")
