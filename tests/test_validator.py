"""Tests for the static spec validator."""

import pytest

from repro.spec import (
    collect_violations,
    parse_module,
    parse_sm,
    SpecValidationError,
    validate_module,
    validate_sm,
)


def violations_of(source: str) -> list[str]:
    return collect_violations(parse_module(source))


class TestStateRules:
    def test_clean_spec_passes(self):
        validate_sm(parse_sm(
            "SM x { States s: str Transitions { "
            "@modify T(x_id: str, v: str) { write(s, v); } } }"
        ))

    def test_write_to_undeclared_state(self):
        violations = violations_of(
            "SM x { States s: str Transitions { T() { write(ghost, s); } } }"
        )
        assert any("undeclared state 'ghost'" in v for v in violations)

    def test_read_of_undeclared_state(self):
        violations = violations_of(
            "SM x { States s: str Transitions { T() { read(ghost, out); } } }"
        )
        assert any("read of undeclared state" in v for v in violations)

    def test_duplicate_state_names(self):
        violations = violations_of(
            "SM x { States s: str, s: int Transitions { } }"
        )
        assert any("duplicate state variable" in v for v in violations)


class TestNameResolution:
    def test_unresolved_name(self):
        violations = violations_of(
            "SM x { States s: str Transitions { T() { write(s, ghost); } } }"
        )
        assert any("unresolved name 'ghost'" in v for v in violations)

    def test_enum_symbols_resolve(self):
        assert violations_of(
            "SM x { States s: str Transitions { T() { write(s, ACTIVE); } } }"
        ) == []

    def test_read_binds_a_local(self):
        assert violations_of(
            "SM x { States s: str, t: str Transitions { "
            "T() { read(s, v); write(t, v); } } }"
        ) == []

    def test_params_resolve(self):
        assert violations_of(
            "SM x { States s: str Transitions { T(v: str) { write(s, v); } } }"
        ) == []

    def test_id_is_implicit(self):
        assert violations_of(
            "SM x { States s: str Transitions { T() { write(s, id); } } }"
        ) == []


class TestFunctionsAndCalls:
    def test_unknown_builtin(self):
        violations = violations_of(
            "SM x { States s: str Transitions { "
            "T(v: str) { assert(frob(v)); } } }"
        )
        assert any("unknown builtin" in v for v in violations)

    def test_call_on_non_sm_value(self):
        violations = violations_of(
            "SM x { States s: str Transitions { "
            "T(v: str) { call(v.Frob(self)); } } }"
        )
        assert any("not an SM reference" in v for v in violations)

    def test_call_to_unknown_transition_cross_module(self):
        violations = violations_of(
            "SM a { States s: str Transitions { "
            "T(r: SM<b>) { call(r.Ghost(self)); } } }"
            "SM b { States t: str Transitions { Real(); } }"
        )
        assert any("unknown transition b.Ghost" in v for v in violations)

    def test_call_to_known_transition_passes(self):
        assert violations_of(
            "SM a { States s: str Transitions { "
            "T(r: SM<b>) { call(r.Real(self)); } } }"
            "SM b { States t: str Transitions { "
            "Real(peer: SM<a>) { write(t, peer); } } }"
        ) == []

    def test_validate_module_raises(self):
        module = parse_module(
            "SM x { States s: str Transitions { T() { write(ghost, s); } } }"
        )
        with pytest.raises(SpecValidationError) as exc_info:
            validate_module(module)
        assert exc_info.value.violations
