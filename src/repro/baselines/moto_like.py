"""The handcrafted-emulator baseline (Moto, §2 and Table 1).

A manually engineered mock with exactly the per-service API coverage
Table 1 reports (EC2 177/571, DynamoDB 39/57, Network Firewall 5/45,
EKS 15/58).  Core VPC networking, instances and DynamoDB tables are
implemented by hand; the long tail of covered APIs responds with
generic mock state, and everything outside the coverage list fails
with ``InvalidAction`` — which is how incomplete emulator coverage
manifests to a DevOps program.

The implementation deliberately reproduces the known fidelity bug the
paper cites: ``DeleteVpc`` succeeds even when the VPC still contains an
internet gateway, where the real cloud returns ``DependencyViolation``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..docs.inventory import moto_emulated
from ..interpreter.errors import ApiResponse


def _normalize(key: str) -> str:
    return key.replace("_", "").replace("-", "").lower()


@dataclass
class MotoLikeEmulator:
    """Handcrafted partial emulator for one service."""

    service: str
    resources: dict[str, dict] = field(default_factory=dict)
    _counter: int = 0

    def __post_init__(self) -> None:
        self._emulated = set(moto_emulated(self.service))

    # -- backend surface --------------------------------------------------

    def api_names(self) -> list[str]:
        return sorted(self._emulated)

    def supports(self, api: str) -> bool:
        return api in self._emulated

    def reset(self) -> None:
        self.resources = {}
        self._counter = 0

    def invoke(self, api: str, params: dict | None = None) -> ApiResponse:
        if api not in self._emulated:
            return ApiResponse.fail(
                "InvalidAction",
                f"The action {api} is not valid for this endpoint.",
            )
        request = {_normalize(k): v for k, v in (params or {}).items()}
        handler = getattr(self, f"_api_{api}", None)
        if handler is not None:
            return handler(request)
        return self._generic_mock(api, request)

    # -- shared helpers ----------------------------------------------------------

    def _new(self, kind: str, state: dict | None = None) -> dict:
        self._counter += 1
        resource = {
            "id": f"{kind}-moto{self._counter:06d}",
            "type": kind,
            "state": dict(state or {}),
        }
        self.resources[resource["id"]] = resource
        return resource

    def _get(self, request: dict, kind: str):
        value = request.get(_normalize(f"{kind}_id"))
        if value is None:
            return ApiResponse.fail(
                "MissingParameter",
                f"The request must contain the parameter {kind}_id",
            )
        resource = self.resources.get(str(value))
        if resource is None or resource["type"] != kind:
            camel = "".join(p.capitalize() for p in kind.split("_"))
            return ApiResponse.fail(
                f"Invalid{camel}ID.NotFound",
                f"The {kind} ID '{value}' does not exist",
            )
        return resource

    def _generic_mock(self, api: str, request: dict) -> ApiResponse:
        """The catch-all mock: record a blob, answer success.

        This mirrors how handcrafted emulators stub rarely-used APIs —
        "responding ... by adding a mock name, state and location to
        the internal state" (§2) without enforcing real semantics.
        """
        if api.startswith(("Describe", "Get", "List")):
            return ApiResponse.ok({"mock": True})
        if api.startswith(("Create", "Allocate", "Run", "Start", "Put")):
            resource = self._new("mock")
            return ApiResponse.ok({"id": resource["id"], "mock": True})
        return ApiResponse.ok({"mock": True})

    # -- EC2 core, hand-written --------------------------------------------------

    def _api_CreateVpc(self, request: dict) -> ApiResponse:
        cidr = request.get("cidrblock")
        if cidr is None:
            return ApiResponse.fail("MissingParameter",
                                    "CidrBlock is required")
        vpc = self._new("vpc", {
            "cidr_block": cidr,
            "state": "available",
            "instance_tenancy": request.get("instancetenancy", "default"),
            "enable_dns_support": True,
            "enable_dns_hostnames": False,
            "gateways": [],
            "subnet_cidrs": [],
            "endpoints": [],
        })
        return ApiResponse.ok({"id": vpc["id"], "vpc_id": vpc["id"]})

    def _api_DeleteVpc(self, request: dict) -> ApiResponse:
        vpc = self._get(request, "vpc")
        if isinstance(vpc, ApiResponse):
            return vpc
        # KNOWN BUG (kept deliberately, §2): the real cloud rejects this
        # with DependencyViolation while gateways remain attached; this
        # handcrafted implementation forgot the check.
        self.resources.pop(vpc["id"], None)
        return ApiResponse.ok({})

    def _api_DescribeVpcs(self, request: dict) -> ApiResponse:
        vpc = self._get(request, "vpc")
        if isinstance(vpc, ApiResponse):
            return vpc
        return ApiResponse.ok(dict(vpc["state"]))

    def _api_CreateSubnet(self, request: dict) -> ApiResponse:
        vpc = self._get(request, "vpc")
        if isinstance(vpc, ApiResponse):
            return vpc
        cidr = request.get("cidrblock")
        if cidr is None:
            return ApiResponse.fail("MissingParameter",
                                    "CidrBlock is required")
        subnet = self._new("subnet", {
            "cidr_block": cidr,
            "vpc": vpc["id"],
            "state": "available",
            "map_public_ip_on_launch": False,
            "availability_zone": request.get("availabilityzone"),
            "interfaces": [],
            "instances": [],
        })
        vpc["state"]["subnet_cidrs"].append(cidr)
        return ApiResponse.ok({"id": subnet["id"],
                               "subnet_id": subnet["id"]})

    def _api_DeleteSubnet(self, request: dict) -> ApiResponse:
        subnet = self._get(request, "subnet")
        if isinstance(subnet, ApiResponse):
            return subnet
        vpc = self.resources.get(subnet["state"].get("vpc", ""))
        if vpc is not None:
            cidrs = vpc["state"].get("subnet_cidrs", [])
            if subnet["state"]["cidr_block"] in cidrs:
                cidrs.remove(subnet["state"]["cidr_block"])
        self.resources.pop(subnet["id"], None)
        return ApiResponse.ok({})

    def _api_DescribeSubnets(self, request: dict) -> ApiResponse:
        subnet = self._get(request, "subnet")
        if isinstance(subnet, ApiResponse):
            return subnet
        return ApiResponse.ok(dict(subnet["state"]))

    def _api_ModifySubnetAttribute(self, request: dict) -> ApiResponse:
        subnet = self._get(request, "subnet")
        if isinstance(subnet, ApiResponse):
            return subnet
        value = request.get("mappubliciponlaunch")
        if value is not None:
            subnet["state"]["map_public_ip_on_launch"] = value
        return ApiResponse.ok({})

    def _api_CreateInternetGateway(self, request: dict) -> ApiResponse:
        igw = self._new("internet_gateway", {"vpc": None,
                                             "state": "detached"})
        return ApiResponse.ok({
            "id": igw["id"], "internet_gateway_id": igw["id"],
        })

    def _api_AttachInternetGateway(self, request: dict) -> ApiResponse:
        igw = self._get(request, "internet_gateway")
        if isinstance(igw, ApiResponse):
            return igw
        vpc = self._get(request, "vpc")
        if isinstance(vpc, ApiResponse):
            return vpc
        if igw["state"].get("vpc"):
            return ApiResponse.fail("Resource.AlreadyAssociated",
                                    "already attached")
        igw["state"]["vpc"] = vpc["id"]
        igw["state"]["state"] = "attached"
        vpc["state"]["gateways"].append(igw["id"])
        return ApiResponse.ok({})

    def _api_DetachInternetGateway(self, request: dict) -> ApiResponse:
        igw = self._get(request, "internet_gateway")
        if isinstance(igw, ApiResponse):
            return igw
        vpc = self.resources.get(igw["state"].get("vpc") or "")
        if vpc is not None and igw["id"] in vpc["state"].get("gateways", []):
            vpc["state"]["gateways"].remove(igw["id"])
        igw["state"]["vpc"] = None
        igw["state"]["state"] = "detached"
        return ApiResponse.ok({})

    def _api_RunInstances(self, request: dict) -> ApiResponse:
        subnet = self._get(request, "subnet")
        if isinstance(subnet, ApiResponse):
            return subnet
        instance = self._new("instance", {
            "state": "running",
            "instance_type": request.get("instancetype"),
            "image_id": request.get("imageid"),
            "subnet": subnet["id"],
        })
        subnet["state"]["instances"].append(instance["id"])
        return ApiResponse.ok({
            "id": instance["id"], "instance_id": instance["id"],
        })

    def _api_DescribeInstances(self, request: dict) -> ApiResponse:
        instance = self._get(request, "instance")
        if isinstance(instance, ApiResponse):
            return instance
        return ApiResponse.ok(dict(instance["state"]))

    def _api_StopInstances(self, request: dict) -> ApiResponse:
        instance = self._get(request, "instance")
        if isinstance(instance, ApiResponse):
            return instance
        instance["state"]["state"] = "stopped"
        return ApiResponse.ok({})

    def _api_StartInstances(self, request: dict) -> ApiResponse:
        instance = self._get(request, "instance")
        if isinstance(instance, ApiResponse):
            return instance
        # Another fidelity gap: no IncorrectInstanceState enforcement.
        instance["state"]["state"] = "running"
        return ApiResponse.ok({})

    # -- DynamoDB core, hand-written --------------------------------------------

    def _api_CreateTable(self, request: dict) -> ApiResponse:
        name = request.get("tablename")
        if name is None:
            return ApiResponse.fail("ValidationException",
                                    "TableName is required")
        table = self._new("table", {
            "table_name": name,
            "billing_mode": request.get("billingmode", "PROVISIONED"),
            "status": "ACTIVE",
            "items": {},
        })
        return ApiResponse.ok({"id": table["id"], "table_id": table["id"]})

    def _api_DeleteTable(self, request: dict) -> ApiResponse:
        table = self._get(request, "table")
        if isinstance(table, ApiResponse):
            return table
        self.resources.pop(table["id"], None)
        return ApiResponse.ok({})

    def _api_DescribeTable(self, request: dict) -> ApiResponse:
        table = self._get(request, "table")
        if isinstance(table, ApiResponse):
            return table
        return ApiResponse.ok(dict(table["state"]))

    def _api_PutItem(self, request: dict) -> ApiResponse:
        table = self._get(request, "table")
        if isinstance(table, ApiResponse):
            return table
        key = request.get("itemkey")
        if key is None:
            return ApiResponse.fail("ValidationException",
                                    "item key is required")
        table["state"]["items"][key] = request.get("itemvalue")
        return ApiResponse.ok({})

    def _api_GetItem(self, request: dict) -> ApiResponse:
        table = self._get(request, "table")
        if isinstance(table, ApiResponse):
            return table
        key = request.get("itemkey")
        return ApiResponse.ok(
            {"value": table["state"]["items"].get(key)}
        )

    # -- Network Firewall: the 5 covered APIs -------------------------------------

    def _api_CreateFirewallPolicy(self, request: dict) -> ApiResponse:
        policy = self._new("firewall_policy", {
            "policy_name": request.get("policyname"),
        })
        return ApiResponse.ok({
            "id": policy["id"], "firewall_policy_id": policy["id"],
        })

    def _api_DescribeFirewallPolicy(self, request: dict) -> ApiResponse:
        policy = self._get(request, "firewall_policy")
        if isinstance(policy, ApiResponse):
            return policy
        return ApiResponse.ok(dict(policy["state"]))

    def _api_CreateFirewall(self, request: dict) -> ApiResponse:
        firewall = self._new("firewall", {
            "firewall_name": request.get("firewallname"),
            "firewall_policy": request.get("firewallpolicyid"),
        })
        return ApiResponse.ok({
            "id": firewall["id"], "firewall_id": firewall["id"],
        })

    def _api_DescribeFirewall(self, request: dict) -> ApiResponse:
        firewall = self._get(request, "firewall")
        if isinstance(firewall, ApiResponse):
            return firewall
        return ApiResponse.ok(dict(firewall["state"]))

    def _api_ListFirewalls(self, request: dict) -> ApiResponse:
        ids = sorted(
            resource["id"] for resource in self.resources.values()
            if resource["type"] == "firewall"
        )
        return ApiResponse.ok({"ids": ids, "count": len(ids)})


def build_moto_like(service: str) -> MotoLikeEmulator:
    """The handcrafted baseline for one service."""
    return MotoLikeEmulator(service=service)
