"""The direct-to-code (D2C) baseline (§5).

The same LLM is prompted to generate emulation logic *directly* from
cloud documentation — no SM grammar, no consistency checks, no
alignment.  The simulation mirrors that: the documented rules pass
through the ``direct`` fault profile (which drops the subtle checks and
uncommon attributes §5 reports D2C missing), and the surviving rules
are translated to plain Python handler *source code* that is exec'd
and dispatched per API.

Two deliberate properties of naive generated code are preserved:

- checks and effects run interleaved in documentation order, so a
  mid-handler failure leaves partial state behind (no transactions);
- dropped checks fail *silently* — the handler returns success where
  the cloud errors (the "dangerous state inconsistency" of §5).
"""

from __future__ import annotations

import ipaddress
from dataclasses import dataclass, field

from ..docs.model import ApiDoc, ResourceDoc, Rule, ServiceDoc
from ..interpreter.errors import ApiResponse
from ..llm.faults import DIRECT_PROFILE, FaultModel


def _normalize(key: str) -> str:
    return key.replace("_", "").replace("-", "").lower()


# --------------------------------------------------------------------------
# Runtime helpers available to generated handler code.
# --------------------------------------------------------------------------


def _rt_valid_cidr(value):
    if not isinstance(value, str) or "/" not in value:
        return False
    try:
        ipaddress.IPv4Network(value, strict=False)
    except ValueError:
        return False
    return True


def _rt_prefix_len(value):
    if not _rt_valid_cidr(value):
        return -1
    return ipaddress.IPv4Network(value, strict=False).prefixlen


def _rt_overlaps_any(value, blocks):
    if not _rt_valid_cidr(value):
        return False
    net = ipaddress.IPv4Network(value, strict=False)
    for other in blocks or []:
        if _rt_valid_cidr(other) and net.overlaps(
            ipaddress.IPv4Network(other, strict=False)
        ):
            return True
    return False


def _rt_within(value, outer):
    if not (_rt_valid_cidr(value) and _rt_valid_cidr(outer)):
        return False
    return ipaddress.IPv4Network(value, strict=False).subnet_of(
        ipaddress.IPv4Network(outer, strict=False)
    )


_RUNTIME = {
    "valid_cidr": _rt_valid_cidr,
    "prefix_len": _rt_prefix_len,
    "overlaps_any": _rt_overlaps_any,
    "cidr_within": _rt_within,
}


@dataclass
class GeneratedHandler:
    """One API's generated Python handler."""

    api: str
    resource: str
    source: str
    func: object = None


class D2CCodeGenerator:
    """Translates (faulted) documented rules into Python handler source."""

    def __init__(self, fault_model: FaultModel):
        self.fault_model = fault_model

    def generate(self, res: ResourceDoc, api: ApiDoc,
                 kept_attributes: list[str]) -> GeneratedHandler:
        decision = self.fault_model.decide_api(
            res.name, api.name, api.documented_rules(), api.category,
            kept_attributes,
        )
        lines = [
            f"def handler(cloud, params):",
            f"    # generated from documentation for {res.name}.{api.name}",
        ]
        if api.category == "create":
            lines.append(f"    entity = cloud.new_entity('{res.name}')")
        else:
            lines.append(
                f"    entity = cloud.find(params, '{res.name}')"
            )
            lines.append("    if isinstance(entity, dict) is False:")
            lines.append("        return entity  # error response")
        lines.append("    data = {}")
        known = set(kept_attributes)
        for behaviour in api.documented_rules():
            if behaviour in decision.dropped_rules:
                continue
            code = behaviour.error_code
            if behaviour in decision.miscoded_rules:
                code = self.fault_model.generic_code()
            lines.extend(
                "    " + line
                for line in self._rule_lines(res, behaviour, code, known)
            )
        if decision.describe_write_attr:
            lines.append(
                f"    entity['state'][{decision.describe_write_attr!r}] = None"
            )
        if api.category == "destroy":
            lines.append("    cloud.delete(entity)")
        if api.category == "create":
            lines.append("    data.setdefault('id', entity['id'])")
            lines.append(
                f"    data.setdefault('{res.name}_id', entity['id'])"
            )
        lines.append("    return cloud.ok(data)")
        return GeneratedHandler(api=api.name, resource=res.name,
                                source="\n".join(lines))

    def _rule_lines(self, res: ResourceDoc, behaviour: Rule, code: str,
                    known: set[str]) -> list[str]:
        kind = behaviour.kind
        get = lambda key: str(behaviour[key])  # noqa: E731
        # Request keys are normalized before dispatch; generated lookups
        # must use the normalized spelling.
        req = lambda key: _normalize(str(behaviour[key]))  # noqa: E731
        fail = f"return cloud.fail({code!r})"
        if kind == "require_param":
            return [f"if params.get({req('param')!r}) is None:",
                    f"    {fail}"]
        if kind == "require_one_of":
            values = tuple(behaviour["values"])  # type: ignore[arg-type]
            return [
                f"value = params.get({req('param')!r})",
                f"if value is not None and value not in {values!r}:",
                f"    {fail}",
            ]
        if kind == "check_valid_cidr":
            return [
                f"value = params.get({req('param')!r})",
                "if value is not None and not valid_cidr(value):",
                f"    {fail}",
            ]
        if kind == "check_prefix_between":
            lo, hi = int(behaviour["lo"]), int(behaviour["hi"])  # type: ignore[arg-type]
            return [
                f"value = params.get({req('param')!r})",
                "if value is not None and not "
                f"({lo} <= prefix_len(value) <= {hi}):",
                f"    {fail}",
            ]
        if kind == "check_cidr_within":
            return [
                f"ref = cloud.find_ref(params, {get('ref')!r})",
                f"if ref is None or not cidr_within("
                f"params.get({req('param')!r}), "
                f"ref['state'].get({get('ref_attr')!r})):",
                f"    {fail}",
            ]
        if kind == "check_no_overlap":
            return [
                f"ref = cloud.find_ref(params, {get('ref')!r})",
                f"if ref is not None and overlaps_any("
                f"params.get({req('param')!r}), "
                f"ref['state'].get({get('list_attr')!r})):",
                f"    {fail}",
            ]
        if kind == "check_attr_is":
            return [
                f"if entity['state'].get({get('attr')!r}) != "
                f"{behaviour['value']!r}:",
                f"    {fail}",
            ]
        if kind == "check_attr_is_not":
            return [
                f"if entity['state'].get({get('attr')!r}) == "
                f"{behaviour['value']!r}:",
                f"    {fail}",
            ]
        if kind == "check_attr_set":
            return [f"if not entity['state'].get({get('attr')!r}):",
                    f"    {fail}"]
        if kind == "check_attr_unset":
            return [f"if entity['state'].get({get('attr')!r}):",
                    f"    {fail}"]
        if kind == "check_list_empty":
            return [f"if entity['state'].get({get('attr')!r}):",
                    f"    {fail}"]
        if kind == "check_attr_matches_ref":
            return [
                f"ref = cloud.find_ref(params, {get('ref')!r})",
                f"if ref is None or entity['state'].get({get('attr')!r}) "
                f"!= ref['state'].get({get('ref_attr')!r}):",
                f"    {fail}",
            ]
        if kind == "check_ref_attr_is":
            return [
                f"ref = cloud.find_ref(params, {get('ref')!r})",
                f"if ref is None or ref['state'].get({get('ref_attr')!r}) "
                f"!= {behaviour['value']!r}:",
                f"    {fail}",
            ]
        if kind == "check_in_list":
            return [
                f"if params.get({req('param')!r}) not in "
                f"(entity['state'].get({get('attr')!r}) or []):",
                f"    {fail}",
            ]
        if kind == "check_not_in_list":
            return [
                f"if params.get({req('param')!r}) in "
                f"(entity['state'].get({get('attr')!r}) or []):",
                f"    {fail}",
            ]
        if kind == "check_in_map":
            return [
                f"if params.get({req('key_param')!r}) not in "
                f"(entity['state'].get({get('attr')!r}) or {{}}):",
                f"    {fail}",
            ]
        if kind == "check_param_implies_attr":
            return [
                f"if params.get({req('param')!r}) == "
                f"{behaviour['value']!r} and "
                f"entity['state'].get({get('attr')!r}) != "
                f"{behaviour['attr_value']!r}:",
                f"    {fail}",
            ]
        # -- effects --------------------------------------------------
        if kind in ("set_attr_param", "link_ref"):
            attr = get("attr")
            if attr not in known:
                return []
            source = "link_ref" if kind == "link_ref" else "set"
            return [
                f"value = params.get({req('param')!r})",
                "if value is not None:",
                f"    entity['state'][{attr!r}] = value  # {source}",
            ]
        if kind == "set_attr_const":
            attr = get("attr")
            if attr not in known:
                return []
            return [f"entity['state'][{attr!r}] = {behaviour['value']!r}"]
        if kind == "set_attr_fresh":
            attr = get("attr")
            if attr not in known:
                return []
            return [f"entity['state'][{attr!r}] = cloud.fresh({attr!r})"]
        if kind == "clear_attr":
            attr = get("attr")
            if attr not in known:
                return []
            return [f"entity['state'][{attr!r}] = None"]
        if kind == "read_attr":
            attr = get("attr")
            if attr not in known:
                return []
            return [f"data[{attr!r}] = entity['state'].get({attr!r})"]
        if kind == "append_to_attr":
            attr = get("attr")
            return [
                f"items = list(entity['state'].get({attr!r}) or [])",
                f"items.append(params.get({req('param')!r}))",
                f"entity['state'][{attr!r}] = items",
            ]
        if kind == "remove_from_attr":
            attr = get("attr")
            return [
                f"items = list(entity['state'].get({attr!r}) or [])",
                f"value = params.get({req('param')!r})",
                "if value in items:",
                "    items.remove(value)",
                f"entity['state'][{attr!r}] = items",
            ]
        if kind == "map_put":
            attr = get("attr")
            return [
                f"mapping = dict(entity['state'].get({attr!r}) or {{}})",
                f"mapping[params.get({req('key_param')!r})] = "
                f"params.get({req('value_param')!r})",
                f"entity['state'][{attr!r}] = mapping",
            ]
        if kind == "map_remove":
            attr = get("attr")
            return [
                f"mapping = dict(entity['state'].get({attr!r}) or {{}})",
                f"mapping.pop(params.get({req('key_param')!r}), None)",
                f"entity['state'][{attr!r}] = mapping",
            ]
        if kind == "map_read":
            attr = get("attr")
            return [
                f"mapping = entity['state'].get({attr!r}) or {{}}",
                f"data['value'] = mapping.get(params.get({req('key_param')!r}))",
            ]
        if kind == "call_ref":
            return [
                f"ref = cloud.find_ref(params, {get('param')!r})",
                "if ref is not None:",
                f"    cloud.call(ref, {get('transition')!r}, entity)",
            ]
        if kind == "call_attr":
            return [
                f"target_id = entity['state'].get({get('attr')!r})",
                "target = cloud.entity(target_id)",
                "if target is not None:",
                f"    cloud.call(target, {get('transition')!r}, entity)",
            ]
        if kind == "track_in_ref":
            return [
                f"ref = cloud.find_ref(params, {get('param')!r})",
                "if ref is not None:",
                f"    items = list(ref['state'].get({get('list_attr')!r}) "
                "or [])",
                f"    items.append(cloud.source(entity, params, "
                f"{get('source')!r}))",
                f"    ref['state'][{get('list_attr')!r}] = items",
            ]
        if kind == "untrack_in_attr":
            return [
                f"target = cloud.entity(entity['state'].get({get('attr')!r}))",
                "if target is not None:",
                f"    items = list(target['state'].get("
                f"{get('list_attr')!r}) or [])",
                f"    value = cloud.source(entity, params, "
                f"{get('source')!r})",
                "    if value in items:",
                "        items.remove(value)",
                f"    target['state'][{get('list_attr')!r}] = items",
            ]
        return [f"# unsupported rule kind {kind!r} skipped"]


@dataclass
class D2CEmulator:
    """The direct-to-code emulator: exec'd generated handlers + a dict
    store, with no grammar, checks, transactions or alignment."""

    service_doc: ServiceDoc
    seed: int = 7
    handlers: dict[str, GeneratedHandler] = field(default_factory=dict)
    store: dict[str, dict] = field(default_factory=dict)
    notfound: dict[str, str] = field(default_factory=dict)
    defaults: dict[str, dict] = field(default_factory=dict)
    _counter: int = 0

    def __post_init__(self) -> None:
        fault_model = FaultModel(DIRECT_PROFILE, seed=self.seed)
        generator = D2CCodeGenerator(fault_model)
        self._subject_keys: dict[str, str] = {}
        self._api_category: dict[str, str] = {}
        for res in self.service_doc.resources:
            dropped = fault_model.decide_attributes(
                res.name, [a.name for a in res.attributes]
            )
            kept = [a for a in res.attributes if a.name not in dropped]
            self.notfound[res.name] = res.notfound_code or (
                "Invalid"
                + "".join(p.capitalize() for p in res.name.split("_"))
                + "ID.NotFound"
            )
            state: dict = {}
            for attribute in kept:
                value = attribute.default
                if value is None and attribute.type == "List":
                    value = []
                if value is None and attribute.type == "Map":
                    value = {}
                state[attribute.name] = value
            self.defaults[res.name] = state
            for api in res.apis:
                handler = generator.generate(res, api,
                                             [a.name for a in kept])
                namespace = dict(_RUNTIME)
                exec(handler.source, namespace)  # noqa: S102 - generated code
                handler.func = namespace["handler"]
                self.handlers[api.name] = handler
                self._api_category[api.name] = api.category

    # -- backend surface ----------------------------------------------------

    def api_names(self) -> list[str]:
        return sorted(self.handlers)

    def supports(self, api: str) -> bool:
        return api in self.handlers

    def reset(self) -> None:
        self.store = {}
        self._counter = 0

    def invoke(self, api: str, params: dict | None = None) -> ApiResponse:
        handler = self.handlers.get(api)
        if handler is None:
            return ApiResponse.fail("InvalidAction", f"unknown action {api}")
        request = {_normalize(k): v for k, v in (params or {}).items()}
        if (
            self._api_category.get(api) == "describe"
            and not request
        ):
            ids = sorted(
                entity["id"] for entity in self.store.values()
                if entity["type"] == handler.resource
            )
            return ApiResponse.ok({"ids": ids, "count": len(ids)})
        self._current_resource = handler.resource
        result = handler.func(self, request)
        if isinstance(result, ApiResponse):
            return result
        return ApiResponse.fail("InternalError", "generated handler crashed")

    # -- generated-code runtime surface ------------------------------------------

    def ok(self, data: dict) -> ApiResponse:
        return ApiResponse.ok(data)

    def fail(self, code: str, message: str = "") -> ApiResponse:
        return ApiResponse.fail(code, message or "request failed")

    def fresh(self, prefix: str) -> str:
        self._counter += 1
        return f"d2c-{prefix}-{self._counter:06d}"

    def new_entity(self, resource: str) -> dict:
        self._counter += 1
        entity = {
            "id": f"{resource}-d2c{self._counter:08d}",
            "type": resource,
            "state": dict(self.defaults.get(resource, {})),
        }
        self.store[entity["id"]] = entity
        return entity

    def entity(self, entity_id: object) -> dict | None:
        if entity_id is None:
            return None
        return self.store.get(str(entity_id))

    def find(self, params: dict, resource: str):
        value = params.get(_normalize(f"{resource}_id"))
        if value is None:
            return ApiResponse.fail(
                "MissingParameter",
                f"The request must contain the parameter {resource}_id",
            )
        entity = self.store.get(str(value))
        if entity is None or entity["type"] != resource:
            return ApiResponse.fail(
                self.notfound.get(resource, "ResourceNotFoundException"),
                f"The {resource} ID '{value}' does not exist",
            )
        return entity

    def find_ref(self, params: dict, param_name: str) -> dict | None:
        value = params.get(_normalize(param_name))
        if value is None:
            return None
        return self.store.get(str(value))

    def delete(self, entity: dict) -> None:
        self.store.pop(entity["id"], None)

    def source(self, entity: dict, params: dict, name: str):
        if name == "id":
            return entity["id"]
        value = params.get(_normalize(name))
        if value is not None:
            return value
        return entity["state"].get(name)

    def call(self, target: dict, api: str, caller: dict) -> None:
        handler = self.handlers.get(api)
        if handler is None:
            return
        request = {_normalize(f"{target['type']}_id"): target["id"]}
        entry = self.service_doc.find_api(api)
        if entry is not None:
            for param in entry[1].params:
                if param.type == "Reference" and param.ref == caller["type"]:
                    request[_normalize(param.name)] = caller["id"]
        handler.func(self, request)

    def generated_source(self, api: str) -> str:
        """The Python source the 'LLM' generated for one API."""
        return self.handlers[api].source


def build_d2c_emulator(service_doc: ServiceDoc, seed: int = 7) -> D2CEmulator:
    """Generate and load the D2C emulator for one service's docs."""
    return D2CEmulator(service_doc=service_doc, seed=seed)
