"""The paper's comparison baselines: the handcrafted (Moto-like)
emulator with Table 1's coverage, and the direct-to-code generator.
"""

from .d2c import build_d2c_emulator, D2CCodeGenerator, D2CEmulator
from .moto_like import build_moto_like, MotoLikeEmulator

__all__ = [
    "build_d2c_emulator",
    "build_moto_like",
    "D2CCodeGenerator",
    "D2CEmulator",
    "MotoLikeEmulator",
]
