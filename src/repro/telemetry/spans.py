"""Hierarchical tracing spans on the pipeline's virtual clock.

A span is one timed unit of pipeline work (a build, an extraction
pass, one resource's generation, one LLM request, one emulated API
call).  Spans nest: the tracer keeps a stack, so whatever is opened
while another span is active becomes its child, and the finished tree
mirrors the call structure of the run (build -> extraction pass ->
resource -> LLM call; alignment round -> trace -> API call).

Time comes from the same clock abstraction the resilience layer uses
(:class:`~repro.resilience.policy.VirtualClock` by default), so a
traced run is exactly reproducible: durations measure *virtual*
seconds — backoff waits, breaker cooldowns — not host wall time.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from dataclasses import dataclass, field


@dataclass
class SpanEvent:
    """A point-in-time fact attached to a span (a retry, a trip)."""

    name: str
    time: float
    attributes: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "time": self.time,
            "attributes": dict(self.attributes),
        }


class Span:
    """One timed, attributed unit of work in the trace tree."""

    __slots__ = (
        "name", "kind", "span_id", "parent_id", "start", "end",
        "status", "attributes", "events", "children",
    )

    def __init__(
        self,
        name: str,
        kind: str = "",
        span_id: str = "",
        parent_id: str | None = None,
        start: float = 0.0,
        attributes: dict | None = None,
    ):
        self.name = name
        self.kind = kind
        self.span_id = span_id
        self.parent_id = parent_id
        self.start = start
        self.end = start
        self.status = "ok"
        self.attributes = dict(attributes or {})
        self.events: list[SpanEvent] = []
        self.children: list[Span] = []

    @property
    def duration(self) -> float:
        return max(0.0, self.end - self.start)

    def set(self, key: str, value: object) -> None:
        """Attach (or overwrite) one attribute."""
        self.attributes[key] = value

    def event(self, name: str, time: float, **attributes: object) -> SpanEvent:
        record = SpanEvent(name=name, time=time, attributes=dict(attributes))
        self.events.append(record)
        return record

    def to_dict(self) -> dict:
        return {
            "id": self.span_id,
            "parent": self.parent_id,
            "name": self.name,
            "kind": self.kind,
            "start": self.start,
            "end": self.end,
            "duration": self.duration,
            "status": self.status,
            "attributes": dict(self.attributes),
            "events": [event.to_dict() for event in self.events],
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Span({self.name!r}, kind={self.kind!r}, "
                f"id={self.span_id!r}, children={len(self.children)})")


class Tracer:
    """Builds the span tree for one run.

    Strictly nested usage (``with tracer.span(...)``) per thread is
    the only supported shape.  The span stack is thread-local, so a
    pipeline that fans work out onto a thread pool keeps each worker's
    spans properly nested; a worker's *root* span attaches to the
    anchor span (see :meth:`anchored`) its orchestrator set before the
    fan-out, so the finished tree still mirrors the run's structure.
    Ids stay sequential under a lock; their assignment order between
    concurrent workers is the only nondeterminism a parallel run adds.
    """

    def __init__(self, clock):
        self.clock = clock
        self.roots: list[Span] = []
        self._local = threading.local()
        self._lock = threading.Lock()
        self._anchor: Span | None = None
        self._count = 0

    @property
    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    @property
    def current(self) -> Span | None:
        """The innermost open span on the calling thread, if any."""
        stack = self._stack
        return stack[-1] if stack else None

    @property
    def span_count(self) -> int:
        return self._count

    @contextmanager
    def anchored(self):
        """Anchor worker-thread root spans to the caller's current span.

        Used around a thread-pool fan-out: spans opened by a thread
        with an empty stack become children of the span that was
        current here, instead of disconnected roots.
        """
        previous = self._anchor
        self._anchor = self.current
        try:
            yield
        finally:
            self._anchor = previous

    @contextmanager
    def span(self, name: str, kind: str = "", **attributes: object):
        """Open a child span of the current span for the ``with`` body."""
        stack = self._stack
        parent = stack[-1] if stack else self._anchor
        with self._lock:
            self._count += 1
            span_id = f"s{self._count}"
            record = Span(
                name=name,
                kind=kind,
                span_id=span_id,
                parent_id=parent.span_id if parent is not None else None,
                start=self.clock.now(),
                attributes=attributes,
            )
            if parent is not None:
                parent.children.append(record)
            else:
                self.roots.append(record)
        stack.append(record)
        try:
            yield record
        except BaseException as error:
            record.status = "error"
            record.attributes.setdefault("exception", type(error).__name__)
            # A simulated process death carries its kill site; stamping
            # it on the span makes crash-injection runs greppable in
            # the exported trace (duck-typed: no import of the chaos
            # layer from here).
            site = getattr(error, "site", None)
            if site is not None:
                record.attributes.setdefault("crash_site", site)
            raise
        finally:
            record.end = self.clock.now()
            stack.pop()

    def discard_root(self, span: Span) -> bool:
        """Drop a finished root span (and its subtree) from the trace.

        The tail sampler's eviction hook: a request tree it decides
        not to keep is removed wholesale, so the exported trace stays
        bounded under load.  Returns whether the span was actually a
        root (an attached child cannot be discarded this way).
        """
        with self._lock:
            try:
                self.roots.remove(span)
            except ValueError:
                return False
        return True

    def walk(self):
        """Every finished-or-open span, pre-order (parents first)."""
        pending = list(reversed(self.roots))
        while pending:
            span = pending.pop()
            yield span
            pending.extend(reversed(span.children))
