"""The run report: one folded view of what a build did and cost.

:class:`RunReport` collapses a finished
:class:`~repro.core.builder.LearnedEmulatorBuild` — module shape,
:class:`~repro.llm.client.LLMUsage`,
:class:`~repro.resilience.stats.ResilienceStats`, alignment outcome —
plus the run's metrics snapshot into one structure with three
renderings: the CLI's console summary, machine-readable JSON
(``repro build --json``), and the JSONL trailer record.

:func:`render_trace_report` is the offline counterpart: it takes a
reloaded JSONL trace and renders the per-phase latency / token /
fault breakdown (``repro report <trace.jsonl>``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .export import render_span_tree, TraceData


@dataclass
class RunReport:
    """Everything one build produced, summarized."""

    service: str
    machines: int
    apis: int
    llm: dict
    alignment: dict | None
    resilience: dict
    quarantined: list[str] = field(default_factory=list)
    chaos_profile: str = "off"
    #: Journal/crash-recovery counters; ``None`` for unjournaled runs.
    durability: dict | None = None
    #: Filled only when the build ran with a live telemetry sink.
    spans: int = 0
    metrics: dict | None = None

    @classmethod
    def from_build(cls, build, telemetry=None) -> "RunReport":
        """Fold a finished build (duck-typed) into a report."""
        usage = build.llm.usage
        alignment = None
        if build.alignment is not None:
            alignment = {
                "rounds": len(build.alignment.rounds),
                "repairs": build.alignment.total_repairs,
                "divergences": build.alignment.total_divergences,
                "doc_gaps": build.alignment.doc_gaps_learned,
                "converged": build.alignment.converged,
            }
        resilience = build.resilience
        report = cls(
            service=build.service,
            machines=len(build.module.machines),
            apis=build.api_count,
            llm={
                "requests": usage.requests,
                "prompt_tokens": usage.prompt_tokens,
                "completion_tokens": usage.completion_tokens,
                "total_tokens": usage.prompt_tokens
                + usage.completion_tokens,
                "failed_requests": usage.failed_requests,
            },
            alignment=alignment,
            resilience={**resilience.as_dict(), "clean": resilience.clean},
            quarantined=list(build.extraction.quarantined),
            chaos_profile=build.extraction.chaos_profile,
        )
        durability = getattr(build, "durability", None)
        if durability is not None and not durability.untouched:
            report.durability = durability.as_dict()
        if telemetry is not None and telemetry.enabled:
            report.spans = telemetry.tracer.span_count
            report.metrics = telemetry.metrics.snapshot()
        return report

    def to_dict(self) -> dict:
        record = {
            "service": self.service,
            "machines": self.machines,
            "apis": self.apis,
            "llm": dict(self.llm),
            "alignment": dict(self.alignment) if self.alignment else None,
            "resilience": dict(self.resilience),
            "quarantined": list(self.quarantined),
            "chaos_profile": self.chaos_profile,
        }
        if self.durability is not None:
            record["durability"] = dict(self.durability)
        if self.spans:
            record["spans"] = self.spans
        if self.metrics is not None:
            record["metrics"] = self.metrics
        return record

    def render_console(self) -> str:
        """The ``repro build`` summary block."""
        llm = self.llm
        lines = [
            f"service:   {self.service}",
            f"machines:  {self.machines}",
            f"apis:      {self.apis}",
            f"llm calls: {llm['requests']} "
            f"({llm['prompt_tokens']} prompt + "
            f"{llm['completion_tokens']} completion = "
            f"{llm['total_tokens']} tokens, "
            f"{llm['failed_requests']} failed)",
        ]
        if self.alignment is not None:
            lines.append(
                f"alignment: {self.alignment['rounds']} round(s), "
                f"{self.alignment['repairs']} repair(s), "
                f"converged={self.alignment['converged']}"
            )
        if not self.resilience.get("clean", True):
            quarantined = self.quarantined
            lines.append(
                f"resilience: {self.resilience['retries']} retried, "
                f"{self.resilience['gave_ups']} gave up, "
                f"{self.resilience['round_restarts']} round restart(s), "
                f"{len(quarantined)} quarantined"
                + (f" ({', '.join(quarantined)})" if quarantined else "")
            )
        if self.durability is not None:
            durability = self.durability
            lines.append(
                f"durability: {durability['journal_appends']} journal "
                f"append(s), {durability['journal_replays']} replayed, "
                f"{durability['resumes']} resume(s), "
                f"{durability['torn_records_dropped']} torn record(s) "
                f"dropped"
            )
        return "\n".join(lines)


#: The event names the resilience layer emits, in display order.
FAULT_EVENTS = ("retry", "breaker_trip", "gave_up", "deadline_hit",
                "round_restart", "quarantined", "llm_parse_failure",
                "shard.restart", "shard.heartbeat_miss")


def _phase_rows(data: TraceData) -> list[tuple[str, int, dict, float]]:
    """(name, depth, kind-counts, duration) for build + phase spans."""
    children = data.span_children()

    def subtree_counts(span: dict) -> dict:
        counts: dict[str, int] = {}
        pending = [span]
        while pending:
            node = pending.pop()
            kind = node.get("kind") or "span"
            counts[kind] = counts.get(kind, 0) + 1
            pending.extend(children.get(node.get("id"), ()))
        return counts

    rows: list[tuple[str, int, dict, float]] = []
    roots = children.get(None, [])
    if len(roots) > 12:
        # Serve traces have one root span per request; fold the flood
        # into one aggregate row per span name.
        grouped: dict[str, tuple[int, dict, float]] = {}
        for root in roots:
            name = root.get("name", "?")
            count, counts, duration = grouped.get(name, (0, {}, 0.0))
            for kind, n in subtree_counts(root).items():
                counts[kind] = counts.get(kind, 0) + n
            grouped[name] = (
                count + 1, counts, duration + root.get("duration", 0.0)
            )
        for name in sorted(grouped):
            count, counts, duration = grouped[name]
            rows.append((f"{name} ×{count}", 0, counts, duration))
        return rows
    for root in roots:
        rows.append((root.get("name", "?"), 0, subtree_counts(root),
                     root.get("duration", 0.0)))
        for child in children.get(root.get("id"), []):
            if child.get("kind") != "phase":
                continue
            rows.append((child.get("name", "?"), 1, subtree_counts(child),
                         child.get("duration", 0.0)))
    return rows


def _metric_total(metrics: dict, prefix: str,
                  by_label: str | None = None) -> "int | dict":
    """Sum one counter family, flat or grouped by a label value."""
    flat = 0
    grouped: dict[str, int] = {}
    for key, record in metrics.items():
        if not key.startswith(prefix):
            continue
        if key != prefix and not key.startswith(prefix + "{"):
            continue
        value = int(record.get("value", 0))
        flat += value
        if by_label is not None:
            __, brace, labels = key.partition("{")
            for pair in labels.rstrip("}").split(",") if brace else ():
                label, __, label_value = pair.partition("=")
                if label == by_label:
                    grouped[label_value] = (
                        grouped.get(label_value, 0) + value
                    )
    return grouped if by_label is not None else flat


def _serving_rows(metrics: dict) -> list[str]:
    """Fold ``serve.*`` metrics into report fragments (empty when the
    trace did not come from the serving layer)."""

    def total(prefix: str, by_label: str | None = None) -> "int | dict":
        return _metric_total(metrics, prefix, by_label)

    requests = total("serve.requests")
    if not requests:
        return []
    rows = [f"{requests} request(s)"]
    shed_by_code = total("serve.shed", by_label="code")
    if shed_by_code:
        rows.append("shed " + " + ".join(
            f"{count} {code}"
            for code, count in sorted(shed_by_code.items())
        ))
    rejects = total("serve.validation_rejects")
    if rejects:
        rows.append(f"{rejects} validation reject(s)")
    degraded_reads = total("serve.degraded_reads")
    if degraded_reads:
        rows.append(f"{degraded_reads} degraded read(s)")
    samples = metrics.get("serve.queue_depth_samples", {})
    if samples.get("count"):
        rows.append(
            f"queue depth max {samples.get('max', 0):.0f} "
            f"(mean {samples.get('mean', 0):.2f} "
            f"over {samples['count']} sample(s))"
        )
    tenants = total("serve.tenants")
    if tenants:
        rows.append(f"{tenants} tenant(s)")
    publishes = total("serve.version_publishes")
    if publishes:
        # MVCC version churn: how many versions writers published, how
        # many reclamation freed, and how many are still live (the
        # gauge reads high when long-pinned readers lag the writers).
        live = metrics.get("serve.versions_live", {}).get("value", 0)
        reclaimed = total("serve.reclaimed")
        rows.append(
            f"{publishes} version publish(es) "
            f"({reclaimed} reclaimed, {live:.0f} live)"
        )
    return rows


def _shard_rows(metrics: dict) -> list[str]:
    """Fold ``shard.*`` metrics into report fragments (empty when the
    trace did not come from a sharded serving run)."""
    requests = _metric_total(metrics, "shard.requests", by_label="shard")
    restarts = _metric_total(metrics, "shard.restarts", by_label="shard")
    misses = _metric_total(metrics, "shard.heartbeat_misses")
    if not requests and not restarts and not misses:
        return []
    rows = []
    if requests:
        total = sum(requests.values())
        rows.append(f"{total} request(s) over {len(requests)} shard(s)")
    if restarts:
        rows.append("restarts " + " + ".join(
            f"{count}×shard-{shard}"
            for shard, count in sorted(restarts.items())
        ))
    if misses:
        rows.append(f"{misses} heartbeat miss(es)")
    return rows


def _gauge_by_label(metrics: dict, prefix: str,
                    by_label: str) -> dict:
    """Latest gauge value per label value for one gauge family."""
    grouped: dict[str, float] = {}
    for key, record in metrics.items():
        if not key.startswith(prefix + "{"):
            continue
        labels = key[len(prefix) + 1:].rstrip("}")
        for pair in labels.split(","):
            label, __, label_value = pair.partition("=")
            if label == by_label:
                grouped[label_value] = float(record.get("value", 0.0))
    return grouped


def _fairness_rows(metrics: dict) -> list[str]:
    """Fold ``allocation.*`` metrics into report fragments (empty when
    the trace did not come from a holistic-allocator run)."""
    reallocations = _metric_total(metrics, "allocation.reallocations")
    granted = _gauge_by_label(
        metrics, "allocation.granted_rate", "tenant"
    )
    if not reallocations and not granted:
        return []
    rows = [f"{reallocations} reallocation(s)"]
    fair = _gauge_by_label(metrics, "allocation.fair_share", "tenant")
    demand = _gauge_by_label(metrics, "allocation.demand", "tenant")
    used = _metric_total(metrics, "allocation.used", by_label="tenant")
    for tenant in sorted(granted):
        fragment = (
            f"{tenant} granted {granted[tenant]:.1f} rps "
            f"(fair {fair.get(tenant, 0.0):.1f}, "
            f"demand {demand.get(tenant, 0.0):.1f}"
        )
        if tenant in used:
            fragment += f", used {used[tenant]}"
        rows.append(fragment + ")")
    retry_exhausted = _metric_total(
        metrics, "allocation.retry_budget_exhausted"
    )
    if retry_exhausted:
        rows.append(f"{retry_exhausted} retry-budget exhaustion(s)")
    expired = _metric_total(
        metrics, "allocation.deadline_expired", by_label="stage"
    )
    if expired:
        rows.append("deadline expired " + " + ".join(
            f"{count}@{stage}" for stage, count in sorted(expired.items())
        ))
    return rows


def _network_rows(metrics: dict) -> list[str]:
    """Fold ``net.*`` metrics into report fragments (empty when the
    trace did not cross an emulated network)."""
    links = []
    for key, record in metrics.items():
        if not key.startswith("net.rtt{"):
            continue
        label = key[len("net.rtt{"):-1]
        link = dict(
            pair.partition("=")[::2] for pair in label.split(",")
        ).get("link", label)
        if record.get("count"):
            links.append((record["count"], link, record))
    if not links and not _metric_total(metrics, "net.events"):
        return []
    rows = []
    total_messages = sum(count for count, __, ___ in links)
    if links:
        rows.append(
            f"{total_messages} message(s) over {len(links)} link(s)"
        )
        for count, link, record in sorted(links, reverse=True)[:3]:
            rows.append(
                f"{link} rtt p50 {record.get('p50', 0) * 1000:.1f}ms "
                f"p95 {record.get('p95', 0) * 1000:.1f}ms "
                f"({count} msg(s))"
            )
    lost = _metric_total(metrics, "net.lost")
    if lost:
        rows.append(f"{lost} lost")
    rejects = _metric_total(metrics, "net.partition_rejects")
    if rejects:
        rows.append(f"{rejects} partition reject(s)")
    events = _metric_total(metrics, "net.events", by_label="kind")
    if events:
        rows.append("weather " + " + ".join(
            f"{count} {kind}" for kind, count in sorted(events.items())
        ))
    stale = _metric_total(metrics, "net.stale_reads")
    if stale:
        rows.append(f"{stale} stale read(s)")
    replications = _metric_total(metrics, "net.replications")
    if replications:
        rows.append(f"{replications} replication(s)")
    return rows


def _slo_rows(slo: dict) -> list[str]:
    """Fold a schema-2 ``slo`` record into report lines."""
    rows = []
    for status in slo.get("slos", []):
        spec = status.get("slo", {})
        firing = [
            alert["severity"] for alert in status.get("alerts", [])
            if alert.get("firing")
        ]
        suffix = " EXHAUSTED" if status.get("exhausted") else ""
        if firing:
            suffix += " firing:" + ",".join(firing)
        rows.append(
            f"  {spec.get('name', '?')}: "
            f"{100.0 * min(1.0, status.get('budget_spent', 0.0)):.1f}% "
            f"of budget spent, good {status.get('good', 0)}/"
            f"{status.get('total', 0)}{suffix}"
        )
    transitions = slo.get("transitions", [])
    for transition in transitions[:8]:
        verb = "fired" if transition.get("firing") else "cleared"
        rows.append(
            f"    {transition.get('slo', '?')}/"
            f"{transition.get('severity', '?')} {verb} "
            f"at t={transition.get('at', 0.0):.2f}s"
        )
    if len(transitions) > 8:
        rows.append(f"    ... {len(transitions) - 8} more transition(s)")
    return rows


def _exemplar_rows(series: list[dict]) -> list[str]:
    """The slowest windowed-histogram exemplars: latency -> trace id."""
    worst: list[tuple[float, str, str]] = []
    for record in series:
        if not record.get("series", "").startswith("serve.requests"):
            continue
        for window in record.get("windows", []):
            if window.get("exemplar") and "max" in window:
                worst.append((
                    window["max"], window["exemplar"], record["series"]
                ))
    worst.sort(key=lambda row: (-row[0], row[1]))
    return [
        f"  {value * 1000.0:.1f}ms trace {trace}  {key}"
        for value, trace, key in worst[:3]
    ]


def render_trace(data: TraceData, trace_id: str) -> str:
    """One sampled request's tree (``repro report --trace-id``)."""
    spans = data.find_trace(trace_id)
    if not spans:
        return (
            f"trace {trace_id}: not in this file — either mistyped or "
            "dropped by the tail sampler (errors and sheds are always "
            "kept)"
        )
    subset = TraceData(meta=data.meta, spans=spans)
    root = spans[0].get("attributes", {})
    lines = [
        f"trace {trace_id} — tenant {root.get('tenant', '?')}, "
        f"api {root.get('api', '?')}, outcome {root.get('outcome', '?')}"
    ]
    if "rtt_total_s" in root:
        lines[0] += f", rtt {root['rtt_total_s'] * 1000.0:.1f}ms"
    lines.append(render_span_tree(subset, max_children=24))
    return "\n".join(lines)


def render_trace_report(data: TraceData, tree: bool = True) -> str:
    """Render a reloaded JSONL trace as a phase/cost/fault breakdown."""
    report = data.report or {}
    service = report.get("service") or data.meta.get("service") or "?"
    chaos = report.get("chaos_profile", "off")
    lines = [
        f"Telemetry report — service {service} (chaos {chaos}, "
        f"schema {data.meta.get('schema', '?')})",
        "",
    ]

    # -- phases ------------------------------------------------------------
    rows = _phase_rows(data)
    if rows:
        lines.append(f"{'phase':28} {'virtual-s':>10} {'spans':>7}")
        for name, depth, counts, duration in rows:
            label = "  " * depth + name
            lines.append(
                f"{label:28} {duration:>10.3f} "
                f"{sum(counts.values()):>7}"
            )
        lines.append("")

    # -- cost --------------------------------------------------------------
    llm = report.get("llm")
    if llm is None:
        # No report trailer: fall back to the llm.* counters.
        def metric(name: str) -> int:
            return int(data.metrics.get(name, {}).get("value", 0))

        llm = {
            "requests": sum(
                int(value.get("value", 0))
                for key, value in data.metrics.items()
                if key.startswith("llm.requests")
            ),
            "prompt_tokens": metric("llm.prompt_tokens"),
            "completion_tokens": metric("llm.completion_tokens"),
            "failed_requests": metric("llm.parse_failures"),
        }
    lines.append(
        f"llm: {llm.get('requests', 0)} request(s), "
        f"{llm.get('prompt_tokens', 0)} prompt + "
        f"{llm.get('completion_tokens', 0)} completion tokens, "
        f"{llm.get('failed_requests', 0)} failed"
    )

    # -- API calls ---------------------------------------------------------
    api_calls = [s for s in data.spans if s.get("kind") == "api_call"]
    error_codes: dict[str, int] = {}
    for span in api_calls:
        code = span.get("attributes", {}).get("error_code")
        if code:
            error_codes[code] = error_codes.get(code, 0) + 1
    top = sorted(error_codes.items(), key=lambda kv: (-kv[1], kv[0]))[:5]
    suffix = ""
    if top:
        suffix = " (top: " + ", ".join(
            f"{code}×{count}" for code, count in top
        ) + ")"
    lines.append(
        f"api calls: {len(api_calls)} span(s), "
        f"{sum(error_codes.values())} error(s){suffix}"
    )

    # -- faults ------------------------------------------------------------
    fault_counts = {name: 0 for name in FAULT_EVENTS}
    for event in data.iter_span_events():
        name = event.get("name")
        if name in fault_counts:
            fault_counts[name] += 1
    lines.append(
        "faults: " + ", ".join(
            f"{count} {name.replace('_', ' ')}(s)"
            for name, count in fault_counts.items()
        )
    )
    resilience = report.get("resilience")
    if resilience:
        lines.append(
            f"resilience stats: {resilience.get('retries', 0)} retried, "
            f"{resilience.get('gave_ups', 0)} gave up, "
            f"{resilience.get('breaker_trips', 0)} breaker trip(s), "
            f"{resilience.get('quarantined', 0)} quarantined"
        )
    serving = _serving_rows(data.metrics)
    if serving:
        lines.append("serving: " + ", ".join(serving))
    shards = _shard_rows(data.metrics)
    if shards:
        lines.append("shards: " + ", ".join(shards))
    fairness = _fairness_rows(data.metrics)
    if fairness:
        lines.append("fairness: " + ", ".join(fairness))
    network = _network_rows(data.metrics)
    if network:
        lines.append("network: " + ", ".join(network))
    if data.slo:
        lines.append("slo:")
        lines.extend(_slo_rows(data.slo))
    if data.sampling:
        sampling = data.sampling
        reasons = sampling.get("kept_by_reason", {})
        suffix = ""
        if reasons:
            suffix = " (" + ", ".join(
                f"{count} {reason}"
                for reason, count in sorted(reasons.items())
            ) + ")"
        lines.append(
            f"sampling: kept {sampling.get('kept', 0)}/"
            f"{sampling.get('seen', 0)} trace(s) at keep rate "
            f"{sampling.get('keep_rate', 0)}{suffix}"
        )
    if data.drift:
        drift = data.drift
        lines.append(
            f"drift: {drift.get('checks', 0)} evaluator check(s), "
            f"{drift.get('divergences', 0)} divergence(s)"
        )
    exemplars = _exemplar_rows(data.series)
    if exemplars:
        lines.append(
            "slowest exemplars (repro report --trace-id <id>):"
        )
        lines.extend(exemplars)
    durability = report.get("durability")
    if durability:
        lines.append(
            "durability: "
            f"{durability.get('journal_appends', 0)} journal append(s), "
            f"{durability.get('journal_replays', 0)} replayed, "
            f"{durability.get('resumes', 0)} resume(s), "
            f"{durability.get('replayed_mutations', 0)} mutation(s) "
            "replayed, "
            f"{durability.get('crashes_injected', 0)} crash(es) injected, "
            f"{durability.get('torn_records_dropped', 0)} torn record(s) "
            "dropped"
        )
    lines.append("")

    # -- span tree ---------------------------------------------------------
    roots = data.span_children().get(None, [])
    if tree and data.spans and len(roots) <= 12:
        lines.append("span tree:")
        lines.append(render_span_tree(data, max_children=6))
    elif tree and data.spans:
        lines.append(
            f"span tree: {len(roots)} root span(s) — omitted "
            "(per-request serve trace)"
        )
    return "\n".join(lines)
