"""The metrics registry: counters, gauges, histograms.

Metric names are dotted, lowercase, and unit-suffixed where the unit
is not obvious (``llm.prompt_tokens``, ``emulator.calls``,
``invoke_latency_s``); dimensions ride in labels, so one registry can
hold e.g. ``emulator.errors{code=DependencyViolation}`` next to
``emulator.errors{code=InvalidVpcID.NotFound}`` without inventing new
names.  Everything is plain in-process accounting — instruments are
created on first use and snapshot to JSON-ready dicts.
"""

from __future__ import annotations

import math
import threading
import time
from contextlib import contextmanager


def quantile(ordered: "list[float]", q: float) -> float | None:
    """Quantile by linear interpolation between closest ranks.

    The single shared implementation behind :class:`Histogram` and the
    windowed store (:mod:`repro.obs.windows`): ``ordered`` must be
    sorted ascending.  Returns ``None`` for an empty window — callers
    must not render an absent distribution as ``0.0``, which reads
    like a real (excellent) latency — and the lone sample for a
    single-sample window.  Interpolation fixes the nearest-rank edge
    artifacts small windows used to show (p50 of ``[10, 1000]`` was
    ``10``, and p95 collapsed onto p50 for any window under 10
    samples).
    """
    count = len(ordered)
    if count == 0:
        return None
    if count == 1:
        return ordered[0]
    q = min(1.0, max(0.0, q))
    position = q * (count - 1)
    low = math.floor(position)
    high = min(count - 1, low + 1)
    fraction = position - low
    return ordered[low] + (ordered[high] - ordered[low]) * fraction


def _render_key(name: str, labels: dict) -> str:
    if not labels:
        return name
    inner = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{name}{{{inner}}}"


class Counter:
    """A monotonically increasing count (increments are thread-safe)."""

    __slots__ = ("name", "labels", "value", "_lock")
    kind = "counter"

    def __init__(self, name: str, labels: dict):
        self.name = name
        self.labels = labels
        self.value = 0
        self._lock = threading.Lock()

    def inc(self, amount: int = 1) -> None:
        with self._lock:
            self.value += amount

    def summary(self) -> dict:
        return {"value": self.value}


class Gauge:
    """A value that can go up and down (last write wins)."""

    __slots__ = ("name", "labels", "value")
    kind = "gauge"

    def __init__(self, name: str, labels: dict):
        self.name = name
        self.labels = labels
        self.value: float = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def summary(self) -> dict:
        return {"value": self.value}


class Histogram:
    """A distribution of observations, summarized as p50/p95/p99/max.

    Observations are kept raw (pipeline runs observe thousands of
    values, not millions) and percentiles interpolate linearly between
    closest ranks (:func:`quantile`), so the summary is exact,
    deterministic, and free of the nearest-rank collapse small windows
    used to show.
    """

    __slots__ = ("name", "labels", "values")
    kind = "histogram"

    def __init__(self, name: str, labels: dict):
        self.name = name
        self.labels = labels
        self.values: list[float] = []

    def observe(self, value: float) -> None:
        self.values.append(value)

    @contextmanager
    def timer(self, clock=time.perf_counter):
        """Observe the duration of the ``with`` body, in seconds.

        Uses host wall time by default — this is the benchmark-facing
        instrument; pipeline spans use the virtual clock instead.
        """
        start = clock()
        try:
            yield self
        finally:
            self.observe(clock() - start)

    def percentile(self, q: float) -> float:
        """Interpolated percentile of everything observed so far.

        Returns ``0.0`` when nothing has been observed (the summary
        keeps ``count`` alongside, so an empty window is detectable).
        """
        value = quantile(sorted(self.values), q)
        return 0.0 if value is None else value

    def summary(self) -> dict:
        if not self.values:
            return {"count": 0, "sum": 0.0, "min": 0.0, "max": 0.0,
                    "mean": 0.0, "p50": 0.0, "p95": 0.0, "p99": 0.0}
        total = sum(self.values)
        ordered = sorted(self.values)
        return {
            "count": len(ordered),
            "sum": total,
            "min": ordered[0],
            "max": ordered[-1],
            "mean": total / len(ordered),
            "p50": quantile(ordered, 0.50),
            "p95": quantile(ordered, 0.95),
            "p99": quantile(ordered, 0.99),
        }


class MetricsRegistry:
    """All of one run's instruments, keyed by name + labels."""

    def __init__(self):
        self._instruments: dict[str, object] = {}
        self._lock = threading.Lock()

    def _get(self, factory, name: str, labels: dict):
        key = _render_key(name, labels)
        with self._lock:
            instrument = self._instruments.get(key)
            if instrument is None:
                instrument = factory(name, labels)
                self._instruments[key] = instrument
            elif not isinstance(instrument, factory):
                raise TypeError(
                    f"metric {key!r} already registered as "
                    f"{type(instrument).__name__}"
                )
        return instrument

    def counter(self, name: str, **labels: object) -> Counter:
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels: object) -> Gauge:
        return self._get(Gauge, name, labels)

    def histogram(self, name: str, **labels: object) -> Histogram:
        return self._get(Histogram, name, labels)

    def __len__(self) -> int:
        return len(self._instruments)

    def snapshot(self) -> dict:
        """Every instrument's current state, JSON-ready, sorted."""
        out: dict[str, dict] = {}
        for key in sorted(self._instruments):
            instrument = self._instruments[key]
            record = {"type": instrument.kind}
            record.update(instrument.summary())
            out[key] = record
        return out
