"""Observability for the learn/align/serve pipeline.

One :class:`Telemetry` object per run carries three instruments:

- **spans** — a hierarchical trace of where the run spent its
  (virtual) time: build -> extraction pass -> resource -> LLM call,
  alignment round -> differential trace -> emulated API call;
- **metrics** — a registry of counters, gauges and histograms
  (p50/p95/max) with dotted names and label dimensions;
- **events** — point-in-time facts (retries, breaker trips,
  quarantines) attached to whichever span was open.

Instrumented code accepts ``telemetry=None``; the
:data:`NULL_TELEMETRY` sink makes the disabled path allocation-light
and output-free, so the default build is byte-identical to an
un-instrumented one.  Traces export to JSONL (``repro build
--telemetry run.jsonl``) and render back as a phase/cost/fault
breakdown (``repro report run.jsonl``).
"""

from .core import ensure_telemetry, NULL_TELEMETRY, NullTelemetry, Telemetry
from .export import (
    load_trace,
    render_span_tree,
    trace_records,
    TraceData,
    TraceError,
    write_trace,
)
from .metrics import Counter, Gauge, Histogram, MetricsRegistry, quantile
from .report import render_trace, render_trace_report, RunReport
from .spans import Span, SpanEvent, Tracer

__all__ = [
    "Counter",
    "ensure_telemetry",
    "Gauge",
    "Histogram",
    "load_trace",
    "MetricsRegistry",
    "NULL_TELEMETRY",
    "NullTelemetry",
    "quantile",
    "render_span_tree",
    "render_trace",
    "render_trace_report",
    "RunReport",
    "Span",
    "SpanEvent",
    "Telemetry",
    "trace_records",
    "TraceData",
    "TraceError",
    "Tracer",
    "write_trace",
]
