"""Exporters: JSONL for machines, an indented tree for humans.

The JSONL schema is one JSON object per line, discriminated by
``type``:

- ``meta``    — first line: schema version, service, record counts;
- ``span``    — one span, pre-order (parents before children), with
  ``id``/``parent`` linking, virtual-clock ``start``/``end``/
  ``duration``, ``status``, ``attributes`` and inline ``events``;
- ``event``   — an event recorded outside any span;
- ``metric``  — one instrument's final state (``metric`` carries the
  ``name{label=value}`` key, ``data`` the type-specific summary);
- ``report``  — last line: the folded :class:`RunReport` dict.

Schema **2** adds the serving observability plane's records, emitted
only when a :class:`~repro.obs.ObsPlane` is attached:

- ``series``   — one windowed time series (resolution, per-window
  count/sum/max and exemplar trace ids);
- ``slo``      — the SLO report: per-spec budget status plus the
  burn-rate alert transition history;
- ``sampling`` — the tail sampler's decision totals (keep rate, kept
  by reason), so a reader knows exactly how the span set was bounded;
- ``drift``    — compiled-vs-evaluator agreement counts, when the
  drift monitor ran.

Schema-2 request spans carry trace context in ``attributes``
(``trace_id``, ``tenant``, ``outcome``, ``sampled``/``sample_reason``,
region fields) and their ``net.hop``/``replica.failover`` children
carry per-hop RTT; aggregates always come from ``metric``/``series``
records, so they are identical at any sampling keep rate.

A saved trace reloads with :func:`load_trace` and renders with
:func:`~repro.telemetry.report.render_trace_report` (exposed as
``repro report <trace.jsonl>``).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from ..durability.atomic import atomic_write

SCHEMA_VERSION = 2


def trace_records(telemetry, report=None) -> list[dict]:
    """Everything one sink holds, as JSONL-ready dicts."""
    spans = [span.to_dict() for span in telemetry.tracer.walk()]
    metrics = telemetry.metrics.snapshot()
    obs = getattr(telemetry, "obs", None)
    records: list[dict] = [{
        "type": "meta",
        "schema": SCHEMA_VERSION,
        "service": telemetry.service,
        "clock": "virtual",
        "spans": len(spans),
        "metrics": len(metrics),
        "obs": obs is not None,
    }]
    records.extend({"type": "span", **span} for span in spans)
    records.extend(
        {"type": "event", **event.to_dict()}
        for event in telemetry.orphan_events
    )
    records.extend(
        {"type": "metric", "metric": key, "data": data}
        for key, data in metrics.items()
    )
    if obs is not None:
        records.extend(
            {"type": "series", **series} for series in obs.store.export()
        )
        if obs.slo.specs:
            records.append({"type": "slo", "slo": obs.slo_report()})
        records.append({"type": "sampling", "sampling": obs.sampler.as_dict()})
        if obs.drift is not None:
            records.append({"type": "drift", "drift": obs.drift.as_dict()})
    if report is not None:
        records.append({"type": "report", "report": report.to_dict()})
    return records


def write_trace(telemetry, path, report=None) -> Path:
    """Serialize one run's telemetry to a JSONL file.

    Written atomically (tmp file + rename): a crash mid-export leaves
    the previous trace, never a truncated JSONL that breaks replay
    tooling.
    """
    target = Path(path)
    lines = [
        json.dumps(record, sort_keys=True) + "\n"
        for record in trace_records(telemetry, report=report)
    ]
    return atomic_write(target, "".join(lines))


@dataclass
class TraceData:
    """A reloaded JSONL trace, grouped by record type."""

    meta: dict = field(default_factory=dict)
    spans: list[dict] = field(default_factory=list)
    events: list[dict] = field(default_factory=list)
    metrics: dict = field(default_factory=dict)
    report: dict | None = None
    #: Schema-2 observability records (absent from v1 traces).
    series: list[dict] = field(default_factory=list)
    slo: dict | None = None
    sampling: dict | None = None
    drift: dict | None = None

    def span_children(self) -> dict:
        """Parent span id -> child span dicts (``None`` key = roots)."""
        children: dict = {}
        for span in self.spans:
            children.setdefault(span.get("parent"), []).append(span)
        return children

    def iter_span_events(self):
        for span in self.spans:
            yield from span.get("events", ())
        yield from self.events

    def find_trace(self, trace_id: str) -> list[dict]:
        """One sampled request's full span tree, pre-order.

        ``trace_id`` is the propagated context id stamped on schema-2
        request spans (and surfaced as windowed-histogram exemplars),
        so ``repro report --trace-id`` can jump straight from a "p99
        regressed" cell to the offending tree.
        """
        by_id = {span.get("id"): span for span in self.spans}

        def tagged(span: dict) -> bool:
            return span.get("attributes", {}).get("trace_id") == trace_id

        roots = [
            span for span in self.spans
            if tagged(span) and not tagged(by_id.get(span.get("parent"), {}))
        ]
        children = self.span_children()
        out: list[dict] = []

        def walk(span: dict) -> None:
            out.append(span)
            for kid in children.get(span.get("id"), []):
                walk(kid)

        for root in roots:
            walk(root)
        return out


class TraceError(ValueError):
    """The file is not a telemetry JSONL trace."""


def load_trace(path) -> TraceData:
    """Read a JSONL trace back into grouped records."""
    data = TraceData()
    with Path(path).open("r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as error:
                raise TraceError(
                    f"{path}:{line_number}: not JSON: {error.msg}"
                ) from None
            kind = record.get("type") if isinstance(record, dict) else None
            if kind == "meta":
                data.meta = record
            elif kind == "span":
                data.spans.append(record)
            elif kind == "event":
                data.events.append(record)
            elif kind == "metric":
                data.metrics[record.get("metric", "")] = record.get(
                    "data", {}
                )
            elif kind == "report":
                data.report = record.get("report")
            elif kind == "series":
                data.series.append(record)
            elif kind == "slo":
                data.slo = record.get("slo")
            elif kind == "sampling":
                data.sampling = record.get("sampling")
            elif kind == "drift":
                data.drift = record.get("drift")
            else:
                raise TraceError(
                    f"{path}:{line_number}: unknown record type {kind!r}"
                )
    if not data.meta and not data.spans:
        raise TraceError(f"{path}: no telemetry records found")
    return data


def render_span_tree(data: TraceData, max_children: int = 12) -> str:
    """An indented human-readable view of a trace's span tree.

    Sibling runs larger than ``max_children`` are elided with a count
    line, so a thousand-API-call alignment round stays readable.
    """
    children = data.span_children()
    lines: list[str] = []

    def emit(span: dict, depth: int) -> None:
        label = span.get("name", "?")
        attributes = span.get("attributes", {})
        for key in ("resource", "api", "trace", "action", "index"):
            if key in attributes:
                label += f":{attributes[key]}"
                break
        kind = span.get("kind", "")
        status = span.get("status", "ok")
        suffix = f" [{kind}]" if kind else ""
        if status != "ok":
            suffix += f" !{status}"
        lines.append(
            f"{'  ' * depth}{label}{suffix} "
            f"({span.get('duration', 0.0):.3f}s)"
        )
        kids = children.get(span.get("id"), [])
        shown = kids[:max_children]
        for kid in shown:
            emit(kid, depth + 1)
        hidden = len(kids) - len(shown)
        if hidden > 0:
            lines.append(f"{'  ' * (depth + 1)}... {hidden} more span(s)")

    for root in children.get(None, []):
        emit(root, 0)
    return "\n".join(lines)
