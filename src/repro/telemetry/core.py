"""The telemetry facade and its no-op twin.

A :class:`Telemetry` instance is one run's sink: a tracer (span tree
on the virtual clock), a metrics registry, and a structured event
log.  Instrumented code takes ``telemetry=None`` and goes through
:func:`ensure_telemetry`, so the disabled path costs a single ``is
None`` check (or a call into the shared :data:`NULL_TELEMETRY`
singleton, which allocates nothing per call) and produces no output
at all — a build without a sink is byte-identical to one before
telemetry existed.
"""

from __future__ import annotations

from ..resilience.policy import VirtualClock
from .metrics import MetricsRegistry
from .spans import SpanEvent, Tracer


class Telemetry:
    """One run's telemetry sink: spans + metrics + events."""

    enabled = True

    def __init__(
        self,
        service: str = "",
        clock: VirtualClock | None = None,
    ):
        self.service = service
        #: Shared with the run's resilience wrappers, so backoff waits
        #: and breaker cooldowns advance span time.
        self.clock = clock or VirtualClock()
        self.tracer = Tracer(self.clock)
        self.metrics = MetricsRegistry()
        #: Events recorded while no span was open.
        self.orphan_events: list[SpanEvent] = []
        #: The serving-time observability plane, when attached (see
        #: :class:`repro.obs.ObsPlane`).  ``None`` for batch runs —
        #: instrumented code probes with ``getattr``/``is None`` so
        #: build pipelines pay nothing for the serving plane.
        self.obs = None

    # -- spans -------------------------------------------------------------

    def span(self, name: str, kind: str = "", **attributes: object):
        """Open a span for the ``with`` body (see :class:`Tracer`)."""
        return self.tracer.span(name, kind=kind, **attributes)

    def anchored(self):
        """Attach spans opened by worker threads under the current span.

        Wrap a thread-pool fan-out with this so each worker's root span
        becomes a child of the orchestrating span (see
        :meth:`Tracer.anchored <repro.telemetry.spans.Tracer.anchored>`).
        """
        return self.tracer.anchored()

    def event(self, name: str, **attributes: object) -> None:
        """Record a point-in-time fact on the innermost open span."""
        current = self.tracer.current
        if current is not None:
            current.event(name, self.clock.now(), **attributes)
        else:
            self.orphan_events.append(
                SpanEvent(name=name, time=self.clock.now(),
                          attributes=dict(attributes))
            )

    def iter_events(self):
        """Every event in the run, span-attached and orphan alike."""
        for span in self.tracer.walk():
            yield from span.events
        yield from self.orphan_events

    # -- metrics -----------------------------------------------------------

    def counter(self, name: str, **labels: object):
        return self.metrics.counter(name, **labels)

    def gauge(self, name: str, **labels: object):
        return self.metrics.gauge(name, **labels)

    def histogram(self, name: str, **labels: object):
        return self.metrics.histogram(name, **labels)


class _NullSpan:
    """Accepts the :class:`~repro.telemetry.spans.Span` write surface."""

    __slots__ = ()

    def set(self, key: str, value: object) -> None:
        pass

    def event(self, name: str, time: float = 0.0, **attributes: object):
        pass


class _NullSpanContext:
    __slots__ = ()

    def __enter__(self):
        return _NULL_SPAN

    def __exit__(self, *exc_info):
        return False


class _NullInstrument:
    """Accepts every instrument's write surface and drops it."""

    __slots__ = ()

    def inc(self, amount: int = 1) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass


class NullTelemetry:
    """The disabled sink: same surface, zero state, zero output.

    Every method returns a module-level shared object, so the hot
    path never allocates; ``clock`` is ``None`` on purpose, so
    callers that would share the telemetry clock with the resilience
    layer fall back to the exact wiring they used before telemetry
    existed.
    """

    enabled = False
    clock = None
    obs = None

    def span(self, name: str, kind: str = "", **attributes: object):
        return _NULL_SPAN_CONTEXT

    def anchored(self):
        return _NULL_SPAN_CONTEXT

    def event(self, name: str, **attributes: object) -> None:
        pass

    def iter_events(self):
        return iter(())

    def counter(self, name: str, **labels: object):
        return _NULL_INSTRUMENT

    def gauge(self, name: str, **labels: object):
        return _NULL_INSTRUMENT

    def histogram(self, name: str, **labels: object):
        return _NULL_INSTRUMENT


_NULL_SPAN = _NullSpan()
_NULL_SPAN_CONTEXT = _NullSpanContext()
_NULL_INSTRUMENT = _NullInstrument()

#: The shared disabled sink every un-instrumented run goes through.
NULL_TELEMETRY = NullTelemetry()


def ensure_telemetry(telemetry) -> "Telemetry | NullTelemetry":
    """Normalize an optional telemetry argument to a usable sink."""
    return telemetry if telemetry is not None else NULL_TELEMETRY
