"""``repro top``: the ASCII serving dashboard.

Renders the observability plane's windowed store as the terminal view
an operator would watch: per-tenant RPS / shed rate / p50 / p99, SLO
budget bars with firing burn alerts, breaker states, and the region
weather (open partitions).  Everything reads from virtual time, so a
"live" frame and a post-run replay of the same instant are identical
— ``--record`` simply replays the run's timeline at a fixed frame
interval and emits every frame, which is what the acceptance tests
diff against.
"""

from __future__ import annotations

from .plane import ObsPlane

#: The sparkline-ish budget bar alphabet, emptiest first.
_BAR = " ▏▎▍▌▋▊▉█"


def _bar(fraction: float, width: int = 12) -> str:
    """A unicode budget bar: ``fraction`` full, ``width`` cells."""
    fraction = min(1.0, max(0.0, fraction))
    cells = fraction * width
    full = int(cells)
    partial = int((cells - full) * (len(_BAR) - 1))
    bar = "█" * full
    if full < width and partial:
        bar += _BAR[partial]
    return bar.ljust(width)


def _fmt_latency(value: float | None) -> str:
    if value is None:
        return "     -"
    return f"{value * 1000.0:>5.1f}ms" if value < 9.95 else f"{value:>6.2f}s"


def _tenant_rows(plane: ObsPlane, now: float, lookback: float) -> list[str]:
    store = plane.store
    rows = [
        f"{'tenant':<12} {'rps':>7} {'shed%':>6} {'err%':>6} "
        f"{'p50':>7} {'p99':>7}  worst-trace"
    ]
    for tenant in store.label_values("serve.requests", "tenant"):
        total = store.total("serve.requests", lookback, now, tenant=tenant)
        if total == 0:
            continue
        shed = store.total(
            "serve.requests", lookback, now, tenant=tenant, outcome="shed"
        )
        errors = store.total(
            "serve.requests", lookback, now, tenant=tenant, outcome="error"
        )
        p50 = store.quantile(
            "serve.requests", 0.50, lookback, now, tenant=tenant
        )
        p99 = store.quantile(
            "serve.requests", 0.99, lookback, now, tenant=tenant
        )
        exemplar = store.exemplar(
            "serve.requests", lookback, now, tenant=tenant
        )
        rows.append(
            f"{tenant:<12} {total / lookback:>7.1f} "
            f"{100.0 * shed / total:>5.1f}% {100.0 * errors / total:>5.1f}% "
            f"{_fmt_latency(p50):>7} {_fmt_latency(p99):>7}  {exemplar}"
        )
    if len(rows) == 1:
        rows.append("(no traffic in window)")
    return rows


def _slo_rows(plane: ObsPlane, now: float) -> list[str]:
    if not plane.slo.specs:
        return []
    rows = ["", "SLO budgets (period burn):"]
    for status in plane.slo.evaluate(now):
        spec = status.spec
        firing = ",".join(a.severity for a in status.firing) or "-"
        state = "EXHAUSTED" if status.exhausted else f"alerts:{firing}"
        rows.append(
            f"  {spec.name:<20} [{_bar(status.budget_spent)}] "
            f"{100.0 * min(1.0, status.budget_spent):>5.1f}% "
            f"good {status.good}/{status.total}  {state}"
        )
    return rows


def _breaker_rows(plane: ObsPlane, now: float) -> list[str]:
    series = plane.store.select("resilience.breaker_state")
    if not series:
        return []
    rows = ["", "breakers:"]
    for stream in sorted(series, key=lambda s: s.key):
        # The latest transition at or before ``now`` is the state.
        windows = stream.windows(0.0, now)
        if not windows:
            continue
        last = windows[-1]
        state = {0.0: "closed", 1.0: "half_open", 2.0: "open"}.get(
            (last.values or [0.0])[-1], "?"
        )
        target = stream.labels.get("target", "?")
        rows.append(f"  {target:<28} {state}")
    return rows


def _shard_rows(plane: ObsPlane, now: float) -> list[str]:
    """Shard fleet health: restarts (with recovery time) and heartbeat
    misses, from the windowed series the supervisor records."""
    restarts = plane.store.select("shard.restart_seconds")
    misses = plane.store.select("shard.heartbeat_miss")
    if not restarts and not misses:
        return []
    rows = ["", "shards:"]
    missed_by_shard = {
        stream.labels.get("shard", "?"): sum(
            len(window.values or ())
            for window in stream.windows(0.0, now)
        )
        for stream in misses
    }
    seen = set()
    for stream in sorted(restarts, key=lambda s: s.key):
        shard = stream.labels.get("shard", "?")
        seen.add(shard)
        values = [
            value
            for window in stream.windows(0.0, now)
            for value in (window.values or ())
        ]
        last = f"{values[-1]:.2f}s" if values else "?"
        missed = missed_by_shard.get(shard, 0)
        rows.append(
            f"  shard-{shard:<22} {len(values)} restart(s), "
            f"last recovery {last}, {missed} heartbeat miss(es)"
        )
    for shard in sorted(set(missed_by_shard) - seen):
        rows.append(
            f"  shard-{shard:<22} 0 restart(s), "
            f"{missed_by_shard[shard]} heartbeat miss(es)"
        )
    return rows


def _fairness_rows(plane: ObsPlane, now: float) -> list[str]:
    """The allocator's live grant table: latest granted rate and
    observed demand per tenant, from the reallocation-time series."""
    granted = plane.store.select("allocation.granted_rate")
    if not granted:
        return []
    demand_latest = {}
    for stream in plane.store.select("allocation.demand"):
        windows = stream.windows(0.0, now)
        values = [
            value
            for window in windows
            for value in (window.values or ())
        ]
        if values:
            demand_latest[stream.labels.get("tenant", "?")] = values[-1]
    rows = ["", "fairness:"]
    for stream in sorted(granted, key=lambda s: s.key):
        tenant = stream.labels.get("tenant", "?")
        values = [
            value
            for window in stream.windows(0.0, now)
            for value in (window.values or ())
        ]
        if not values:
            continue
        demand = demand_latest.get(tenant)
        suffix = f", demand {demand:.1f}" if demand is not None else ""
        rows.append(
            f"  {tenant:<28} granted {values[-1]:.1f} rps{suffix} "
            f"({len(values)} regrant(s))"
        )
    return rows if len(rows) > 2 else []


def _weather_rows(netem, now: float) -> list[str]:
    if netem is None:
        return []
    open_links = []
    for link, windows in netem.topology.partition_report().items():
        for start, end in windows:
            if start <= now and (end is None or now < end):
                until = "?" if end is None else f"{end:.2f}s"
                open_links.append(f"  {link:<28} PARTITIONED until {until}")
    rows = ["", "region weather:"]
    rows.extend(open_links or ["  all links healthy"])
    return rows


def render_frame(plane: ObsPlane, now: float | None = None,
                 lookback: float = 5.0, netem=None) -> str:
    """One dashboard frame at a virtual instant (default: now)."""
    now = plane.clock.now() if now is None else now
    good = plane.store.total("serve.requests", lookback, now)
    lines = [
        f"repro top · t={now:.2f}s virtual · window {lookback:g}s · "
        f"{good:.0f} req · {len(plane.store)} series",
        "",
    ]
    lines.extend(_tenant_rows(plane, now, lookback))
    lines.extend(_slo_rows(plane, now))
    lines.extend(_breaker_rows(plane, now))
    lines.extend(_shard_rows(plane, now))
    lines.extend(_fairness_rows(plane, now))
    lines.extend(_weather_rows(netem, now))
    sampling = plane.sampler
    if sampling.seen:
        lines.append("")
        lines.append(
            f"traces: kept {sampling.kept}/{sampling.seen} "
            f"({dict(sorted(sampling.kept_by_reason.items()))})"
        )
    return "\n".join(lines)


def record_frames(plane: ObsPlane, until: float | None = None,
                  interval: float = 2.0, lookback: float = 5.0,
                  netem=None) -> list[dict]:
    """Replay the run as dashboard frames (``repro top --record``).

    Because every input is virtual-time, replaying after the run
    produces exactly the frames a live tail would have shown.  Each
    record carries the frame's instant and its rendered text.
    """
    until = plane.clock.now() if until is None else until
    frames = []
    ticks = max(1, int(until / interval))
    for tick in range(1, ticks + 1):
        at = min(tick * interval, until)
        frames.append({
            "at": round(at, 9),
            "frame": render_frame(
                plane, now=at, lookback=lookback, netem=netem
            ),
        })
    return frames


__all__ = ["record_frames", "render_frame"]
