"""Windowed time series on the virtual clock: ring-buffer windows.

The batch registry (:mod:`repro.telemetry.metrics`) answers "what did
the whole run do"; serving needs "what is happening *now*, per tenant,
per region".  A :class:`WindowedSeries` buckets observations into
fixed-``resolution`` windows of virtual time kept in a ring of
``capacity`` slots, so memory stays bounded no matter how long a run
is, and rate / quantile queries over arbitrary lookbacks stay exact
for everything the ring still holds.

Series are keyed by name plus labels — the serving plane uses
``(tenant, api, region, code)`` — and histogram windows carry an
**exemplar**: the trace id of the slowest request that landed in the
window, so a "p99 regressed" cell links to one concrete offending
trace (see ``repro report``).

Quantiles share their math with the batch histograms
(:func:`repro.telemetry.metrics.quantile`): interpolated, exact, and
honest about empty windows (``None``, never a fabricated ``0.0``).
"""

from __future__ import annotations

import threading

from ..telemetry.metrics import _render_key, quantile


class _Window:
    """One resolution bucket of a series' ring."""

    __slots__ = ("index", "count", "total", "max", "values", "exemplar")

    def __init__(self):
        self.reset(-1)

    def reset(self, index: int) -> None:
        self.index = index
        self.count = 0
        self.total = 0.0
        self.max = 0.0
        self.values: list[float] | None = None
        self.exemplar = ""

    def as_dict(self, resolution: float) -> dict:
        record = {
            "start": round(self.index * resolution, 9),
            "count": self.count,
            "sum": round(self.total, 9),
        }
        if self.values is not None:
            record["max"] = round(self.max, 9)
            if self.exemplar:
                record["exemplar"] = self.exemplar
        return record


class WindowedSeries:
    """One (name, labels) stream bucketed into virtual-time windows."""

    __slots__ = ("name", "labels", "kind", "resolution", "capacity",
                 "_ring", "_lock", "_latest")

    def __init__(self, name: str, labels: dict, kind: str,
                 resolution: float, capacity: int):
        self.name = name
        self.labels = labels
        self.kind = kind  # "counter" | "histogram"
        self.resolution = float(resolution)
        self.capacity = int(capacity)
        self._ring = [_Window() for __ in range(self.capacity)]
        self._lock = threading.Lock()
        self._latest = -1  # highest window index ever written

    @property
    def key(self) -> str:
        return _render_key(self.name, self.labels)

    # -- write ---------------------------------------------------------------

    def record(self, now: float, value: float = 1.0,
               exemplar: str = "") -> None:
        index = int(now / self.resolution)
        with self._lock:
            window = self._ring[index % self.capacity]
            if window.index != index:
                window.reset(index)
            if index > self._latest:
                self._latest = index
            window.count += 1
            window.total += value
            if self.kind == "histogram":
                if window.values is None:
                    window.values = []
                window.values.append(value)
                if value >= window.max or window.count == 1:
                    window.max = value
                    if exemplar:
                        window.exemplar = exemplar

    # -- read ----------------------------------------------------------------

    def _live(self, since: float, until: float) -> list[_Window]:
        first = int(since / self.resolution)
        last = int(until / self.resolution)
        with self._lock:
            return [
                window for window in self._ring
                if window.index >= 0 and first <= window.index <= last
            ]

    def windows(self, since: float, until: float) -> list[_Window]:
        """The live windows in ``[since, until]``, oldest first."""
        return sorted(self._live(since, until), key=lambda w: w.index)

    def live_windows(self) -> list[_Window]:
        """Every window still in the ring, oldest first."""
        with self._lock:
            live = [w for w in self._ring if w.index >= 0]
        return sorted(live, key=lambda w: w.index)

    def total(self, lookback: float, now: float,
              value_sum: bool = False) -> float:
        """Events (or, with ``value_sum``, the value sum) in a lookback."""
        field = "total" if value_sum else "count"
        return sum(
            getattr(window, field)
            for window in self._live(now - lookback, now)
        )

    def rate(self, lookback: float, now: float) -> float:
        """Events per virtual second over the trailing lookback."""
        if lookback <= 0:
            return 0.0
        return self.total(lookback, now) / lookback

    def quantile(self, q: float, lookback: float,
                 now: float) -> float | None:
        """Interpolated quantile over every value in the lookback."""
        merged: list[float] = []
        for window in self._live(now - lookback, now):
            if window.values:
                merged.extend(window.values)
        merged.sort()
        return quantile(merged, q)

    def exemplar(self, lookback: float, now: float) -> str:
        """The trace id of the slowest observation in the lookback."""
        worst = None
        for window in self._live(now - lookback, now):
            if window.exemplar and (worst is None
                                    or window.max > worst.max):
                worst = window
        return worst.exemplar if worst is not None else ""

    def as_dict(self) -> dict:
        with self._lock:
            live = sorted(
                (w for w in self._ring if w.index >= 0),
                key=lambda w: w.index,
            )
        return {
            "series": self.key,
            "kind": self.kind,
            "resolution": self.resolution,
            "windows": [w.as_dict(self.resolution) for w in live],
        }


class WindowedStore:
    """All of one run's windowed series, keyed by name + labels.

    ``resolution`` is the window width in virtual seconds; ``capacity``
    is how many windows each series retains (a ring — older windows
    are overwritten, so memory per series is O(capacity) forever).
    """

    def __init__(self, resolution: float = 0.25, capacity: int = 4096):
        self.resolution = float(resolution)
        self.capacity = int(capacity)
        self._series: dict[str, WindowedSeries] = {}
        self._lock = threading.Lock()

    def _get(self, name: str, labels: dict, kind: str) -> WindowedSeries:
        key = _render_key(name, labels)
        series = self._series.get(key)
        if series is None:
            with self._lock:
                series = self._series.get(key)
                if series is None:
                    series = WindowedSeries(
                        name, labels, kind,
                        self.resolution, self.capacity,
                    )
                    self._series[key] = series
        return series

    def counter(self, name: str, **labels: object) -> WindowedSeries:
        return self._get(name, labels, "counter")

    def histogram(self, name: str, **labels: object) -> WindowedSeries:
        return self._get(name, labels, "histogram")

    def __len__(self) -> int:
        with self._lock:
            return len(self._series)

    # -- cross-series queries ------------------------------------------------

    def select(self, name: str, **where: object) -> list[WindowedSeries]:
        """Every series of ``name`` whose labels match ``where``."""
        with self._lock:
            candidates = list(self._series.values())
        return [
            series for series in candidates
            if series.name == name and all(
                series.labels.get(label) == value
                for label, value in where.items()
            )
        ]

    def label_values(self, name: str, label: str) -> list[str]:
        """Every distinct value one label takes across a series name."""
        values = {
            str(series.labels[label])
            for series in self.select(name)
            if label in series.labels
        }
        return sorted(values)

    def total(self, name: str, lookback: float, now: float,
              value_sum: bool = False, **where: object) -> float:
        return sum(
            series.total(lookback, now, value_sum=value_sum)
            for series in self.select(name, **where)
        )

    def rate(self, name: str, lookback: float, now: float,
             **where: object) -> float:
        if lookback <= 0:
            return 0.0
        return self.total(name, lookback, now, **where) / lookback

    def quantile(self, name: str, q: float, lookback: float, now: float,
                 **where: object) -> float | None:
        merged: list[float] = []
        for series in self.select(name, **where):
            for window in series.windows(now - lookback, now):
                if window.values:
                    merged.extend(window.values)
        merged.sort()
        return quantile(merged, q)

    def exemplar(self, name: str, lookback: float, now: float,
                 **where: object) -> str:
        best_trace, best_max = "", float("-inf")
        for series in self.select(name, **where):
            for window in series.windows(now - lookback, now):
                if window.exemplar and window.max > best_max:
                    best_trace, best_max = window.exemplar, window.max
        return best_trace

    # -- export --------------------------------------------------------------

    def export(self) -> list[dict]:
        """Every series as a JSONL-ready record, sorted by key."""
        with self._lock:
            series = sorted(self._series.values(), key=lambda s: s.key)
        return [s.as_dict() for s in series]
