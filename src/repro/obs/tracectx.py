"""Propagated per-request trace context and tail-based sampling.

A :class:`RequestContext` is born at the front door and rides a
context variable through every layer a request crosses — admission,
the region gate, netem transmit, replica failover — so each hop can
stamp attributes (RTT, queue depth, lock wait) onto one shared record
without threading a parameter through every signature.  The request's
root span plus the hop spans opened under it render as **one tree**
per request, spanning client region to resource region.

The :class:`TailSampler` decides a trace's fate *after* it completes
(tail-based, not head-based): error, shed, and slow traces are always
kept — those are the ones worth reading — while healthy-and-fast
traces are kept at a seeded probabilistic rate.  Decisions draw from
``crc32`` over (seed, trace id), so the same run keeps the same
traces every time; Python's ``hash()`` is per-process randomized and
deliberately avoided.
"""

from __future__ import annotations

import itertools
import zlib
from contextvars import ContextVar


class RequestContext:
    """Everything the layers learn about one in-flight request."""

    __slots__ = (
        "trace_id", "tenant", "api", "start", "root",
        "client_region", "resource_region", "hops",
        "queue_depth", "queue_wait_s", "lock_wait_s",
        "registry_version", "outcome", "error_code", "shed", "failover",
    )

    def __init__(self, trace_id: str, tenant: str, api: str,
                 start: float, root=None):
        self.trace_id = trace_id
        self.tenant = tenant
        self.api = api
        self.start = start
        self.root = root  # the request's root span, when tracing
        self.client_region = ""
        self.resource_region = ""
        #: Per-hop network records: ``{src, dst, rtt_s, delivered,
        #: reason}`` — stamped by the region gate from netem
        #: deliveries, rendered as ``net.hop`` child spans.
        self.hops: list[dict] = []
        self.queue_depth = 0
        self.queue_wait_s = 0.0
        self.lock_wait_s = 0.0
        #: The published registry version this request observed (MVCC
        #: serve path: readers pin exactly one; writers record the one
        #: they published).  0 = not versioned (fallback lock path).
        self.registry_version = 0
        self.outcome = "ok"       # "ok" | "error" | "shed"
        self.error_code = ""
        self.shed = False
        self.failover = False

    def add_hop(self, src: str, dst: str, rtt_s: float,
                delivered: bool = True, reason: str = "",
                at: float = 0.0) -> None:
        """Record one network hop; ``at`` is its virtual finish time."""
        self.hops.append({
            "src": src, "dst": dst, "rtt_s": round(rtt_s, 9),
            "delivered": delivered, "reason": reason, "at": at,
        })

    @property
    def rtt_total_s(self) -> float:
        return sum(hop["rtt_s"] for hop in self.hops)


#: The in-flight request on the current logical thread of control.
CURRENT_REQUEST: ContextVar[RequestContext | None] = ContextVar(
    "repro_obs_request", default=None
)


def current_request() -> RequestContext | None:
    """The propagated context of the in-flight request, if any."""
    return CURRENT_REQUEST.get()


class TraceIdAllocator:
    """Cheap, deterministic trace ids: ``t<seed-hex>-<counter>``."""

    __slots__ = ("_prefix", "_counter")

    def __init__(self, seed: int):
        self._prefix = f"t{seed & 0xFFFFFFFF:x}"
        self._counter = itertools.count(1)

    def next_id(self) -> str:
        return f"{self._prefix}-{next(self._counter):08x}"


class TailSampler:
    """Keep the traces worth reading; bound the rest, deterministically.

    - error / shed traces: always kept;
    - slow traces (latency >= ``slow_threshold_s``): always kept;
    - everything else: kept iff a seeded draw over the trace id lands
      under ``keep_rate``.

    ``decide`` returns the decision record; the caller is responsible
    for evicting dropped trees (``Tracer.discard_root``), because the
    sampler itself never touches the tracer — it stays testable in
    isolation.
    """

    __slots__ = ("keep_rate", "slow_threshold_s", "seed",
                 "kept", "dropped", "kept_by_reason")

    def __init__(self, keep_rate: float = 0.05,
                 slow_threshold_s: float = 1.0, seed: int = 7):
        self.keep_rate = min(1.0, max(0.0, keep_rate))
        self.slow_threshold_s = slow_threshold_s
        self.seed = seed
        self.kept = 0
        self.dropped = 0
        self.kept_by_reason: dict[str, int] = {}

    def _draw(self, trace_id: str) -> float:
        payload = f"{self.seed}:{trace_id}".encode()
        return (zlib.crc32(payload) & 0xFFFFFFFF) / 4294967296.0

    def decide(self, ctx: RequestContext, latency_s: float) -> dict:
        """The sampling decision for one completed request."""
        if ctx.shed or ctx.outcome == "shed":
            keep, reason = True, "shed"
        elif ctx.outcome == "error":
            keep, reason = True, "error"
        elif latency_s >= self.slow_threshold_s:
            keep, reason = True, "slow"
        elif self._draw(ctx.trace_id) < self.keep_rate:
            keep, reason = True, "probabilistic"
        else:
            keep, reason = False, "dropped"
        if keep:
            self.kept += 1
            self.kept_by_reason[reason] = (
                self.kept_by_reason.get(reason, 0) + 1
            )
        else:
            self.dropped += 1
        return {"sampled": keep, "reason": reason}

    @property
    def seen(self) -> int:
        return self.kept + self.dropped

    def as_dict(self) -> dict:
        return {
            "keep_rate": self.keep_rate,
            "slow_threshold_s": self.slow_threshold_s,
            "seed": self.seed,
            "seen": self.seen,
            "kept": self.kept,
            "dropped": self.dropped,
            "kept_by_reason": dict(sorted(self.kept_by_reason.items())),
        }
