"""Declarative SLOs with multi-window, multi-burn-rate alerting.

An :class:`SLOSpec` states an objective over a virtual-time period —
availability ("99.9% of requests succeed") or latency ("99% of
requests finish under 250ms") — scoped to one tenant or to the whole
service.  The :class:`SLOEngine` evaluates specs against the windowed
store and reports error-budget consumption plus burn-rate alerts.

Alerting follows the SRE-workbook shape, scaled from wall time to the
spec's virtual period.  The canonical 30-day recipe pairs a long and a
short window per severity so alerts are both fast and un-flappy:

==========  ==========  ============  ===========
severity    long        short         burn rate
==========  ==========  ============  ===========
page        1h          5m            14.4
ticket      3d          6h            1.0
==========  ==========  ============  ===========

Virtual periods are rarely 30 days, so windows scale as *fractions of
the period*: the page's long window is ``period / 720`` (1h of 30d),
its short window ``period / 8640`` (5m of 30d), and so on.  Burn
rates are dimensionless and carry over unchanged.  An alert fires
only while **both** of its windows burn above threshold, which is
what keeps a single bad window from paging.

Everything is deterministic: the engine reads windows of virtual time
and :meth:`SLOEngine.sweep` replays the run's timeline at window
resolution, so "the page alert fired at t=14.25s" is a stable,
seed-reproducible fact a test can assert.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from dataclasses import dataclass, field

from .windows import WindowedStore

#: Outcomes that count as *good* for availability objectives: the
#: service answered the caller correctly.  ``client_error`` is good —
#: a validation reject or a missing resource is the caller's fault —
#: while ``error`` (infra codes) and ``shed`` burn budget.
GOOD_OUTCOMES = ("ok", "client_error")

#: The canonical SRE window shapes, as fractions of the SLO period
#: (from the 30-day recipe: 5m/1h page at burn 14.4, 6h/3d ticket at
#: burn 1.0).
ALERT_SHAPES = (
    {"severity": "page", "long_fraction": 1.0 / 720.0,
     "short_fraction": 1.0 / 8640.0, "burn_rate": 14.4},
    {"severity": "ticket", "long_fraction": 1.0 / 10.0,
     "short_fraction": 1.0 / 120.0, "burn_rate": 1.0},
)


@dataclass(frozen=True)
class SLOSpec:
    """One objective: availability or latency, per tenant or global.

    ``objective`` is the target good-fraction (0.999 = "three nines").
    For ``kind="latency"``, a request is *good* when it finishes under
    ``threshold_s`` — the classic latency-as-availability encoding, so
    one burn-rate machinery serves both kinds.  ``period`` is the
    error-budget period in virtual seconds; ``tenant=""`` means the
    spec spans every tenant.
    """

    name: str
    kind: str = "availability"  # "availability" | "latency"
    objective: float = 0.999
    threshold_s: float = 0.25  # latency specs only
    period: float = 3600.0
    tenant: str = ""

    def __post_init__(self):
        if self.kind not in ("availability", "latency"):
            raise ValueError(f"unknown SLO kind {self.kind!r}")
        if not 0.0 < self.objective < 1.0:
            raise ValueError(
                f"SLO objective must be in (0, 1), got {self.objective}"
            )
        if self.period <= 0:
            raise ValueError("SLO period must be positive")

    @property
    def budget_fraction(self) -> float:
        """The error budget as a fraction of all requests (1-objective)."""
        return 1.0 - self.objective

    def as_dict(self) -> dict:
        record = {
            "name": self.name,
            "kind": self.kind,
            "objective": self.objective,
            "period": self.period,
        }
        if self.kind == "latency":
            record["threshold_s"] = self.threshold_s
        if self.tenant:
            record["tenant"] = self.tenant
        return record

    @classmethod
    def from_dict(cls, record: dict) -> "SLOSpec":
        return cls(
            name=record["name"],
            kind=record.get("kind", "availability"),
            objective=float(record.get("objective", 0.999)),
            threshold_s=float(record.get("threshold_s", 0.25)),
            period=float(record.get("period", 3600.0)),
            tenant=record.get("tenant", ""),
        )


@dataclass
class BurnAlert:
    """One severity's firing state for one spec at one instant."""

    severity: str
    burn_rate: float  # threshold, from the shape
    long_window: float
    short_window: float
    long_burn: float = 0.0
    short_burn: float = 0.0
    firing: bool = False

    def as_dict(self) -> dict:
        return {
            "severity": self.severity,
            "burn_rate": self.burn_rate,
            "long_window": round(self.long_window, 9),
            "short_window": round(self.short_window, 9),
            "long_burn": round(self.long_burn, 4),
            "short_burn": round(self.short_burn, 4),
            "firing": self.firing,
        }


@dataclass
class SLOStatus:
    """One spec evaluated at one virtual instant."""

    spec: SLOSpec
    at: float
    good: int = 0
    total: int = 0
    budget_spent: float = 0.0  # fraction of the error budget consumed
    alerts: list[BurnAlert] = field(default_factory=list)

    @property
    def exhausted(self) -> bool:
        return self.budget_spent >= 1.0

    @property
    def firing(self) -> list[BurnAlert]:
        return [alert for alert in self.alerts if alert.firing]

    def as_dict(self) -> dict:
        return {
            "slo": self.spec.as_dict(),
            "at": round(self.at, 9),
            "good": self.good,
            "total": self.total,
            "budget_spent": round(self.budget_spent, 4),
            "exhausted": self.exhausted,
            "alerts": [alert.as_dict() for alert in self.alerts],
        }


class _PrefixCounts:
    """Sorted window indices with cumulative (good, total) sums."""

    __slots__ = ("indices", "good", "total")

    def __init__(self, counts: dict):
        self.indices = sorted(counts)
        good = total = 0
        self.good, self.total = [], []
        for index in self.indices:
            good += counts[index][0]
            total += counts[index][1]
            self.good.append(good)
            self.total.append(total)

    @property
    def first_index(self) -> int:
        return self.indices[0]

    @property
    def last_index(self) -> int:
        return self.indices[-1]

    def between(self, first: int, last: int) -> tuple[int, int]:
        """(good, total) over window indices in ``[first, last]``."""
        lo = bisect_left(self.indices, first)
        hi = bisect_right(self.indices, last) - 1
        if hi < lo:
            return 0, 0
        good = self.good[hi] - (self.good[lo - 1] if lo else 0)
        total = self.total[hi] - (self.total[lo - 1] if lo else 0)
        return good, total


class SLOEngine:
    """Evaluates SLO specs against the windowed request series.

    The engine reads the ``serve.requests`` histogram family the
    observability plane records per request — labels carry tenant and
    outcome, values carry latency — so availability and latency specs
    share one data source and stay consistent with each other.
    """

    def __init__(self, store: WindowedStore, specs: list[SLOSpec]):
        self.store = store
        self.specs = list(specs)

    # -- counting ------------------------------------------------------------

    def _counts(self, spec: SLOSpec, lookback: float,
                now: float) -> tuple[int, int]:
        """(good, total) requests for a spec over a trailing lookback."""
        where = {"tenant": spec.tenant} if spec.tenant else {}
        good = total = 0
        for series in self.store.select("serve.requests", **where):
            outcome_good = series.labels.get("outcome") in GOOD_OUTCOMES
            for window in series.windows(now - lookback, now):
                total += window.count
                if not outcome_good:
                    continue  # errors and sheds burn both budgets
                if spec.kind == "availability":
                    good += window.count
                else:
                    # Latency specs only credit good requests that
                    # also beat the threshold.
                    good += sum(
                        1 for value in (window.values or [])
                        if value < spec.threshold_s
                    )
        return good, total

    def _burn(self, spec: SLOSpec, lookback: float, now: float) -> float:
        """Budget burn rate over a window: 1.0 = exactly on budget."""
        good, total = self._counts(spec, lookback, now)
        if total == 0:
            return 0.0
        bad_fraction = (total - good) / total
        return bad_fraction / spec.budget_fraction

    # -- evaluation ----------------------------------------------------------

    def status(self, spec: SLOSpec, now: float) -> SLOStatus:
        """One spec's budget and alert state at a virtual instant."""
        good, total = self._counts(spec, spec.period, now)
        bad = total - good
        budget = spec.budget_fraction * total
        status = SLOStatus(
            spec=spec, at=now, good=good, total=total,
            budget_spent=(bad / budget) if budget > 0 else 0.0,
        )
        for shape in ALERT_SHAPES:
            long_window = spec.period * shape["long_fraction"]
            short_window = spec.period * shape["short_fraction"]
            alert = BurnAlert(
                severity=shape["severity"],
                burn_rate=shape["burn_rate"],
                long_window=long_window,
                short_window=short_window,
                long_burn=self._burn(spec, long_window, now),
                short_burn=self._burn(spec, short_window, now),
            )
            alert.firing = (alert.long_burn >= alert.burn_rate
                            and alert.short_burn >= alert.burn_rate)
            status.alerts.append(alert)
        return status

    def evaluate(self, now: float) -> list[SLOStatus]:
        """Every spec's status at one instant, in spec order."""
        return [self.status(spec, now) for spec in self.specs]

    def _index_counts(self, spec: SLOSpec) -> "_PrefixCounts | None":
        """One spec's per-window (good, total) counts as prefix sums.

        Folding the series scan into sorted prefix arrays once lets
        :meth:`sweep` answer any trailing-window burn query in
        O(log windows) instead of re-walking every series per tick.
        """
        where = {"tenant": spec.tenant} if spec.tenant else {}
        counts: dict[int, list[int]] = {}
        for series in self.store.select("serve.requests", **where):
            outcome_good = series.labels.get("outcome") in GOOD_OUTCOMES
            for window in series.live_windows():
                bucket = counts.setdefault(window.index, [0, 0])
                bucket[1] += window.count
                if not outcome_good:
                    continue
                if spec.kind == "availability":
                    bucket[0] += window.count
                else:
                    bucket[0] += sum(
                        1 for value in (window.values or [])
                        if value < spec.threshold_s
                    )
        if not counts:
            return None
        return _PrefixCounts(counts)

    def sweep(self, now: float, step: float | None = None) -> list[dict]:
        """Alert state *transitions* over the whole run so far.

        Replays the timeline at ``step`` resolution (default: the
        store's window resolution) and records every edge — each dict
        carries the spec, severity, ``firing`` flag and the virtual
        time ``at`` which the edge occurred.  This is what makes "the
        page fired when the partition opened" a testable,
        deterministic assertion.

        The replay only visits ticks that can change an alert: from
        the first live window to one long-window past the last, with
        burn queries answered from per-spec prefix sums — so cost
        follows the data span, not the raw virtual duration (a
        chaos-stretched clock would otherwise make this quadratic).
        """
        step = step or self.store.resolution
        resolution = self.store.resolution
        per_spec = [
            (spec, self._index_counts(spec)) for spec in self.specs
        ]
        live = [counts for __, counts in per_spec if counts is not None]
        if not live:
            return []
        first_time = min(c.first_index for c in live) * resolution
        last_time = (max(c.last_index for c in live) + 1) * resolution
        longest_window = max(
            spec.period * shape["long_fraction"]
            for spec, __ in per_spec for shape in ALERT_SHAPES
        )
        ticks = int(now / step) + 1
        start_tick = max(1, int(first_time / step))
        end_tick = min(ticks, int((last_time + longest_window) / step) + 1)
        transitions: list[dict] = []
        state: dict[tuple[str, str], bool] = {}
        for tick in range(start_tick, end_tick + 1):
            at = min(tick * step, now)
            for spec, counts in per_spec:
                if counts is None:
                    continue
                for shape in ALERT_SHAPES:
                    key = (spec.name, shape["severity"])
                    burns = []
                    for window in (spec.period * shape["long_fraction"],
                                   spec.period * shape["short_fraction"]):
                        good, total = counts.between(
                            int((at - window) / resolution),
                            int(at / resolution),
                        )
                        burns.append(
                            0.0 if total == 0
                            else ((total - good) / total)
                            / spec.budget_fraction
                        )
                    firing = all(
                        burn >= shape["burn_rate"] for burn in burns
                    )
                    if firing != state.get(key, False):
                        state[key] = firing
                        transitions.append({
                            "slo": spec.name,
                            "severity": shape["severity"],
                            "firing": firing,
                            "at": round(at, 9),
                            "long_burn": round(burns[0], 4),
                            "short_burn": round(burns[1], 4),
                        })
        return transitions

    def report(self, now: float) -> dict:
        """The full SLO report: per-spec status plus alert history."""
        statuses = self.evaluate(now)
        return {
            "at": round(now, 9),
            "slos": [status.as_dict() for status in statuses],
            "transitions": self.sweep(now),
            "exhausted": [
                status.spec.name for status in statuses
                if status.exhausted
            ],
        }


def default_slos(tenants: list[str] | None = None,
                 period: float = 60.0) -> list[SLOSpec]:
    """A reasonable reference spec set for serving scenarios.

    Per-tenant availability at 99% plus a global latency objective —
    deliberately loose enough that a healthy run holds them and a
    partitioned run visibly burns them.
    """
    specs = [
        SLOSpec(name="availability", kind="availability",
                objective=0.99, period=period),
        SLOSpec(name="latency-p99", kind="latency", objective=0.99,
                threshold_s=1.0, period=period),
    ]
    for tenant in tenants or []:
        specs.append(SLOSpec(
            name=f"availability-{tenant}", kind="availability",
            objective=0.99, period=period, tenant=tenant,
        ))
    return specs
