"""Serving-time observability: windows, SLOs, sampled traces.

Batch telemetry (:mod:`repro.telemetry`) answers "what did this build
do"; this package answers the operator's questions about a *serving*
run, live and deterministically on the virtual clock:

- :class:`WindowedStore` / :class:`WindowedSeries` — ring-buffer time
  series keyed by (tenant, api, region, outcome, code), queryable as
  rate / p50 / p95 / p99 over arbitrary lookbacks, with per-window
  exemplar trace ids;
- :class:`SLOSpec` / :class:`SLOEngine` — declarative availability
  and latency objectives with multi-window, multi-burn-rate alerting
  (the SRE page/ticket shapes, scaled to the spec's virtual period);
- :class:`ObsPlane` — the per-request plane: propagated trace
  context, one root span per request, tail-based sampling
  (:class:`TailSampler`) that keeps every error/shed/slow trace and a
  seeded fraction of the rest;
- :class:`DriftMonitor` — live compiled-vs-evaluator agreement
  sampling;
- :func:`render_frame` / :func:`record_frames` — the ``repro top``
  ASCII dashboard.

Attach a plane with ``ObsPlane(telemetry, ...)``; instrumented layers
discover it through ``telemetry.obs`` and the propagated
:func:`current_request` context, so un-instrumented runs pay nothing.
"""

from .dashboard import record_frames, render_frame
from .drift import DriftMonitor
from .plane import INFRA_CODES, ObsPlane
from .slo import (
    ALERT_SHAPES,
    BurnAlert,
    default_slos,
    GOOD_OUTCOMES,
    SLOEngine,
    SLOSpec,
    SLOStatus,
)
from .tracectx import (
    current_request,
    RequestContext,
    TailSampler,
    TraceIdAllocator,
)
from .windows import WindowedSeries, WindowedStore

__all__ = [
    "ALERT_SHAPES",
    "BurnAlert",
    "current_request",
    "default_slos",
    "DriftMonitor",
    "GOOD_OUTCOMES",
    "INFRA_CODES",
    "ObsPlane",
    "record_frames",
    "render_frame",
    "RequestContext",
    "SLOEngine",
    "SLOSpec",
    "SLOStatus",
    "TailSampler",
    "TraceIdAllocator",
    "WindowedSeries",
    "WindowedStore",
]
