"""Compiled-vs-evaluator drift sampling on the serve path.

The emulator serves reads through compiled closures
(:mod:`repro.interpreter.compiler`); the tree-walking
:class:`~repro.interpreter.evaluator.Evaluator` is the reference
semantics.  The two are proven equivalent at build time, but the
paper's trust argument wants the check to keep running *in
production*: the :class:`DriftMonitor` re-executes a seeded fraction
of live read requests through the evaluator
(:meth:`Emulator.reference_invoke
<repro.interpreter.emulator.Emulator.reference_invoke>`) and counts
agreement into the windowed store, where ``repro top`` and the SLO
report surface it.

Both executions happen under one shared-lock hold
(:meth:`ConcurrentEmulator.drift_check
<repro.serve.concurrency.ConcurrentEmulator.drift_check>`), so a
concurrent writer can never make the pair diverge spuriously.
"""

from __future__ import annotations

import zlib


class DriftMonitor:
    """Samples live reads back through the reference evaluator."""

    __slots__ = ("plane", "rate", "seed", "checks", "divergences",
                 "samples")

    def __init__(self, plane, rate: float = 0.02, seed: int = 7):
        self.plane = plane
        self.rate = min(1.0, max(0.0, rate))
        self.seed = seed
        self.checks = 0
        self.divergences = 0
        #: A bounded sample of divergence records for the report.
        self.samples: list[dict] = []

    def _draw(self, trace_id: str) -> float:
        payload = f"drift:{self.seed}:{trace_id}".encode()
        return (zlib.crc32(payload) & 0xFFFFFFFF) / 4294967296.0

    def maybe_check(self, ctx, emulator, api: str, params: dict) -> None:
        """Re-run one read through the evaluator, if this trace drew it.

        ``emulator`` is the tenant's concurrency-wrapped emulator
        (:class:`~repro.serve.concurrency.ConcurrentEmulator`); the
        draw is seeded by trace id so the set of probed requests is a
        deterministic function of the run, independent of the tail
        sampler's keep rate.
        """
        if self._draw(ctx.trace_id) >= self.rate:
            return
        if not hasattr(emulator, "drift_check"):
            return
        with self.plane.telemetry.span(
            "obs.drift_probe", kind="obs", api=api,
            trace_id=ctx.trace_id,
        ):
            match, detail = emulator.drift_check(api, params)
        self.checks += 1
        now = self.plane.clock.now()
        self.plane.store.counter(
            "obs.drift", api=api,
            result="match" if match else "diverged",
        ).record(now)
        if not match:
            self.divergences += 1
            self.plane.telemetry.event(
                "drift_divergence", api=api,
                trace_id=ctx.trace_id, detail=detail,
            )
            if len(self.samples) < 20:
                self.samples.append({
                    "api": api,
                    "trace_id": ctx.trace_id,
                    "at": round(now, 9),
                    "detail": detail,
                })

    def as_dict(self) -> dict:
        return {
            "rate": self.rate,
            "checks": self.checks,
            "divergences": self.divergences,
            "samples": list(self.samples),
        }
