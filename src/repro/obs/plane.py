"""The serving-time observability plane.

One :class:`ObsPlane` rides one :class:`~repro.telemetry.Telemetry`
(as ``telemetry.obs``) and gives the serve path four things the batch
registry cannot:

- a **windowed store** (:mod:`repro.obs.windows`) keyed by (tenant,
  api, region, outcome, code), recorded once per request at virtual
  completion time with the trace id as exemplar;
- an **SLO engine** (:mod:`repro.obs.slo`) evaluating burn-rate
  alerts over those windows;
- a **propagated request context** + **tail sampler**
  (:mod:`repro.obs.tracectx`): every request gets a root span and a
  context the lower layers stamp hops and waits onto; at completion
  the sampler keeps error/shed/slow trees and a seeded fraction of
  the healthy ones, discarding the rest from the tracer so trace
  output stays bounded under load;
- an optional **drift monitor** (:mod:`repro.obs.drift`) re-running a
  seeded fraction of reads through the tree-walking evaluator.

The per-request hot path is deliberately small: one span, one
windowed record, one crc32 draw.  Everything else (hop child spans,
SLO evaluation, dashboards) happens on the kept-trace path or at
query time.
"""

from __future__ import annotations

from contextlib import contextmanager

from ..telemetry.spans import Span
from .slo import SLOEngine, SLOSpec
from .tracectx import (
    CURRENT_REQUEST,
    RequestContext,
    TailSampler,
    TraceIdAllocator,
)
from .windows import WindowedStore

#: Error codes that count against availability SLOs (the service
#: failed the caller).  Everything else — validation rejects, missing
#: resources — is the *caller's* error: the service answered
#: correctly, so the request is good for SLO purposes and eligible
#: for probabilistic (rather than guaranteed) trace sampling.
INFRA_CODES = frozenset({
    "ServiceUnavailable",
    "RequestTimeout",
    "RequestLimitExceeded",
    "InternalFailure",
    "InternalError",
    "CircuitOpen",
    "ThrottlingException",
})


class ObsPlane:
    """One serving run's live observability: windows, SLOs, sampling."""

    def __init__(
        self,
        telemetry,
        seed: int = 7,
        resolution: float = 0.25,
        capacity: int = 4096,
        slos: "list[SLOSpec] | None" = None,
        sample_keep: float = 0.05,
        slow_threshold_s: float = 1.0,
        drift_rate: float = 0.0,
    ):
        self.telemetry = telemetry
        self.clock = telemetry.clock
        self.store = WindowedStore(resolution=resolution, capacity=capacity)
        self.slo = SLOEngine(self.store, slos or [])
        self.sampler = TailSampler(
            keep_rate=sample_keep,
            slow_threshold_s=slow_threshold_s,
            seed=seed,
        )
        self._trace_ids = TraceIdAllocator(seed)
        self.drift = None
        if drift_rate > 0:
            from .drift import DriftMonitor

            self.drift = DriftMonitor(self, rate=drift_rate, seed=seed)
        telemetry.obs = self

    # -- the per-request hot path --------------------------------------------

    @contextmanager
    def request(self, tenant: str, api: str):
        """Wrap one request: root span, propagated context, sampling.

        The body runs with a :class:`RequestContext` installed in the
        context variable, so admission, the region gate and the
        concurrency layer can stamp what they see; at exit the request
        is classified, recorded into the windowed store, and its trace
        tree is kept or discarded by the tail sampler.
        """
        start = self.clock.now()
        ctx = RequestContext(
            self._trace_ids.next_id(), tenant, api, start
        )
        token = CURRENT_REQUEST.set(ctx)
        root = None
        try:
            with self.telemetry.span(
                "serve.request", kind="serve",
                trace_id=ctx.trace_id, tenant=tenant, api=api,
            ) as span:
                root = span
                ctx.root = span
                yield ctx
        except BaseException as error:
            ctx.outcome = "error"
            if not ctx.error_code:
                ctx.error_code = type(error).__name__
            raise
        finally:
            CURRENT_REQUEST.reset(token)
            if root is not None:
                self._finish(ctx, root, max(0.0, root.end - root.start))

    def classify(self, ctx: RequestContext, code: str) -> None:
        """Map one response's error code onto the request's outcome."""
        if not code:
            ctx.outcome = "ok"
            ctx.error_code = ""
        elif ctx.shed:
            ctx.outcome = "shed"
            ctx.error_code = code
        elif code in INFRA_CODES:
            ctx.outcome = "error"
            ctx.error_code = code
        else:
            ctx.outcome = "client_error"
            ctx.error_code = code

    def _finish(self, ctx: RequestContext, root: Span,
                latency_s: float) -> None:
        now = self.clock.now()
        # Decide sampling *before* recording: exemplars must point at
        # trace ids that survive into the exported span set, so only
        # kept traces are linkable from histogram windows.
        decision = self.sampler.decide(ctx, latency_s)
        exemplar = ctx.trace_id if decision["sampled"] else ""
        self.store.histogram(
            "serve.requests",
            tenant=ctx.tenant, api=ctx.api,
            region=ctx.resource_region or "-",
            outcome=ctx.outcome, code=ctx.error_code or "-",
        ).record(now, latency_s, exemplar=exemplar)
        for hop in ctx.hops:
            self.store.histogram(
                "net.rtt", src=hop["src"], dst=hop["dst"],
            ).record(hop.get("at", now), hop["rtt_s"],
                     exemplar=exemplar)

        root.set("outcome", ctx.outcome)
        if ctx.error_code:
            root.set("error_code", ctx.error_code)
        if ctx.client_region:
            root.set("client_region", ctx.client_region)
        if ctx.resource_region:
            root.set("resource_region", ctx.resource_region)
        if ctx.hops:
            root.set("rtt_total_s", round(ctx.rtt_total_s, 9))
        if ctx.failover:
            root.set("failover", True)
        if ctx.queue_depth:
            root.set("queue_depth", ctx.queue_depth)
        if ctx.lock_wait_s:
            root.set("lock_wait_s", round(ctx.lock_wait_s, 6))
        if ctx.registry_version:
            # The single published version this request observed
            # (pinned for reads, published for writes) on the MVCC
            # serve path.
            root.set("registry.version", ctx.registry_version)

        if decision["sampled"]:
            root.set("sampled", True)
            root.set("sample_reason", decision["reason"])
            self._materialize_hops(ctx, root)
        else:
            self.telemetry.tracer.discard_root(root)

    def _materialize_hops(self, ctx: RequestContext, root: Span) -> None:
        """Render the context's hop records as child spans.

        Done only for kept traces — a dropped tree never pays for its
        children.  Hop span ids derive from the root's, so they stay
        unique without touching the tracer's counter.
        """
        for index, hop in enumerate(ctx.hops, 1):
            failover = hop["reason"] == "replica_failover"
            span = Span(
                name="replica.failover" if failover else "net.hop",
                kind="net",
                span_id=f"{root.span_id}.h{index}",
                parent_id=root.span_id,
                start=hop.get("at", root.start) - hop["rtt_s"],
                attributes={
                    "src": hop["src"], "dst": hop["dst"],
                    "rtt_s": hop["rtt_s"],
                    "delivered": hop["delivered"],
                },
            )
            span.end = span.start + hop["rtt_s"]
            if hop["reason"] and not failover:
                span.attributes["reason"] = hop["reason"]
                if not hop["delivered"]:
                    span.status = "error"
            root.children.append(span)

    # -- reporting -----------------------------------------------------------

    def request_rate(self, lookback: float, tenant: str = "") -> float:
        where = {"tenant": tenant} if tenant else {}
        return self.store.rate(
            "serve.requests", lookback, self.clock.now(), **where
        )

    def slo_report(self) -> dict:
        return self.slo.report(self.clock.now())

    def report(self) -> dict:
        """The plane's full JSON-ready summary for one run."""
        out = {
            "resolution": self.store.resolution,
            "series": len(self.store),
            "sampling": self.sampler.as_dict(),
            "slo": self.slo_report() if self.slo.specs else None,
        }
        if self.drift is not None:
            out["drift"] = self.drift.as_dict()
        return out
