"""The append-only build journal: crash-safe progress on disk.

One journal records every *completed* unit of build work — an extracted
resource, a targeted correction, a finished alignment round — as one
JSONL record.  Records are CRC-guarded and fsync'd as they are
appended, so after a crash at any instant the journal is a valid
prefix of the build's history plus, at worst, one torn tail line that
the reader drops.  ``repro build --journal DIR --resume`` replays that
prefix and re-runs only the work the crash interrupted.

Record framing (one JSON object per line)::

    {"crc": <crc32 of canonical record JSON>, "record": {"type": ..., ...}}

Reading is *torn-tail tolerant*: the first line that fails to parse or
whose CRC mismatches ends the valid prefix; everything from there on is
dropped (and the file is truncated back to the valid prefix when the
journal is reopened for appending), because records after a corrupt one
cannot be trusted to describe work that actually completed.
"""

from __future__ import annotations

import json
import os
import zlib
from dataclasses import dataclass, field
from pathlib import Path

from ..resilience.chaos import kill_point, SimulatedCrash

JOURNAL_FORMAT_VERSION = 1
JOURNAL_NAME = "build.journal"


class DurabilityError(Exception):
    """The journal (or snapshot) cannot be used as requested."""


@dataclass
class DurabilityStats:
    """Counters for one run's durability activity (see ``RunReport``)."""

    journal_appends: int = 0
    journal_replays: int = 0
    resumes: int = 0
    replayed_mutations: int = 0
    crashes_injected: int = 0
    torn_records_dropped: int = 0

    def merge(self, other: "DurabilityStats") -> None:
        self.journal_appends += other.journal_appends
        self.journal_replays += other.journal_replays
        self.resumes += other.resumes
        self.replayed_mutations += other.replayed_mutations
        self.crashes_injected += other.crashes_injected
        self.torn_records_dropped += other.torn_records_dropped

    def as_dict(self) -> dict:
        return {
            "journal_appends": self.journal_appends,
            "journal_replays": self.journal_replays,
            "resumes": self.resumes,
            "replayed_mutations": self.replayed_mutations,
            "crashes_injected": self.crashes_injected,
            "torn_records_dropped": self.torn_records_dropped,
        }

    @property
    def untouched(self) -> bool:
        """True when no durability machinery was exercised at all."""
        return not any(self.as_dict().values())


# ---------------------------------------------------------------------------
# Record framing
# ---------------------------------------------------------------------------

def _canonical(record: dict) -> bytes:
    return json.dumps(record, sort_keys=True, ensure_ascii=False).encode(
        "utf-8"
    )


def encode_record(record: dict) -> bytes:
    """Frame one record as a CRC-guarded JSONL line.

    The envelope is assembled around the canonical body directly (the
    record is not serialized a second time); readers recompute the CRC
    over the re-canonicalized record, so both sides agree byte-for-byte.
    """
    body = _canonical(record)
    return (
        b'{"crc": ' + str(zlib.crc32(body)).encode("ascii")
        + b', "record": ' + body + b"}\n"
    )


def decode_line(line: bytes) -> dict | None:
    """One framed line back to its record; ``None`` if torn/corrupt."""
    try:
        envelope = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError):
        return None
    if not isinstance(envelope, dict):
        return None
    record = envelope.get("record")
    if not isinstance(record, dict):
        return None
    if envelope.get("crc") != zlib.crc32(_canonical(record)):
        return None
    return record


@dataclass
class JournalScan:
    """The readable prefix of a journal file."""

    records: list[dict] = field(default_factory=list)
    #: Byte offset where the valid prefix ends (truncate point).
    valid_bytes: int = 0
    #: Lines dropped after the valid prefix (torn tail / corruption).
    dropped: int = 0


def scan_records(path: str | Path) -> JournalScan:
    """Read the valid record prefix of a CRC-framed JSONL file.

    Stops at the first unreadable line: a torn tail from a crash
    mid-append, or a flipped bit anywhere, invalidates that record and
    everything after it (later records may describe work that depended
    on the corrupt one).
    """
    scan = JournalScan()
    target = Path(path)
    if not target.exists():
        return scan
    with target.open("rb") as handle:
        offset = 0
        for line in handle:
            record = decode_line(line) if line.endswith(b"\n") else None
            if record is None:
                # Count every remaining line as dropped, then stop.
                rest = handle.read()
                scan.dropped = 1 + rest.count(b"\n")
                break
            scan.records.append(record)
            offset += len(line)
        scan.valid_bytes = offset
    return scan


class JournalWriter:
    """Append-only, fsync'd writer over the CRC framing.

    Shared by the build journal, the emulator's write-ahead mutation
    log and the shard workers' attempt logs.  ``append`` is a kill
    site — ``mid-journal-append`` by default; the serve layer's logs
    pass ``kill_site="mid-serve-wal-append"`` so schedules can target
    them independently.  An injected crash there leaves a deliberately
    torn tail (half a line, flushed but not fsync'd) that the reader
    must tolerate.
    """

    def __init__(self, path: str | Path, fsync: bool = True,
                 kill_site: str = "mid-journal-append"):
        self.path = Path(path)
        self.fsync = fsync
        self.kill_site = kill_site
        self._handle = None

    def open(self, truncate_to: int | None = None) -> None:
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._handle = open(self.path, "ab")
        if truncate_to is not None and self._handle.tell() != truncate_to:
            self._handle.truncate(truncate_to)
            self._handle.seek(truncate_to)

    @property
    def is_open(self) -> bool:
        return self._handle is not None

    def append(self, record: dict) -> None:
        if self._handle is None:
            self.open()
        data = encode_record(record)
        try:
            kill_point(self.kill_site)
        except SimulatedCrash:
            # Model the torn write a real crash produces: part of the
            # line reaches the file, the fsync never happens.
            self._handle.write(data[: max(1, len(data) // 2)])
            self._handle.flush()
            raise
        self._handle.write(data)
        self._handle.flush()
        if self.fsync:
            os.fsync(self._handle.fileno())

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None


# ---------------------------------------------------------------------------
# The build journal proper
# ---------------------------------------------------------------------------

class BuildJournal:
    """Completed build work, durably journaled and replayable.

    Record types:

    - ``meta``       — header: format version + the build fingerprint
      (service, mode, seed, chaos profile); a resume refuses to mix
      journals across fingerprints.
    - ``resource``   — one resource's completed extraction: serialized
      spec text, generation report, attempts, per-resource chaos-lane
      call count, usage delta, resilience-stats delta.
    - ``correction`` — one completed targeted correction (same payload,
      keyed by correction round + resource).
    - ``round``      — one completed alignment round: post-round spec
      text of every machine, the repairs applied, counters needed to
      fast-forward the chaos/usage state for later rounds.
    """

    def __init__(self, directory: str | Path, telemetry=None,
                 stats: DurabilityStats | None = None,
                 fsync: bool = True):
        self.directory = Path(directory)
        self.path = self.directory / JOURNAL_NAME
        self.telemetry = telemetry
        self.stats = stats if stats is not None else DurabilityStats()
        self._writer = JournalWriter(self.path, fsync=fsync)
        self._records: list[dict] = []

    # -- lifecycle ---------------------------------------------------------

    def start(self, meta: dict) -> None:
        """Begin a fresh journal (discarding any previous contents)."""
        self.directory.mkdir(parents=True, exist_ok=True)
        self.path.unlink(missing_ok=True)
        self._records = []
        self._writer.open(truncate_to=0)
        self.append("meta", format_version=JOURNAL_FORMAT_VERSION, **meta)

    def resume(self, meta: dict) -> list[dict]:
        """Reopen an interrupted journal and return its replayable records.

        Tolerates a torn tail (dropped, counted, truncated away) and
        refuses a journal whose fingerprint does not match the build
        being resumed — resuming ``ec2 --chaos mild`` from a
        ``dynamodb`` journal can only produce garbage.
        """
        scan = scan_records(self.path)
        self.stats.torn_records_dropped += scan.dropped
        if scan.dropped and self.telemetry is not None:
            self.telemetry.counter("durability.torn_records_dropped").inc(
                scan.dropped
            )
        if not scan.records:
            self.start(meta)
            return []
        header = scan.records[0]
        if header.get("type") != "meta":
            raise DurabilityError(
                f"{self.path} does not start with a meta record; "
                "not a build journal"
            )
        if header.get("format_version") != JOURNAL_FORMAT_VERSION:
            raise DurabilityError(
                f"{self.path} has journal format "
                f"{header.get('format_version')!r}; this build writes "
                f"version {JOURNAL_FORMAT_VERSION}"
            )
        for key, expected in meta.items():
            found = header.get(key)
            if found != expected:
                raise DurabilityError(
                    f"journal fingerprint mismatch: {key}={found!r} on "
                    f"disk, {expected!r} requested — refusing to resume "
                    "a different build"
                )
        self._records = scan.records
        self._writer.open(truncate_to=scan.valid_bytes)
        self.stats.resumes += 1
        if self.telemetry is not None:
            self.telemetry.counter("durability.resumes").inc()
        return scan.records[1:]

    def close(self) -> None:
        self._writer.close()

    # -- writing -----------------------------------------------------------

    def append(self, record_type: str, **fields: object) -> None:
        record = {"type": record_type, **fields}
        self._writer.append(record)
        self._records.append(record)
        self.stats.journal_appends += 1
        if self.telemetry is not None:
            self.telemetry.counter(
                "durability.journal_appends", type=record_type
            ).inc()

    def replayed(self, count: int = 1) -> None:
        """Account ``count`` records replayed instead of re-executed."""
        self.stats.journal_replays += count
        if self.telemetry is not None:
            self.telemetry.counter("durability.journal_replays").inc(count)

    # -- reading -----------------------------------------------------------

    @property
    def records(self) -> list[dict]:
        return list(self._records)

    def of_type(self, record_type: str) -> list[dict]:
        return [r for r in self._records if r.get("type") == record_type]

    def resource_replay(self) -> dict[str, dict]:
        """Completed extraction records by resource name."""
        return {r["name"]: r for r in self.of_type("resource")}

    def correction_replay(self) -> dict[tuple[int, str], dict]:
        """Completed correction records by (round, resource name)."""
        return {
            (r["round"], r["name"]): r for r in self.of_type("correction")
        }

    def round_records(self) -> list[dict]:
        """Completed alignment rounds, in index order, contiguous from 0.

        A gap means the journal was produced by something other than
        the loop's append discipline; replaying past a gap would apply
        repairs to a module state they were never made against.
        """
        rounds = sorted(self.of_type("round"), key=lambda r: r["index"])
        contiguous: list[dict] = []
        for expected, record in enumerate(rounds):
            if record["index"] != expected:
                raise DurabilityError(
                    f"journal rounds are not contiguous: expected round "
                    f"{expected}, found {record['index']}"
                )
            contiguous.append(record)
        return contiguous


def as_journal(value, telemetry=None) -> "BuildJournal | None":
    """Normalize a journal argument (a directory path, an instance, or
    ``None`` for no journaling)."""
    if value is None:
        return None
    if isinstance(value, BuildJournal):
        if telemetry is not None and value.telemetry is None:
            value.telemetry = telemetry
        return value
    return BuildJournal(value, telemetry=telemetry)
