"""Write-ahead mutation log for a serving emulator.

The emulator logs every state-mutating API call — logically, as
``(api, params)`` — *before* committing its transaction.  Because the
interpreter is deterministic (IDs, defaults, transition bodies), a
restored snapshot plus a replay of the logged calls after the
snapshot's ``wal_seq`` reconstructs the exact pre-crash registry.
Logging the intent rather than the physical writes keeps records tiny
and makes the log trivially valid against any snapshot of the same
emulator.

The log shares the build journal's CRC framing and torn-tail scan, so
a crash *during* an append (the ``mid-journal-append`` kill site) is
recovered the same way: drop the torn tail, replay the valid prefix.
Write-ahead ordering makes the crash window safe in both directions —
a record without its commit replays the mutation on recovery
(durable intent), and a commit can never exist without its record.
"""

from __future__ import annotations

from pathlib import Path

from .journal import DurabilityStats, JournalWriter, scan_records
from .snapshot import decode_value, encode_value

WAL_NAME = "emulator.wal"


class MutationLog:
    """Append-only intent log of committed emulator mutations."""

    def __init__(self, path: str | Path, fsync: bool = True,
                 stats: DurabilityStats | None = None):
        target = Path(path)
        if target.is_dir():
            target = target / WAL_NAME
        self.path = target
        self.stats = stats if stats is not None else DurabilityStats()
        self._writer = JournalWriter(self.path, fsync=fsync)
        scan = scan_records(self.path)
        self.stats.torn_records_dropped += scan.dropped
        self._records = scan.records
        self._writer.open(truncate_to=scan.valid_bytes)
        self._seq = self._records[-1]["seq"] if self._records else 0

    @property
    def seq(self) -> int:
        """Sequence number of the last logged mutation (0 = none)."""
        return self._seq

    @property
    def records(self) -> list[dict]:
        return list(self._records)

    def log(self, api: str, params: dict | None) -> int:
        """Log one mutating call about to commit; returns its seq."""
        self._seq += 1
        record = {
            "type": "mutation",
            "seq": self._seq,
            "api": api,
            "params": encode_value(dict(params or {})),
        }
        self._writer.append(record)
        self._records.append(record)
        self.stats.journal_appends += 1
        return self._seq

    def log_reset(self) -> int:
        """A registry reset is a mutation too (replay must repeat it)."""
        self._seq += 1
        record = {"type": "reset", "seq": self._seq}
        self._writer.append(record)
        self._records.append(record)
        self.stats.journal_appends += 1
        return self._seq

    def close(self) -> None:
        self._writer.close()


def replay_mutations(emulator, records: list[dict],
                     after_seq: int = 0,
                     stats: DurabilityStats | None = None) -> int:
    """Re-apply logged mutations with ``seq > after_seq`` to an emulator.

    Replay goes through the normal ``invoke`` path (with the WAL
    detached, so replay is not re-logged); determinism guarantees the
    same IDs and state fall out.  Responses are not checked for
    success: a mutation whose commit was lost to the crash re-executes
    and succeeds, while one that also failed originally fails again
    identically — either way the registry converges on the pre-crash
    state.
    """
    replayed = 0
    for record in records:
        if record.get("seq", 0) <= after_seq:
            continue
        if record.get("type") == "reset":
            emulator.reset()
        else:
            emulator.invoke(record["api"], decode_value(record["params"]))
        replayed += 1
    if stats is not None:
        stats.replayed_mutations += replayed
    return replayed
