"""Versioned emulator snapshots: the registry, deep-dumped to JSON.

A snapshot captures everything a serving emulator accumulated — every
machine instance's identity, type, parent link and state variables,
plus the deterministic ID counters — so a fresh process can
:meth:`~repro.interpreter.emulator.Emulator.restore` it and continue
exactly where the dead one stopped.  Combined with the write-ahead
mutation log (:mod:`repro.durability.wal`), restore-then-replay
reaches the precise pre-crash state; :func:`registry_diff` is the
equivalence check that proves it.

State values are encoded with a small tagged codec because SM state is
Python data, not JSON: tuples, sets and non-string dict keys all occur
in principle and must round-trip exactly (a tuple that comes back as a
list would change ``in``/equality semantics inside transition bodies).
"""

from __future__ import annotations

import json
from pathlib import Path

from ..interpreter.machine import MachineInstance, Registry
from .atomic import atomic_write
from .journal import DurabilityError

SNAPSHOT_FORMAT_VERSION = 1

_TAG = "$repro"


def encode_value(value: object) -> object:
    """Lower one state value to JSON-safe data, losslessly."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, list):
        return [encode_value(item) for item in value]
    if isinstance(value, tuple):
        return {_TAG: "tuple", "v": [encode_value(item) for item in value]}
    if isinstance(value, set):
        items = [encode_value(item) for item in value]
        # Sets are unordered; sort the encodings so identical sets
        # produce identical snapshots (byte-level diffing depends on it).
        items.sort(key=lambda item: json.dumps(item, sort_keys=True))
        return {_TAG: "set", "v": items}
    if isinstance(value, dict):
        if _TAG in value or not all(isinstance(k, str) for k in value):
            return {
                _TAG: "dict",
                "v": [
                    [encode_value(k), encode_value(v)]
                    for k, v in value.items()
                ],
            }
        return {key: encode_value(item) for key, item in value.items()}
    # A transaction Handle leaking into committed state is stored by
    # identity, matching how the evaluator flattens it on assignment.
    instance_id = getattr(value, "instance_id", None)
    if isinstance(instance_id, str):
        return instance_id
    raise DurabilityError(
        f"cannot snapshot state value of type {type(value).__name__}: "
        f"{value!r}"
    )


def decode_value(value: object) -> object:
    """Inverse of :func:`encode_value`."""
    if isinstance(value, list):
        return [decode_value(item) for item in value]
    if isinstance(value, dict):
        tag = value.get(_TAG)
        if tag == "tuple":
            return tuple(decode_value(item) for item in value["v"])
        if tag == "set":
            return {decode_value(item) for item in value["v"]}
        if tag == "dict":
            return {
                decode_value(k): decode_value(v) for k, v in value["v"]
            }
        return {key: decode_value(item) for key, item in value.items()}
    return value


def _dump_state(counters: dict, instances: dict, placements: dict) -> dict:
    """The shared dump body: counters, encoded instances, placements.

    Instance order matters: the instances dict order *is* creation
    order, and dependency scans iterate it — a restore that reordered
    instances would be observably different.
    """
    dump = {
        "counters": dict(counters),
        "instances": [
            {
                "id": instance.id,
                "sm": instance.type_name,
                "parent_id": instance.parent_id,
                "state": {
                    name: encode_value(value)
                    for name, value in instance.state.items()
                },
            }
            for instance in instances.values()
        ],
    }
    # Region placements ride along only when a regional front door
    # assigned any, so non-regional snapshots stay byte-identical to
    # the pre-netem format.
    if placements:
        dump["placements"] = dict(placements)
    return dump


def registry_dump(registry: Registry) -> dict:
    """One live registry as deterministic plain data."""
    return _dump_state(
        registry._counters, registry.instances,
        getattr(registry, "placements", None) or {},
    )


def version_dump(version) -> dict:
    """One pinned :class:`~repro.interpreter.machine.RegistryVersion`
    as deterministic plain data — same format as :func:`registry_dump`.

    A version is immutable, so this dump needs no locking: the MVCC
    serve path uses it to snapshot a serving emulator while writers
    keep publishing, and the result can never be torn.
    """
    return _dump_state(version.counters, version.instances,
                       version.placements)


def snapshot_registry(registry: Registry, wal_seq: int = 0) -> dict:
    """A versioned, restorable snapshot of one emulator's registry."""
    return {
        "format_version": SNAPSHOT_FORMAT_VERSION,
        "wal_seq": wal_seq,
        **registry_dump(registry),
    }


def snapshot_version(version, wal_seq: int | None = None) -> dict:
    """A restorable snapshot of one *pinned* registry version.

    Byte-identical to what :func:`snapshot_registry` would have
    produced at the moment the version was published; ``wal_seq``
    defaults to the sequence stamped onto the version at publish.
    """
    return {
        "format_version": SNAPSHOT_FORMAT_VERSION,
        "wal_seq": version.wal_seq if wal_seq is None else wal_seq,
        **version_dump(version),
    }


def restore_registry(snapshot: dict, machines: dict) -> Registry:
    """Rebuild a registry from a snapshot against its spec module.

    Specs are not serialized into the snapshot — they live in the saved
    module; the snapshot references them by SM name and a restore into
    a module that lacks one of those SMs is refused.
    """
    version = snapshot.get("format_version")
    if version != SNAPSHOT_FORMAT_VERSION:
        raise DurabilityError(
            f"snapshot format {version!r} is not supported "
            f"(this build reads version {SNAPSHOT_FORMAT_VERSION})"
        )
    registry = Registry()
    registry._counters.update(snapshot.get("counters", {}))
    registry.placements.update(snapshot.get("placements", {}))
    for entry in snapshot.get("instances", []):
        sm_name = entry["sm"]
        spec = machines.get(sm_name)
        if spec is None:
            raise DurabilityError(
                f"snapshot references SM {sm_name!r} which the loaded "
                "module does not define"
            )
        instance = MachineInstance(
            id=entry["id"],
            spec=spec,
            state={
                name: decode_value(value)
                for name, value in entry["state"].items()
            },
            parent_id=entry.get("parent_id", ""),
        )
        registry.instances[instance.id] = instance
    return registry


def registry_diff(expected: dict, actual: dict) -> list[str]:
    """Human-readable divergences between two registry dumps.

    Empty list == byte-equivalent registries; this is the
    replay-equivalence check for snapshot + WAL restore.
    """
    diffs: list[str] = []
    if expected.get("counters") != actual.get("counters"):
        diffs.append(
            f"id counters differ: {expected.get('counters')} != "
            f"{actual.get('counters')}"
        )
    if expected.get("placements", {}) != actual.get("placements", {}):
        diffs.append(
            f"region placements differ: {expected.get('placements', {})} "
            f"!= {actual.get('placements', {})}"
        )
    left = expected.get("instances", [])
    right = actual.get("instances", [])
    left_ids = [entry["id"] for entry in left]
    right_ids = [entry["id"] for entry in right]
    if left_ids != right_ids:
        missing = set(left_ids) - set(right_ids)
        extra = set(right_ids) - set(left_ids)
        if missing:
            diffs.append(f"instances missing after restore: {sorted(missing)}")
        if extra:
            diffs.append(f"unexpected instances after restore: {sorted(extra)}")
        if not missing and not extra:
            diffs.append("instance creation order differs")
        return diffs
    for want, got in zip(left, right):
        for key in ("sm", "parent_id", "state"):
            if want.get(key) != got.get(key):
                diffs.append(
                    f"{want['id']}: {key} differs: "
                    f"{want.get(key)!r} != {got.get(key)!r}"
                )
    return diffs


def write_snapshot(path: str | Path, snapshot: dict) -> Path:
    """Persist a snapshot atomically (crash leaves old or new, whole)."""
    return atomic_write(
        path, json.dumps(snapshot, indent=2, sort_keys=True) + "\n"
    )


def read_snapshot(path: str | Path) -> dict:
    target = Path(path)
    try:
        snapshot = json.loads(target.read_text())
    except FileNotFoundError:
        raise DurabilityError(f"no snapshot at {target}") from None
    except json.JSONDecodeError as error:
        raise DurabilityError(
            f"snapshot {target} is corrupt: {error}"
        ) from None
    if not isinstance(snapshot, dict):
        raise DurabilityError(f"snapshot {target} is not a JSON object")
    return snapshot
