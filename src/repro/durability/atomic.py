"""Atomic, durable file writes: tmp file + ``os.replace`` + fsync.

Every artifact the system persists — saved-emulator manifests and spec
files, the prompt cache, telemetry traces, snapshots — goes through
:func:`atomic_write`, so a crash at any instant leaves either the old
file or the new one, never a torn half of each.  ``os.replace`` is
atomic on POSIX and Windows; the directory fsync makes the rename
itself durable (without it, a power loss can roll back the rename even
though the data blocks hit disk).
"""

from __future__ import annotations

import os
from pathlib import Path


def fsync_dir(directory: str | Path) -> None:
    """Flush a directory entry to stable storage (no-op where unsupported)."""
    try:
        fd = os.open(str(directory), os.O_RDONLY)
    except OSError:
        return  # e.g. Windows directories cannot be opened for fsync
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def atomic_write(
    path: str | Path,
    data: str | bytes,
    encoding: str = "utf-8",
    fsync: bool = True,
) -> Path:
    """Write ``data`` to ``path`` so a crash never leaves a torn file.

    The data lands in a same-directory temporary file first (rename is
    only atomic within one filesystem), is fsync'd, and then replaces
    the target in one step.  ``fsync=False`` skips the durability
    flushes (kept for tests and for artifacts whose loss is
    acceptable); atomicity of the replace is preserved either way.
    """
    target = Path(path)
    payload = data.encode(encoding) if isinstance(data, str) else data
    tmp = target.with_name(f".{target.name}.tmp.{os.getpid()}")
    try:
        with open(tmp, "wb") as handle:
            handle.write(payload)
            handle.flush()
            if fsync:
                os.fsync(handle.fileno())
        os.replace(tmp, target)
    except BaseException:
        tmp.unlink(missing_ok=True)
        raise
    if fsync:
        fsync_dir(target.parent)
    return target
