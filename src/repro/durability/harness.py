"""Crash→resume harness: prove a build survives any kill schedule.

The durability claim is behavioural: *crash the build wherever you
like, as often as you like — resuming from the journal converges on a
saved emulator byte-identical to one built without interruption.*
This module is the loop that tests (and CI) use to assert exactly
that: arm a kill schedule, run the build, catch the simulated death,
resume, repeat until a run completes; then compare artifact trees
byte-for-byte against an undisturbed control build.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from pathlib import Path

from ..resilience.chaos import (
    SimulatedCrash,
    clear_kill_switch,
    install_kill_switch,
)
from .journal import DurabilityStats


@dataclass
class CrashRun:
    """What one crash→resume loop went through before converging."""

    build: object
    #: (site, hit) of every injected death, in order.
    crashes: list[tuple[str, int]] = field(default_factory=list)
    attempts: int = 0
    stats: DurabilityStats = field(default_factory=DurabilityStats)


def crash_resume_build(build_fn, schedules,
                       max_attempts: int = 50) -> CrashRun:
    """Run ``build_fn`` under successive kill schedules until it survives.

    ``build_fn(resume)`` performs one build attempt (``resume`` is
    False on the first attempt, True afterwards) and returns the build.
    ``schedules`` is a sequence of ``{site: fatal_hit}`` dicts, one
    armed per attempt in order; once exhausted, attempts run with no
    injection, so the loop always converges — a schedule can only kill
    a process a finite number of times, like real crashes.
    """
    run = CrashRun(build=None, stats=DurabilityStats())
    queue = list(schedules)
    while True:
        run.attempts += 1
        if run.attempts > max_attempts:
            raise RuntimeError(
                f"crash/resume did not converge in {max_attempts} attempts"
            )
        schedule = queue.pop(0) if queue else None
        if schedule:
            install_kill_switch(schedule, stats=run.stats)
        try:
            run.build = build_fn(resume=run.attempts > 1)
            return run
        except SimulatedCrash as crash:
            run.crashes.append((crash.site, crash.hit))
        finally:
            clear_kill_switch()


def file_digest(path: str | Path) -> str:
    return hashlib.sha256(Path(path).read_bytes()).hexdigest()


def dir_digest(directory: str | Path,
               ignore: tuple[str, ...] = ()) -> dict[str, str]:
    """Relative path -> content hash for every file under a directory.

    Two builds are byte-identical iff their digests are equal; the
    journal itself is passed via ``ignore`` when comparing a resumed
    build against an unjournaled control.
    """
    root = Path(directory)
    digests: dict[str, str] = {}
    for path in sorted(root.rglob("*")):
        if not path.is_file():
            continue
        relative = path.relative_to(root).as_posix()
        if any(relative.startswith(prefix) for prefix in ignore):
            continue
        digests[relative] = file_digest(path)
    return digests
