"""Crash-safe durability: atomic writes, the build journal, emulator
snapshots and the write-ahead mutation log.

Every persistence path in the system routes through here so that a
process death at any instant — injected by the kill-point chaos layer
or delivered by the real world — loses at most the unit of work that
was in flight, never a completed one and never the integrity of an
artifact on disk.
"""

from .atomic import atomic_write, fsync_dir
from .harness import CrashRun, crash_resume_build, dir_digest, file_digest
from .journal import (
    BuildJournal,
    DurabilityError,
    DurabilityStats,
    JOURNAL_FORMAT_VERSION,
    JOURNAL_NAME,
    JournalWriter,
    as_journal,
    scan_records,
)
from .snapshot import (
    SNAPSHOT_FORMAT_VERSION,
    read_snapshot,
    registry_diff,
    registry_dump,
    restore_registry,
    snapshot_registry,
    write_snapshot,
)
from .wal import WAL_NAME, MutationLog, replay_mutations

__all__ = [
    "atomic_write",
    "fsync_dir",
    "BuildJournal",
    "DurabilityError",
    "DurabilityStats",
    "JOURNAL_FORMAT_VERSION",
    "JOURNAL_NAME",
    "JournalWriter",
    "as_journal",
    "scan_records",
    "SNAPSHOT_FORMAT_VERSION",
    "read_snapshot",
    "registry_diff",
    "registry_dump",
    "restore_registry",
    "snapshot_registry",
    "write_snapshot",
    "WAL_NAME",
    "MutationLog",
    "replay_mutations",
    "CrashRun",
    "crash_resume_build",
    "dir_digest",
    "file_digest",
]
