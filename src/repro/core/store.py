"""Persisting learned emulators: the spec *is* the artifact.

Because the learned emulator is an executable specification (text in
the Fig. 1 grammar) plus a little metadata, a build can be saved to a
directory and reloaded without re-running extraction or alignment —
the "compile once, test everywhere" deployment story for a learned
emulator.

Layout::

    <dir>/
      manifest.json        service, provider, not-found codes, versions
      specs/<sm>.sm        one spec file per state machine
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

from ..durability.atomic import atomic_write
from ..interpreter.emulator import Emulator
from ..spec import ast
from ..spec.errors import SpecSyntaxError
from ..spec.parser import parse_sm
from ..spec.serializer import serialize_sm
from ..spec.validator import validate_module

MANIFEST_NAME = "manifest.json"
SPEC_SUFFIX = ".sm"
FORMAT_VERSION = 1


class StoreError(Exception):
    """The directory does not contain a valid saved emulator."""


@dataclass
class SavedEmulator:
    """A reloaded emulator bundle."""

    module: ast.SpecModule
    notfound_codes: dict[str, str]
    manifest: dict

    def make_backend(self, mvcc: bool = True) -> Emulator:
        return Emulator(self.module, notfound_codes=self.notfound_codes,
                        mvcc=mvcc)


def save_module(
    module: ast.SpecModule,
    notfound_codes: dict[str, str],
    directory: str | Path,
    extra_manifest: dict | None = None,
) -> Path:
    """Write a spec module (and metadata) to ``directory``."""
    root = Path(directory)
    specs_dir = root / "specs"
    specs_dir.mkdir(parents=True, exist_ok=True)
    order = []
    # Every file lands via tmp-file + fsync + rename: a crash mid-save
    # leaves either the previous artifact or the new one, never a
    # half-written spec that would fail to parse on reload.
    for name, spec in module.machines.items():
        atomic_write(
            specs_dir / f"{name}{SPEC_SUFFIX}", serialize_sm(spec) + "\n"
        )
        order.append(name)
    manifest = {
        "format_version": FORMAT_VERSION,
        "service": module.service,
        "provider": module.provider,
        "machines": order,
        "notfound_codes": dict(notfound_codes),
    }
    manifest.update(extra_manifest or {})
    atomic_write(root / MANIFEST_NAME, json.dumps(manifest, indent=2) + "\n")
    return root


def _validate_manifest(manifest: dict) -> None:
    """Schema-check a manifest before trusting any field in it.

    A manifest that parses as JSON can still be structurally wrong
    (hand-edited, produced by a future tool, damaged storage); failing
    here with a precise message beats an ``AttributeError`` three
    layers down.
    """
    machines = manifest.get("machines", [])
    if not isinstance(machines, list) or not all(
        isinstance(name, str) for name in machines
    ):
        raise StoreError("manifest 'machines' must be a list of SM names")
    notfound = manifest.get("notfound_codes", {})
    if not isinstance(notfound, dict) or not all(
        isinstance(key, str) and isinstance(value, str)
        for key, value in notfound.items()
    ):
        raise StoreError(
            "manifest 'notfound_codes' must map resource names to codes"
        )
    for key in ("service", "provider"):
        if key in manifest and not isinstance(manifest[key], str):
            raise StoreError(f"manifest {key!r} must be a string")


def load_module(directory: str | Path) -> SavedEmulator:
    """Reload a saved emulator; validates the specs on the way in."""
    root = Path(directory)
    manifest_path = root / MANIFEST_NAME
    if not manifest_path.exists():
        raise StoreError(f"{root} has no {MANIFEST_NAME}")
    try:
        manifest = json.loads(manifest_path.read_text())
    except json.JSONDecodeError as error:
        raise StoreError(f"unreadable manifest: {error}") from error
    if manifest.get("format_version") != FORMAT_VERSION:
        raise StoreError(
            f"unsupported format version {manifest.get('format_version')!r}"
        )
    _validate_manifest(manifest)
    module = ast.SpecModule(
        service=manifest.get("service", ""),
        provider=manifest.get("provider", "aws"),
    )
    for name in manifest.get("machines", []):
        spec_path = root / "specs" / f"{name}{SPEC_SUFFIX}"
        if not spec_path.exists():
            raise StoreError(f"missing spec file for SM {name!r}")
        try:
            module.add(parse_sm(spec_path.read_text()))
        except SpecSyntaxError as error:
            raise StoreError(
                f"corrupt spec file for SM {name!r}: {error}"
            ) from error
    validate_module(module)
    return SavedEmulator(
        module=module,
        notfound_codes=dict(manifest.get("notfound_codes", {})),
        manifest=manifest,
    )


def save_build(build, directory: str | Path) -> Path:
    """Persist a :class:`~repro.core.builder.LearnedEmulatorBuild`."""
    extra = {
        "aligned": build.alignment is not None
        and build.alignment.converged,
        "llm_requests": build.llm.usage.requests,
    }
    return save_module(
        build.module,
        build.extraction.notfound_codes,
        directory,
        extra_manifest=extra,
    )
