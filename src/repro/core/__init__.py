"""The public API of the learned-cloud-emulator reproduction."""

from .builder import build_learned_emulator, LearnedEmulatorBuild
from .store import (
    load_module,
    save_build,
    save_module,
    SavedEmulator,
    StoreError,
)
from .evaluation import (
    EVALUATION_SERVICES,
    EvaluationSetup,
    run_fig3_evaluation,
    run_multicloud_evaluation,
    VARIANTS,
    wrangled_docs,
)

__all__ = [
    "build_learned_emulator",
    "EVALUATION_SERVICES",
    "EvaluationSetup",
    "LearnedEmulatorBuild",
    "load_module",
    "run_fig3_evaluation",
    "save_build",
    "save_module",
    "SavedEmulator",
    "StoreError",
    "run_multicloud_evaluation",
    "VARIANTS",
    "wrangled_docs",
]
