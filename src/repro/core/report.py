"""One-shot reproduction report: every table and figure as Markdown.

``generate_report()`` runs the complete evaluation (Table 1, Fig. 3,
Fig. 4, versus-manual, multi-cloud, alignment internals) and renders a
self-contained Markdown document — the machine-generated counterpart
of EXPERIMENTS.md.  Exposed on the CLI as ``python -m repro report``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..analysis import (
    catalog_coverage,
    ComplexityComparison,
    moto_coverage,
    table1_rows,
)
from .builder import build_learned_emulator
from .evaluation import run_fig3_evaluation, run_multicloud_evaluation


@dataclass
class ReportData:
    """The raw measurements a report is rendered from."""

    seed: int
    table1: list = field(default_factory=list)
    fig3: dict = field(default_factory=dict)
    fig4_summary: dict = field(default_factory=dict)
    versus_manual: list = field(default_factory=list)
    multicloud: dict = field(default_factory=dict)
    alignment: dict = field(default_factory=dict)
    #: variant -> FuzzReport (the §4.3 random-fuzzing baseline).
    fuzzing: dict = field(default_factory=dict)


def collect_report_data(seed: int = 7,
                        include_multicloud: bool = True) -> ReportData:
    """Run every experiment and collect its numbers."""
    data = ReportData(seed=seed)
    data.table1 = table1_rows()
    data.fig3 = run_fig3_evaluation(seed=seed)

    comparison = ComplexityComparison()
    builds = {}
    for service in ("ec2", "network_firewall", "dynamodb"):
        build = build_learned_emulator(service, mode="constrained",
                                       seed=seed)
        builds[service] = build
        comparison.add(service, build.module)
        data.alignment[service] = {
            "rounds": len(build.alignment.rounds),
            "repairs": build.alignment.total_repairs,
            "doc_gaps": build.alignment.doc_gaps_learned,
            "converged": build.alignment.converged,
        }
        data.versus_manual.append((
            service,
            moto_coverage(service),
            catalog_coverage(service, build.make_backend()),
        ))
    data.fig4_summary = comparison.summary()

    # §4.3 baseline: random fuzzing against the aligned and unaligned
    # EC2 emulators (modest budget; the point is the efficiency ratio,
    # not exhaustiveness).
    from ..alignment import RandomFuzzer
    from ..cloud import make_cloud

    unaligned = build_learned_emulator("ec2", mode="constrained",
                                       seed=seed, align=False)
    fuzz_budget = 600
    data.fuzzing["unaligned"] = RandomFuzzer(
        unaligned.module, seed=seed
    ).run(make_cloud("ec2"), unaligned.make_backend(), budget=fuzz_budget)
    data.fuzzing["aligned"] = RandomFuzzer(
        builds["ec2"].module, seed=seed
    ).run(make_cloud("ec2"), builds["ec2"].make_backend(),
          budget=fuzz_budget)

    if include_multicloud:
        for service in ("azure_network", "gcp_compute"):
            data.multicloud[service] = run_multicloud_evaluation(
                seed=seed, service=service
            )
    return data


def render_report(data: ReportData) -> str:
    """Render collected measurements as Markdown."""
    lines: list[str] = []
    emit = lines.append
    emit("# Reproduction report — A Case for Learned Cloud Emulators")
    emit("")
    emit(f"Deterministic run at seed {data.seed}.")
    emit("")

    emit("## Table 1 — handcrafted emulator coverage")
    emit("")
    emit("| Service | APIs | Emulated | Coverage |")
    emit("|---|---:|---:|---:|")
    for row in data.table1:
        emit(f"| {row.service} | {row.total} | {row.emulated} | "
             f"{row.percent}% |")
    emit("")

    emit("## Fig. 3 — trace alignment per scenario")
    emit("")
    scenarios = ("provisioning", "state_updates", "edge_cases")
    emit("| Variant | " + " | ".join(scenarios) + " | total |")
    emit("|---|" + "---|" * (len(scenarios) + 1))
    for variant, accuracy in data.fig3.items():
        cells = []
        for scenario in scenarios:
            aligned, total = accuracy.per_scenario[scenario]
            cells.append(f"{aligned}/{total}")
        aligned, total = accuracy.total
        emit(f"| {variant} | " + " | ".join(cells)
             + f" | **{aligned}/{total}** |")
    emit("")

    emit("## Fig. 4 — SM complexity per service")
    emit("")
    emit("| Service | SMs | median | mean | max |")
    emit("|---|---:|---:|---:|---:|")
    for service, stats in data.fig4_summary.items():
        emit(f"| {service} | {stats['machines']} | {stats['median']} | "
             f"{stats['mean']:.1f} | {stats['max']} |")
    emit("")

    emit("## §5 versus manual engineering")
    emit("")
    emit("| Service | handcrafted | learned |")
    emit("|---|---:|---:|")
    for service, moto_row, learned_row in data.versus_manual:
        emit(f"| {service} | {moto_row.emulated}/{moto_row.total} | "
             f"{learned_row.emulated}/{learned_row.total} |")
    emit("")

    if data.multicloud:
        emit("## §5 multi-cloud replication")
        emit("")
        emit("| Provider catalog | variant | aligned |")
        emit("|---|---|---:|")
        for service, results in data.multicloud.items():
            for variant, accuracy in results.items():
                aligned, total = accuracy.total
                emit(f"| {service} | {variant} | {aligned}/{total} |")
        emit("")

    if data.fuzzing:
        emit("## §4.3 random-fuzzing baseline efficiency")
        emit("")
        emit("| EC2 emulator | calls | distinct divergences | "
             "duplicates folded | calls/divergence |")
        emit("|---|---:|---:|---:|---:|")
        for variant, fuzz in data.fuzzing.items():
            emit(f"| {variant} | {fuzz.calls} | "
                 f"{fuzz.divergence_count} | "
                 f"{fuzz.duplicate_divergences} | "
                 f"{fuzz.calls_per_divergence:.1f} |")
        emit("")

    emit("## Alignment internals (§4.3)")
    emit("")
    emit("| Service | rounds | repairs | doc gaps learned | converged |")
    emit("|---|---:|---:|---:|---|")
    for service, stats in data.alignment.items():
        emit(f"| {service} | {stats['rounds']} | {stats['repairs']} | "
             f"{stats['doc_gaps']} | {stats['converged']} |")
    emit("")
    return "\n".join(lines)


def generate_report(seed: int = 7, include_multicloud: bool = True) -> str:
    """Collect and render the full reproduction report."""
    return render_report(
        collect_report_data(seed=seed,
                            include_multicloud=include_multicloud)
    )
