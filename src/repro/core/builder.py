"""Top-level builder: documentation in, aligned learned emulator out.

This is the public entry point a downstream user calls (Fig. 2 end to
end): wrangle the provider's documentation, extract SM specs with the
(simulated) LLM, link and check them, then run the automated alignment
loop against the cloud.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..alignment.loop import align_module, AlignmentReport
from ..cloud import ReferenceCloud
from ..docs import build_catalog, render_docs, wrangle
from ..docs.model import ServiceDoc
from ..durability.journal import as_journal, DurabilityStats
from ..extraction.pipeline import ExtractionOutcome, run_extraction
from ..interpreter.emulator import Emulator
from ..llm.client import make_llm, SimulatedLLM
from ..resilience.chaos import ChaosProfile, resolve_profile
from ..resilience.policy import RetryPolicy
from ..resilience.stats import ResilienceStats
from ..telemetry import ensure_telemetry


@dataclass
class LearnedEmulatorBuild:
    """Everything the build produced, plus a backend factory."""

    service: str
    extraction: ExtractionOutcome
    alignment: AlignmentReport | None
    llm: SimulatedLLM
    #: Whether backends made from this build compile by default.
    compile: bool = True
    #: Journal accounting for journaled builds (all-zero otherwise).
    durability: DurabilityStats = field(default_factory=DurabilityStats)

    @property
    def module(self):
        return self.extraction.module

    @property
    def api_count(self) -> int:
        return len(self.module.api_names())

    @property
    def resilience(self) -> ResilienceStats:
        """Combined resilience accounting across both pipeline phases."""
        stats = ResilienceStats()
        stats.merge(self.extraction.resilience)
        if self.alignment is not None:
            stats.merge(self.alignment.resilience)
        return stats

    def make_backend(self, telemetry=None,
                     compile: bool | None = None,
                     mvcc: bool = True) -> Emulator:
        """A fresh emulator instance over the learned specification.

        ``telemetry`` (optional) gives the served emulator a run sink
        of its own: per-API-call spans with error codes.  ``compile``
        selects the compiled fast path versus the tree-walking
        evaluator (``None``: the build's own default).  ``mvcc=False``
        opts the emulator out of lock-free versioned reads, keeping
        the serve layer on its RW-lock fallback.
        """
        use_compile = self.compile if compile is None else compile
        return Emulator(self.module,
                        notfound_codes=self.extraction.notfound_codes,
                        telemetry=telemetry, compile=use_compile,
                        mvcc=mvcc)


def build_learned_emulator(
    service: str = "ec2",
    mode: str = "constrained",
    seed: int = 7,
    align: bool = True,
    checks_enabled: bool = True,
    alignment_rounds: int = 4,
    service_doc: ServiceDoc | None = None,
    chaos: ChaosProfile | str | None = None,
    resilience_policy: RetryPolicy | None = None,
    telemetry=None,
    parallel: int = 1,
    compile: bool = True,
    llm_cache=None,
    llm_latency: float = 0.0,
    journal=None,
    resume: bool = False,
) -> LearnedEmulatorBuild:
    """Run the full learned-emulator workflow for one service.

    ``mode`` selects the generation configuration (``constrained``,
    ``reprompt``, ``direct``, ``perfect``); ``align=False`` stops after
    extraction + checks (the "without alignment" variant of §5).

    ``chaos`` selects a fault-injection profile for both phases (a
    profile, a name, or ``None`` to read ``REPRO_CHAOS_PROFILE`` /
    default off); each phase wraps its remote dependency independently
    and reports what its resilience layer absorbed.

    ``telemetry`` (a :class:`~repro.telemetry.Telemetry`, or ``None``
    for the no-op sink) records the whole build as a span tree —
    extraction pass, per-resource generation, LLM requests, alignment
    rounds, differential traces, emulated API calls — plus token and
    fault metrics.  The disabled path is byte-identical to a build
    without instrumentation.

    ``parallel`` fans out both build phases: extraction waves run on a
    thread pool and each alignment round's differential pass is
    sharded.  ``llm_cache`` (a :class:`~repro.llm.PromptCache` or a
    path) replays repeated prompts; ``compile=False`` falls back to the
    tree-walking evaluator in every emulator the build runs.  The
    learned module — specs, quarantine set, repairs, convergence — is
    identical at any ``parallel`` width; under chaos, only the
    *accounting* of injected weather in the sharded diff pass may vary
    (each shard carries its own fault lane).

    ``llm_latency`` (seconds per generation call) makes the simulated
    LLM cost real wall-clock time, the way a remote model API does —
    see :attr:`~repro.llm.client.SimulatedLLM.latency`.

    ``journal`` (a directory path or a
    :class:`~repro.durability.BuildJournal`) makes the build crash
    safe: every completed extraction resource, targeted correction,
    and alignment round is recorded in an append-only fsync'd journal
    before the next one starts.  ``resume=True`` replays a prior
    journal instead of starting fresh — finished work is reinstated
    without the LLM and the build continues from the first incomplete
    unit, producing a byte-identical result to an uninterrupted run.
    The journal header fingerprints the build configuration; resuming
    with different parameters raises
    :class:`~repro.durability.DurabilityError`.
    """
    profile = resolve_profile(chaos)
    tele = ensure_telemetry(telemetry)
    llm = make_llm(mode, seed=seed, latency=llm_latency)
    llm.telemetry = telemetry
    jrnl = as_journal(journal, telemetry=telemetry)
    if jrnl is not None:
        fingerprint = {
            "service": service, "mode": mode, "seed": seed,
            "chaos": profile.name, "align": align,
            "checks_enabled": checks_enabled,
            "alignment_rounds": alignment_rounds,
        }
        if resume:
            jrnl.resume(fingerprint)
        else:
            jrnl.start(fingerprint)
    try:
        with tele.span(
            "build", kind="build", service=service, mode=mode, seed=seed,
            chaos=profile.name,
        ) as span:
            if service_doc is None:
                with tele.span("docs.wrangle", kind="docs", service=service):
                    catalog = build_catalog(service)
                    service_doc = wrangle(
                        render_docs(catalog), provider=catalog.provider,
                        service=service,
                    )
            extraction = run_extraction(
                service=service,
                seed=seed,
                llm=llm,
                service_doc=service_doc,
                checks_enabled=checks_enabled,
                chaos=profile,
                resilience_policy=resilience_policy,
                telemetry=telemetry,
                parallel=parallel,
                llm_cache=llm_cache,
                journal=jrnl,
            )
            alignment: AlignmentReport | None = None
            if align:
                # Build the ground-truth catalog once; the factory only
                # instantiates fresh state over it (sharded diff passes
                # call it once per shard per round).
                cloud_catalog = build_catalog(service)
                alignment = align_module(
                    extraction.module,
                    extraction.notfound_codes,
                    service_doc,
                    llm,
                    cloud_factory=lambda: ReferenceCloud(cloud_catalog),
                    max_rounds=alignment_rounds,
                    chaos=profile,
                    resilience_policy=resilience_policy,
                    telemetry=telemetry,
                    parallel=parallel,
                    compile=compile,
                    journal=jrnl,
                )
                span.set("converged", alignment.converged)
            span.set("machines", len(extraction.module.machines))
    finally:
        if jrnl is not None:
            jrnl.close()
    return LearnedEmulatorBuild(
        service=service, extraction=extraction, alignment=alignment,
        llm=llm, compile=compile,
        durability=jrnl.stats if jrnl is not None else DurabilityStats(),
    )
