"""The paper's evaluation harness (§5): variant construction + scoring.

Builds the three emulator variants Fig. 3 compares — the learned
emulator with alignment, the learned emulator without alignment, and
the direct-to-code baseline — across the services the traces touch,
and measures response alignment per scenario.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..alignment.accuracy import measure_accuracy, ScenarioAccuracy
from ..baselines.d2c import build_d2c_emulator
from ..baselines.moto_like import build_moto_like
from ..cloud import make_cloud
from ..docs import build_catalog, render_docs, wrangle
from ..scenarios import azure_traces, evaluation_traces, gcp_traces
from ..scenarios.model import Trace
from .builder import build_learned_emulator

#: The services the Fig. 3 traces exercise.
EVALUATION_SERVICES = ("ec2", "network_firewall", "dynamodb")

VARIANTS = ("learned_aligned", "learned_no_align", "d2c")


def wrangled_docs(service: str):
    """Documentation corpus for one service, via render + wrangle."""
    catalog = build_catalog(service)
    return wrangle(render_docs(catalog), provider=catalog.provider,
                   service=service)


@dataclass
class EvaluationSetup:
    """All backends + clouds needed to score the Fig. 3 traces."""

    seed: int = 7
    services: tuple[str, ...] = EVALUATION_SERVICES
    clouds: dict = field(default_factory=dict)
    backends: dict = field(default_factory=dict)
    builds: dict = field(default_factory=dict)

    def prepare(self, variants: tuple[str, ...] = VARIANTS) -> None:
        for service in self.services:
            self.clouds[service] = make_cloud(service)
        for variant in variants:
            per_service = {}
            for service in self.services:
                per_service[service] = self._build_backend(variant, service)
            self.backends[variant] = per_service

    def _build_backend(self, variant: str, service: str):
        if variant == "d2c":
            return build_d2c_emulator(wrangled_docs(service), seed=self.seed)
        if variant == "moto":
            return build_moto_like(service)
        align = variant == "learned_aligned"
        build = build_learned_emulator(
            service, mode="constrained", seed=self.seed, align=align
        )
        self.builds[(variant, service)] = build
        return build.make_backend()

    def score(
        self, variant: str, traces: list[Trace] | None = None
    ) -> ScenarioAccuracy:
        return measure_accuracy(
            variant,
            self.backends[variant],
            self.clouds,
            traces if traces is not None else evaluation_traces(),
        )


def run_fig3_evaluation(seed: int = 7) -> dict[str, ScenarioAccuracy]:
    """Reproduce Fig. 3: accuracy of each variant across scenarios."""
    setup = EvaluationSetup(seed=seed)
    setup.prepare()
    return {variant: setup.score(variant) for variant in VARIANTS}


def run_multicloud_evaluation(
    seed: int = 7, service: str = "azure_network"
) -> dict[str, ScenarioAccuracy]:
    """Reproduce §5 multi-cloud: the same workflow on another provider.

    ``service`` selects the provider catalog: ``azure_network`` (the
    paper's replication) or ``gcp_compute`` (our extension along the
    same axis).
    """
    traces = azure_traces() if service == "azure_network" else gcp_traces()
    clouds = {service: make_cloud(service)}
    results: dict[str, ScenarioAccuracy] = {}
    for variant in ("learned_aligned", "learned_no_align", "d2c"):
        if variant == "d2c":
            backend = build_d2c_emulator(wrangled_docs(service), seed=seed)
        else:
            build = build_learned_emulator(
                service, mode="constrained", seed=seed,
                align=variant == "learned_aligned",
            )
            backend = build.make_backend()
        results[variant] = measure_accuracy(
            variant, {service: backend}, clouds, traces
        )
    return results
