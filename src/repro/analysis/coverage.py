"""API coverage accounting (Table 1, §5 "versus manual engineering")."""

from __future__ import annotations

from dataclasses import dataclass

from ..docs.inventory import inventory, moto_emulated


@dataclass(frozen=True)
class CoverageRow:
    """One row of a coverage table."""

    service: str
    total: int
    emulated: int

    @property
    def fraction(self) -> float:
        return self.emulated / self.total if self.total else 0.0

    @property
    def percent(self) -> int:
        return round(100 * self.fraction)


def backend_coverage(service: str, backend) -> CoverageRow:
    """How many of a service's inventoried APIs a backend supports."""
    names = inventory(service)
    supported = sum(1 for name in names if backend.supports(name))
    return CoverageRow(service=service, total=len(names), emulated=supported)


def moto_coverage(service: str) -> CoverageRow:
    """The handcrafted baseline's coverage (Table 1, by construction)."""
    return CoverageRow(
        service=service,
        total=len(inventory(service)),
        emulated=len(moto_emulated(service)),
    )


def catalog_coverage(service: str, backend) -> CoverageRow:
    """Coverage over the *documented* (modeled-resource) API set.

    For EC2, the inventory spans resources outside the 28 modeled SMs;
    the learned emulator's §5 claim ("captures all EC2 API calls") is
    reported against the APIs of the modeled resources — see
    EXPERIMENTS.md for the interpretation.
    """
    from ..docs import build_catalog

    names = build_catalog(service).api_names()
    supported = sum(1 for name in names if backend.supports(name))
    return CoverageRow(service=service, total=len(names),
                       emulated=supported)


def table1_rows() -> list[CoverageRow]:
    """All four Table 1 rows plus the overall line."""
    services = ("ec2", "dynamodb", "network_firewall", "eks")
    rows = [moto_coverage(service) for service in services]
    rows.append(
        CoverageRow(
            service="overall",
            total=sum(row.total for row in rows),
            emulated=sum(row.emulated for row in rows),
        )
    )
    return rows
