"""Analyses the learned formal model enables (§4.4): complexity
quantification, coverage accounting, anti-pattern detection, the cloud
gym, and multi-cloud comparison.
"""

from .agents import (
    DecoderGuidedAgent,
    EpisodeResult,
    forgetful_instance_plan,
    PlanStep,
    public_subnet_plan,
    ScriptedAgent,
)
from .antipatterns import (
    AmbiguityTracker,
    analyze_module,
    AntiPattern,
    long_modify_chains,
    missing_destroy,
    wide_transitions,
)
from .complexity import (
    complexity_cdf,
    ComplexityComparison,
    module_complexities,
    SMComplexity,
)
from .coverage import (
    backend_coverage,
    catalog_coverage,
    CoverageRow,
    moto_coverage,
    table1_rows,
)
from .gym import (
    CloudGym,
    GymTask,
    public_subnet_task,
    running_instance_task,
    StepOutcome,
)
from .multicloud import (
    ApiPairing,
    AWS_AZURE_EQUIVALENCES,
    AWS_GCP_EQUIVALENCES,
    check_profile,
    compare_aws_azure,
    compare_aws_gcp,
    compare_resources,
    ServiceComparison,
)

__all__ = [
    "AmbiguityTracker",
    "DecoderGuidedAgent",
    "EpisodeResult",
    "forgetful_instance_plan",
    "PlanStep",
    "public_subnet_plan",
    "ScriptedAgent",
    "analyze_module",
    "AntiPattern",
    "ApiPairing",
    "AWS_AZURE_EQUIVALENCES",
    "AWS_GCP_EQUIVALENCES",
    "backend_coverage",
    "compare_aws_gcp",
    "catalog_coverage",
    "check_profile",
    "CloudGym",
    "compare_aws_azure",
    "compare_resources",
    "complexity_cdf",
    "ComplexityComparison",
    "CoverageRow",
    "GymTask",
    "long_modify_chains",
    "missing_destroy",
    "module_complexities",
    "moto_coverage",
    "public_subnet_task",
    "running_instance_task",
    "ServiceComparison",
    "SMComplexity",
    "StepOutcome",
    "table1_rows",
    "wide_transitions",
]
