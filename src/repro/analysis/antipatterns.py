"""Documentation-engineering analysis: API anti-patterns (§4.4).

By analyzing the extracted specifications we can detect design smells:
a modify() requiring a long chain of cross-resource updates, APIs whose
documentation repeatedly leads generation astray (ambiguity), and
asymmetric lifecycles (create without destroy).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..spec import ast


@dataclass(frozen=True)
class AntiPattern:
    """One detected design smell."""

    kind: str
    sm: str
    api: str
    detail: str


def long_modify_chains(
    module: ast.SpecModule, max_calls: int = 1
) -> list[AntiPattern]:
    """modify() APIs that fan out into multiple cross-SM updates."""
    findings = []
    for sm_name, spec in module.machines.items():
        for transition in spec.transitions.values():
            if transition.category != "modify":
                continue
            if transition.name.startswith("_"):
                continue
            calls = sum(
                1 for stmt in transition.statements()
                if isinstance(stmt, ast.Call)
            )
            if calls > max_calls:
                findings.append(
                    AntiPattern(
                        "long_modify_chain", sm_name, transition.name,
                        f"modify() updates {calls} other state machines",
                    )
                )
    return findings


def missing_destroy(module: ast.SpecModule) -> list[AntiPattern]:
    """Resources that can be created but never destroyed."""
    findings = []
    for sm_name, spec in module.machines.items():
        categories = {
            t.category for t in spec.transitions.values()
            if not t.name.startswith("_")
        }
        if "create" in categories and "destroy" not in categories:
            findings.append(
                AntiPattern(
                    "missing_destroy", sm_name, "",
                    "resource has create APIs but no destroy API",
                )
            )
    return findings


def wide_transitions(
    module: ast.SpecModule, max_params: int = 6
) -> list[AntiPattern]:
    """APIs with very wide signatures — hard to document and to use."""
    findings = []
    for sm_name, spec in module.machines.items():
        for transition in spec.transitions.values():
            if transition.name.startswith("_"):
                continue
            if len(transition.params) > max_params:
                findings.append(
                    AntiPattern(
                        "wide_signature", sm_name, transition.name,
                        f"{len(transition.params)} request parameters",
                    )
                )
    return findings


@dataclass
class AmbiguityTracker:
    """Flags documentation that repeatedly leads generation astray.

    §4.4: "documentation that consistently leads the AI to generate
    incorrect logic may be flagged as ambiguous and in need of
    refinement".  Fed by the extraction pipeline's correction log and
    the alignment loop's spec-error diagnoses.
    """

    incidents: dict[tuple[str, str], int] = field(default_factory=dict)

    def record(self, sm: str, api: str) -> None:
        key = (sm, api)
        self.incidents[key] = self.incidents.get(key, 0) + 1

    def flagged(self, threshold: int = 2) -> list[AntiPattern]:
        return [
            AntiPattern(
                "ambiguous_documentation", sm, api,
                f"generation required {count} corrections",
            )
            for (sm, api), count in sorted(self.incidents.items())
            if count >= threshold
        ]


def analyze_module(module: ast.SpecModule) -> list[AntiPattern]:
    """All static anti-pattern analyses over one specification."""
    findings: list[AntiPattern] = []
    findings.extend(long_modify_chains(module))
    findings.extend(missing_destroy(module))
    findings.extend(wide_transitions(module))
    return findings
