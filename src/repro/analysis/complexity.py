"""Quantifying cloud complexity from extracted specifications (§4.4).

The extracted specification is a graph of interacting state machines;
counting state variables and transitions per SM gives an objective
complexity measure of cloud services (Fig. 4 plots its CDF per
service), and graph metrics (nodes, edge density) compare services —
e.g. AWS Lambda vs Azure Functions in the paper's example.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..spec import ast


@dataclass(frozen=True)
class SMComplexity:
    """Complexity of one state machine."""

    sm: str
    states: int
    transitions: int

    @property
    def total(self) -> int:
        """The paper's metric: #state variables + #transitions."""
        return self.states + self.transitions


def module_complexities(module: ast.SpecModule) -> list[SMComplexity]:
    """Per-SM complexity, public transitions only (helpers are an
    artifact of linking, not of the documented service)."""
    result = []
    for name, spec in module.machines.items():
        public = [
            t for t in spec.transitions.values()
            if not t.name.startswith("_")
        ]
        result.append(
            SMComplexity(sm=name, states=len(spec.states),
                         transitions=len(public))
        )
    return sorted(result, key=lambda c: c.total)


def complexity_cdf(module: ast.SpecModule) -> list[tuple[int, float]]:
    """The (complexity, cumulative fraction) series Fig. 4 plots."""
    complexities = sorted(c.total for c in module_complexities(module))
    count = len(complexities)
    if count == 0:
        return []
    series: list[tuple[int, float]] = []
    for index, value in enumerate(complexities, start=1):
        series.append((value, index / count))
    # Collapse duplicate x-values, keeping the highest cumulative y.
    collapsed: dict[int, float] = {}
    for value, fraction in series:
        collapsed[value] = fraction
    return sorted(collapsed.items())


@dataclass
class ComplexityComparison:
    """Cross-service complexity comparison (§4.4's analysis)."""

    per_service: dict[str, list[SMComplexity]] = field(default_factory=dict)

    def add(self, service: str, module: ast.SpecModule) -> None:
        self.per_service[service] = module_complexities(module)

    def summary(self) -> dict[str, dict]:
        table: dict[str, dict] = {}
        for service, complexities in self.per_service.items():
            totals = [c.total for c in complexities]
            table[service] = {
                "machines": len(totals),
                "min": min(totals) if totals else 0,
                "max": max(totals) if totals else 0,
                "mean": sum(totals) / len(totals) if totals else 0.0,
                "median": sorted(totals)[len(totals) // 2] if totals else 0,
            }
        return table

    def stochastic_dominance(self, left: str, right: str) -> bool:
        """True when ``left``'s complexity CDF lies right of ``right``'s.

        "The SMs in the EC2 service are more complex than others": at
        every cumulative fraction, the left service's complexity
        quantile is at least the right's.
        """
        left_totals = sorted(c.total for c in self.per_service[left])
        right_totals = sorted(c.total for c in self.per_service[right])
        if not left_totals or not right_totals:
            return False
        for q in range(1, 10):
            fraction = q / 10
            left_q = left_totals[
                min(len(left_totals) - 1,
                    int(fraction * len(left_totals)))
            ]
            right_q = right_totals[
                min(len(right_totals) - 1,
                    int(fraction * len(right_totals)))
            ]
            if left_q < right_q:
                return False
        return True
