"""Cloud gym: a no-cost, zero-risk environment for cloud agents (§4.4).

The emulation framework doubles as a playground for training AI agents
that do DevOps work.  The gym wraps a learned emulator in the familiar
reset/step/observe loop: actions are cloud API invocations, the
observation is the live resource inventory, and tasks score goal
predicates over it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from ..interpreter.emulator import Emulator
from ..interpreter.errors import ApiResponse


@dataclass(frozen=True)
class GymTask:
    """A goal for an agent: reach a resource configuration."""

    name: str
    description: str
    #: goal(observation) -> fraction of the goal achieved in [0, 1].
    goal: Callable[[dict], float]
    max_steps: int = 50


@dataclass
class StepOutcome:
    """The gym's response to one action."""

    response: ApiResponse
    observation: dict
    reward: float
    done: bool
    steps_used: int


@dataclass
class CloudGym:
    """An episodic environment over a learned emulator."""

    emulator: Emulator
    task: GymTask
    steps_used: int = 0
    _last_score: float = 0.0
    history: list[tuple[str, bool]] = field(default_factory=list)

    def reset(self) -> dict:
        self.emulator.reset()
        self.steps_used = 0
        self._last_score = 0.0
        self.history = []
        return self.observe()

    def observe(self) -> dict:
        """The current resource inventory: type -> [instance views]."""
        observation: dict = {}
        for instance in self.emulator.registry.instances.values():
            view = {"id": instance.id, **instance.state}
            observation.setdefault(instance.type_name, []).append(view)
        return observation

    def step(self, api: str, params: dict | None = None) -> StepOutcome:
        """Invoke one cloud API as the agent's action.

        Reward is the *increase* in goal completion this step achieved,
        minus a small per-step cost so shorter solutions score higher.
        """
        if self.steps_used >= self.task.max_steps:
            raise RuntimeError("episode is over; call reset()")
        response = self.emulator.invoke(api, params or {})
        self.steps_used += 1
        self.history.append((api, response.success))
        observation = self.observe()
        score = self.task.goal(observation)
        reward = (score - self._last_score) - 0.01
        self._last_score = score
        done = score >= 1.0 or self.steps_used >= self.task.max_steps
        return StepOutcome(
            response=response,
            observation=observation,
            reward=reward,
            done=done,
            steps_used=self.steps_used,
        )

    @property
    def solved(self) -> bool:
        return self._last_score >= 1.0


def _has(observation: dict, kind: str, predicate=None) -> bool:
    for view in observation.get(kind, []):
        if predicate is None or predicate(view):
            return True
    return False


def public_subnet_task() -> GymTask:
    """The gym's quickstart task: a VPC with an internet-facing subnet.

    Goal state: a VPC exists, a subnet exists inside it with
    MapPublicIpOnLaunch enabled, and an internet gateway is attached.
    """

    def goal(observation: dict) -> float:
        score = 0.0
        if _has(observation, "vpc"):
            score += 0.25
        if _has(observation, "subnet"):
            score += 0.25
        if _has(observation, "subnet",
                lambda v: v.get("map_public_ip_on_launch") is True):
            score += 0.25
        if _has(observation, "internet_gateway", lambda v: v.get("vpc")):
            score += 0.25
        return score

    return GymTask(
        name="public_subnet",
        description="Create a VPC with a public subnet and an attached "
                    "internet gateway.",
        goal=goal,
    )


def running_instance_task() -> GymTask:
    """A harder task: a running instance with an associated Elastic IP."""

    def goal(observation: dict) -> float:
        score = 0.0
        if _has(observation, "subnet"):
            score += 0.25
        if _has(observation, "instance",
                lambda v: v.get("state") == "running"):
            score += 0.35
        if _has(observation, "elastic_ip", lambda v: v.get("instance")):
            score += 0.4
        return score

    return GymTask(
        name="running_instance",
        description="Launch an instance and associate an Elastic IP "
                    "with it.",
        goal=goal,
    )
