"""Multi-cloud analysis: formal comparison of equivalent services (§4.4).

Because both providers' documentation reduce to the same SM formalism,
equivalent services become formally comparable: does Azure's
``createOrUpdateVirtualMachine`` enforce the same class of dependency
checks as AWS's ``RunInstances``?  The comparison matches transitions
by category and by the *kinds* of checks they carry, surfacing
portability hazards where one cloud checks something the other does
not.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..alignment.symbolic import classify_assert, transition_asserts
from ..spec import ast


def check_profile(spec: ast.SMSpec, transition: ast.Transition) -> set[str]:
    """The set of check *kinds* a transition enforces."""
    kinds = set()
    for stmt in transition_asserts(transition):
        pattern = classify_assert(spec, transition, stmt)
        if pattern.kind == "guarded":
            pattern = pattern["inner"]  # type: ignore[assignment]
        kinds.add(pattern.kind)
    return kinds


@dataclass(frozen=True)
class ApiPairing:
    """One matched API pair across two clouds."""

    left_api: str
    right_api: str
    category: str
    shared_checks: tuple[str, ...]
    left_only: tuple[str, ...]
    right_only: tuple[str, ...]

    @property
    def portable(self) -> bool:
        """No one-sided checks: a program valid on one cloud stays valid."""
        return not self.left_only and not self.right_only


@dataclass
class ServiceComparison:
    """Cross-cloud comparison of two equivalent resources."""

    left_sm: str
    right_sm: str
    pairings: list[ApiPairing] = field(default_factory=list)

    @property
    def portability_ratio(self) -> float:
        if not self.pairings:
            return 1.0
        portable = sum(1 for pairing in self.pairings if pairing.portable)
        return portable / len(self.pairings)


def compare_resources(
    left_module: ast.SpecModule,
    right_module: ast.SpecModule,
    left_sm: str,
    right_sm: str,
) -> ServiceComparison:
    """Pair up the two resources' APIs by category and compare checks.

    Categories pair create-to-create, destroy-to-destroy, etc.; within a
    category APIs pair in definition order (cloud resources expose one
    API per lifecycle verb in practice).
    """
    comparison = ServiceComparison(left_sm=left_sm, right_sm=right_sm)
    left = left_module.machines[left_sm]
    right = right_module.machines[right_sm]

    def by_category(spec: ast.SMSpec) -> dict[str, list[ast.Transition]]:
        table: dict[str, list[ast.Transition]] = {}
        for transition in spec.transitions.values():
            if transition.name.startswith("_") or transition.is_stub:
                continue
            table.setdefault(transition.category, []).append(transition)
        return table

    left_table = by_category(left)
    right_table = by_category(right)
    for category in ("create", "destroy", "describe", "modify"):
        for left_t, right_t in zip(
            left_table.get(category, []), right_table.get(category, [])
        ):
            left_checks = check_profile(left, left_t)
            right_checks = check_profile(right, right_t)
            comparison.pairings.append(
                ApiPairing(
                    left_api=left_t.name,
                    right_api=right_t.name,
                    category=category,
                    shared_checks=tuple(sorted(left_checks & right_checks)),
                    left_only=tuple(sorted(left_checks - right_checks)),
                    right_only=tuple(sorted(right_checks - left_checks)),
                )
            )
    return comparison


#: The AWS-resource -> Azure-resource equivalences the multi-cloud
#: analysis uses (the "universal emulator" mapping of §4.4).
AWS_AZURE_EQUIVALENCES = (
    ("vpc", "virtual_network"),
    ("subnet", "subnet"),
    ("elastic_ip", "public_ip_address"),
    ("network_interface", "network_interface"),
    ("security_group", "network_security_group"),
    ("instance", "virtual_machine"),
)

#: AWS-resource -> GCP-resource equivalences.
AWS_GCP_EQUIVALENCES = (
    ("vpc", "network"),
    ("subnet", "subnetwork"),
    ("elastic_ip", "address"),
    ("security_group", "firewall_rule"),
    ("instance", "instance"),
    ("volume", "disk"),
)


def _compare_pairs(
    left_module: ast.SpecModule,
    right_module: ast.SpecModule,
    pairs,
) -> list[ServiceComparison]:
    return [
        compare_resources(left_module, right_module, left_sm, right_sm)
        for left_sm, right_sm in pairs
        if left_sm in left_module.machines
        and right_sm in right_module.machines
    ]


def compare_aws_azure(
    aws_module: ast.SpecModule, azure_module: ast.SpecModule
) -> list[ServiceComparison]:
    """Compare every equivalent AWS/Azure resource pair."""
    return _compare_pairs(aws_module, azure_module, AWS_AZURE_EQUIVALENCES)


def compare_aws_gcp(
    aws_module: ast.SpecModule, gcp_module: ast.SpecModule
) -> list[ServiceComparison]:
    """Compare every equivalent AWS/GCP resource pair."""
    return _compare_pairs(aws_module, gcp_module, AWS_GCP_EQUIVALENCES)
