"""Reference agents for the cloud gym (§4.4).

The gym exists to train DevOps agents; these two reference policies
bound the difficulty of a task and demonstrate the error-decoding loop:

- :class:`ScriptedAgent` replays a fixed plan (an expert trajectory);
- :class:`DecoderGuidedAgent` follows a plan but, on failure, consults
  the §4.3 error decoder and applies simple recovery tactics (create a
  missing dependency, run a suggested driver API, fix a bad parameter),
  the way an LLM agent would read the error message.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..alignment.errordecode import ErrorDecoder
from .gym import CloudGym


@dataclass(frozen=True)
class PlanStep:
    """One intended action; ``$name`` params resolve to earlier ids."""

    api: str
    params: dict
    bind: str = ""


@dataclass
class EpisodeResult:
    """What an agent run produced."""

    solved: bool
    steps_used: int
    total_reward: float
    recoveries: int = 0
    transcript: list[tuple[str, bool]] = field(default_factory=list)


def _resolve(params: dict, env: dict[str, str]) -> dict:
    resolved = {}
    for key, value in params.items():
        if isinstance(value, str) and value.startswith("$"):
            resolved[key] = env.get(value[1:], f"dangling-{value[1:]}")
        else:
            resolved[key] = value
    return resolved


class ScriptedAgent:
    """Replays a plan verbatim; no recovery."""

    def __init__(self, plan: list[PlanStep]):
        self.plan = plan

    def run(self, gym: CloudGym) -> EpisodeResult:
        gym.reset()
        env: dict[str, str] = {}
        total_reward = 0.0
        for step in self.plan:
            outcome = gym.step(step.api, _resolve(step.params, env))
            total_reward += outcome.reward
            if step.bind and outcome.response.success:
                env[step.bind] = str(outcome.response.data.get("id", ""))
            if outcome.done:
                break
        return EpisodeResult(
            solved=gym.solved,
            steps_used=gym.steps_used,
            total_reward=total_reward,
            transcript=list(gym.history),
        )


class DecoderGuidedAgent:
    """Follows a plan and recovers from failures via decoded errors.

    Recovery tactics, applied in order when a step fails:

    1. the decoder names a driver API ("call StopInstances ...") —
       invoke it on the subject, then retry;
    2. the error is a missing reference — create the dependency using
       the recovery factory for that resource type, then retry;
    3. otherwise give up on the step (and usually the episode).
    """

    def __init__(self, plan: list[PlanStep],
                 recovery_factories: dict[str, PlanStep] | None = None,
                 max_retries: int = 2):
        self.plan = plan
        self.recovery_factories = dict(recovery_factories or {})
        self.max_retries = max_retries

    def _driver_from(self, explanation) -> str:
        for action in explanation.suggested_actions:
            if action.startswith("call "):
                return action.split()[1]
        return ""

    def _missing_type(self, explanation) -> str:
        marker = "the referenced "
        if explanation.root_cause.startswith(marker):
            return explanation.root_cause[len(marker):].split()[0]
        return ""

    def run(self, gym: CloudGym) -> EpisodeResult:
        gym.reset()
        decoder = ErrorDecoder(gym.emulator)
        env: dict[str, str] = {}
        total_reward = 0.0
        recoveries = 0
        for step in self.plan:
            retries = 0
            while True:
                params = _resolve(step.params, env)
                outcome = gym.step(step.api, params)
                total_reward += outcome.reward
                if outcome.response.success:
                    if step.bind:
                        env[step.bind] = str(
                            outcome.response.data.get("id", "")
                        )
                    break
                if retries >= self.max_retries or outcome.done:
                    break
                retries += 1
                explanation = decoder.explain(step.api, params,
                                              outcome.response)
                driver = self._driver_from(explanation)
                if driver:
                    recoveries += 1
                    recovery = gym.step(driver, params)
                    total_reward += recovery.reward
                    continue
                missing = self._missing_type(explanation)
                factory = self.recovery_factories.get(missing)
                if factory is not None:
                    recoveries += 1
                    created = gym.step(
                        factory.api, _resolve(factory.params, env)
                    )
                    total_reward += created.reward
                    if factory.bind and created.response.success:
                        env[factory.bind] = str(
                            created.response.data.get("id", "")
                        )
                    continue
                break
            if gym.solved or gym.steps_used >= gym.task.max_steps:
                break
        return EpisodeResult(
            solved=gym.solved,
            steps_used=gym.steps_used,
            total_reward=total_reward,
            recoveries=recoveries,
            transcript=list(gym.history),
        )


def public_subnet_plan() -> list[PlanStep]:
    """The expert plan for :func:`repro.analysis.gym.public_subnet_task`."""
    return [
        PlanStep("CreateVpc", {"CidrBlock": "10.0.0.0/16"}, bind="vpc"),
        PlanStep("CreateSubnet",
                 {"VpcId": "$vpc", "CidrBlock": "10.0.1.0/24"},
                 bind="subnet"),
        PlanStep("ModifySubnetAttribute",
                 {"SubnetId": "$subnet", "MapPublicIpOnLaunch": True}),
        PlanStep("CreateInternetGateway", {}, bind="igw"),
        PlanStep("AttachInternetGateway",
                 {"InternetGatewayId": "$igw", "VpcId": "$vpc"}),
    ]


def forgetful_instance_plan() -> list[PlanStep]:
    """A plan with two classic mistakes, for exercising recovery:
    it resizes a *running* instance (needs StopInstances first)."""
    return [
        PlanStep("CreateVpc", {"CidrBlock": "10.0.0.0/16"}, bind="vpc"),
        PlanStep("CreateSubnet",
                 {"VpcId": "$vpc", "CidrBlock": "10.0.1.0/24"},
                 bind="subnet"),
        PlanStep("RunInstances",
                 {"SubnetId": "$subnet", "ImageId": "ami-1",
                  "InstanceType": "t2.micro"}, bind="instance"),
        PlanStep("ModifyInstanceAttribute",
                 {"InstanceId": "$instance", "InstanceType": "m5.large"}),
        PlanStep("AllocateAddress", {}, bind="eip"),
        PlanStep("StartInstances", {"InstanceId": "$instance"}),
        PlanStep("AssociateAddress",
                 {"ElasticIpId": "$eip", "InstanceId": "$instance"}),
    ]
