"""Static semantic validation of parsed SM specs.

The parser guarantees grammar conformance; this layer enforces the
semantic rules that make a spec *executable*: every ``read``/``write``
targets a declared state variable, every name is resolvable, builtin
functions exist, and ``call`` targets are SM-typed.  These are the
checks the prototype "enforces in the interpreter" to trigger
re-prompting (§5); the higher-level completeness/soundness checks of
§4.2 live in :mod:`repro.extraction.checks`.
"""

from __future__ import annotations

from . import ast
from .errors import SpecValidationError
from .parser import BUILTIN_FUNCTIONS


def _is_enum_symbol(name: str) -> bool:
    """Enum symbols are spelled in CONSTANT_CASE (``ASSIGNED``, ``IDLE``)."""
    return name.isupper() or (name.replace("_", "").isupper() and "_" in name)


class SMValidator:
    """Validates one SM, accumulating violations."""

    def __init__(self, spec: ast.SMSpec, module: ast.SpecModule | None = None):
        self.spec = spec
        self.module = module
        self.violations: list[str] = []

    def run(self) -> list[str]:
        self._check_state_decls()
        for transition in self.spec.transitions.values():
            if not transition.is_stub:
                self._check_transition(transition)
        return self.violations

    def _flag(self, message: str) -> None:
        self.violations.append(f"{self.spec.name}: {message}")

    def _check_state_decls(self) -> None:
        seen: set[str] = set()
        for decl in self.spec.states:
            if decl.name in seen:
                self._flag(f"duplicate state variable {decl.name!r}")
            seen.add(decl.name)
            if decl.type.kind == "enum" and decl.default is not None:
                if (
                    isinstance(decl.default, ast.Name)
                    and decl.type.enum_values
                    and decl.default.ident not in decl.type.enum_values
                    and not _is_enum_symbol(decl.default.ident)
                ):
                    self._flag(
                        f"default {decl.default.ident!r} not in enum for {decl.name!r}"
                    )

    def _check_transition(self, transition: ast.Transition) -> None:
        state_names = set(self.spec.state_names())
        local_names = {param.name for param in transition.params}
        context = f"{transition.name}"

        for stmt in transition.statements():
            if isinstance(stmt, ast.Read):
                if stmt.state not in state_names:
                    self._flag(f"{context}: read of undeclared state {stmt.state!r}")
                local_names.add(stmt.var)
            elif isinstance(stmt, ast.Write):
                if stmt.state not in state_names:
                    self._flag(f"{context}: write to undeclared state {stmt.state!r}")
                self._check_expr(stmt.value, local_names, state_names, context)
            elif isinstance(stmt, ast.Assert):
                self._check_pred(stmt.pred, local_names, state_names, context)
            elif isinstance(stmt, ast.Call):
                self._check_call(stmt, local_names, state_names, context)
            elif isinstance(stmt, ast.Emit):
                self._check_expr(stmt.value, local_names, state_names, context)
            elif isinstance(stmt, ast.If):
                self._check_pred(stmt.pred, local_names, state_names, context)

    def _check_call(
        self,
        stmt: ast.Call,
        local_names: set[str],
        state_names: set[str],
        context: str,
    ) -> None:
        self._check_expr(stmt.target, local_names, state_names, context)
        for arg in stmt.args:
            self._check_expr(arg, local_names, state_names, context)
        # Statically verify the target is SM-typed when the type is known.
        if isinstance(stmt.target, ast.Name):
            target_type = self._name_type(stmt.target.ident)
            if target_type is not None and target_type.kind not in ("sm", "any"):
                self._flag(
                    f"{context}: call target {stmt.target.ident!r} is "
                    f"{target_type.kind}, not an SM reference"
                )
            # If the target SM type and the module are known, the callee
            # transition must exist on that SM.
            if (
                target_type is not None
                and target_type.kind == "sm"
                and target_type.sm_name
                and self.module is not None
            ):
                callee = self.module.get(target_type.sm_name)
                if callee is not None and stmt.transition not in callee.transitions:
                    self._flag(
                        f"{context}: call to unknown transition "
                        f"{target_type.sm_name}.{stmt.transition}"
                    )

    def _name_type(self, name: str):
        declared = self.spec.state_type(name)
        if declared is not None:
            return declared
        for transition in self.spec.transitions.values():
            for param in transition.params:
                if param.name == name:
                    return param.type
        return None

    def _check_expr(
        self,
        expr: ast.Expr,
        local_names: set[str],
        state_names: set[str],
        context: str,
    ) -> None:
        if isinstance(expr, ast.Name):
            ident = expr.ident
            known = (
                ident in local_names
                or ident in state_names
                or ident == "id"
                or _is_enum_symbol(ident)
            )
            if not known:
                self._flag(f"{context}: unresolved name {ident!r}")
            return
        if isinstance(expr, ast.Func):
            if expr.name not in BUILTIN_FUNCTIONS:
                self._flag(f"{context}: unknown builtin function {expr.name!r}")
        for child in expr.children():
            self._check_expr(child, local_names, state_names, context)

    def _check_pred(
        self,
        pred: ast.Pred,
        local_names: set[str],
        state_names: set[str],
        context: str,
    ) -> None:
        for child in pred.children():
            if isinstance(child, ast.Pred):
                self._check_pred(child, local_names, state_names, context)
            elif isinstance(child, ast.Expr):
                self._check_expr(child, local_names, state_names, context)


def collect_violations(module: ast.SpecModule) -> list[str]:
    """Validate every SM in the module; return all violations found."""
    violations: list[str] = []
    for spec in module.machines.values():
        violations.extend(SMValidator(spec, module).run())
    return violations


def validate_module(module: ast.SpecModule) -> None:
    """Raise :class:`SpecValidationError` if the module has violations."""
    violations = collect_violations(module)
    if violations:
        raise SpecValidationError(violations)


def validate_sm(spec: ast.SMSpec) -> None:
    """Raise :class:`SpecValidationError` if a single SM has violations."""
    violations = SMValidator(spec).run()
    if violations:
        raise SpecValidationError(violations)
