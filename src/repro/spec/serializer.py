"""Render spec ASTs back to concrete syntax.

``parse(serialize(spec))`` round-trips, which both the constrained
decoder and the property-based tests rely on.
"""

from __future__ import annotations

from . import ast

INDENT = "  "


def serialize_module(module: ast.SpecModule) -> str:
    """Render every SM in the module, in insertion order."""
    return "\n\n".join(serialize_sm(spec) for spec in module.machines.values())


def serialize_sm(spec: ast.SMSpec) -> str:
    lines: list[str] = []
    header = f"SM {spec.name}"
    if spec.parent:
        header += f" contained_in {spec.parent}"
    lines.append(header + " {")
    if spec.doc:
        lines.append(INDENT + "// " + spec.doc.replace("\n", " "))
    lines.append(INDENT + "States {")
    for decl in spec.states:
        lines.append(INDENT * 2 + decl.render() + ",")
    lines.append(INDENT + "}")
    lines.append(INDENT + "Transitions {")
    for transition in spec.transitions.values():
        lines.extend(_serialize_transition(transition, depth=2))
    lines.append(INDENT + "}")
    lines.append("}")
    return "\n".join(lines)


def _serialize_transition(transition: ast.Transition, depth: int) -> list[str]:
    pad = INDENT * depth
    params = ", ".join(p.render() for p in transition.params)
    lines: list[str] = []
    if transition.category:
        lines.append(f"{pad}@{transition.category}")
    signature = f"{pad}{transition.name}({params})"
    if transition.is_stub:
        lines.append(signature + ";")
        return lines
    lines.append(signature + " {")
    for stmt in transition.body:
        lines.extend(_serialize_stmt(stmt, depth + 1))
    lines.append(pad + "}")
    return lines


def _serialize_stmt(stmt: ast.Stmt, depth: int) -> list[str]:
    pad = INDENT * depth
    if isinstance(stmt, ast.If):
        lines = [f"{pad}if ({stmt.pred.render()}) {{"]
        for inner in stmt.then:
            lines.extend(_serialize_stmt(inner, depth + 1))
        if stmt.orelse:
            lines.append(f"{pad}}} else {{")
            for inner in stmt.orelse:
                lines.extend(_serialize_stmt(inner, depth + 1))
        lines.append(pad + "}")
        return lines
    return [pad + stmt.render()]  # type: ignore[attr-defined]
