"""Recursive-descent parser for the SM specification language.

Accepts both the compact form in the paper's Fig. 1 example (a
``Transitions`` block that first lists API signatures, followed by the
definitions) and the fully braced form the synthesizer emits.  Signature-
only entries become *stub* transitions, which is exactly how incremental
extraction (§4.2) leaves dependencies to be patched by the linking pass.
"""

from __future__ import annotations

from . import ast
from .errors import SpecSyntaxError
from .lexer import Token, tokenize
from .types import ANY, Param, StateType, enum_of, list_of, sm_of

#: Builtin predicate/value functions available to specs.  The validator
#: rejects anything else, which is one of the "aggressive constraints"
#: the paper imposes on generation.
BUILTIN_FUNCTIONS = {
    "valid_cidr",
    "prefix_len",
    "cidr_within",
    "cidr_overlaps",
    "cidr_overlaps_any",
    "valid_ip",
    "len",
    "contains",
    "exists",
    "lookup",
    "concat",
    "append",
    "remove",
    "put",
    "drop",
    "new_id",
    "now",
}


class Parser:
    """Parses one module (a sequence of SM blocks) from token stream."""

    def __init__(self, source: str):
        self.tokens: list[Token] = tokenize(source)
        self.pos = 0

    # -- token helpers ------------------------------------------------------

    def peek(self, offset: int = 0) -> Token:
        index = min(self.pos + offset, len(self.tokens) - 1)
        return self.tokens[index]

    def advance(self) -> Token:
        token = self.tokens[self.pos]
        if token.kind != "eof":
            self.pos += 1
        return token

    def check(self, kind: str, text: str | None = None) -> bool:
        token = self.peek()
        return token.kind == kind and (text is None or token.text == text)

    def accept(self, kind: str, text: str | None = None) -> Token | None:
        if self.check(kind, text):
            return self.advance()
        return None

    def expect(self, kind: str, text: str | None = None) -> Token:
        token = self.peek()
        if not self.check(kind, text):
            want = text or kind
            raise SpecSyntaxError(
                f"expected {want!r}, found {token.text or token.kind!r}",
                token.line,
                token.column,
            )
        return self.advance()

    def error(self, message: str) -> SpecSyntaxError:
        token = self.peek()
        return SpecSyntaxError(message, token.line, token.column)

    # -- module / SM level --------------------------------------------------

    def parse_module(self, service: str = "", provider: str = "aws") -> ast.SpecModule:
        module = ast.SpecModule(service=service, provider=provider)
        while not self.check("eof"):
            module.add(self.parse_sm())
        return module

    def parse_sm(self) -> ast.SMSpec:
        self.expect("keyword", "SM")
        name = self.expect("ident").text
        parent = ""
        if self.accept("keyword", "contained_in"):
            parent = self.expect("ident").text
        self.expect("punct", "{")
        spec = ast.SMSpec(name=name, parent=parent)

        while not self.check("punct", "}"):
            if self.accept("keyword", "States"):
                self.parse_states(spec)
            elif self.accept("keyword", "Transitions"):
                self.parse_transitions_block(spec)
            elif self.check("ident") or self.check("op", "@"):
                transition = self.parse_transition_definition()
                spec.transitions[transition.name] = transition
            else:
                raise self.error("expected States, Transitions or a definition")
        self.expect("punct", "}")
        return spec

    def parse_states(self, spec: ast.SMSpec) -> None:
        braced = bool(self.accept("punct", "{"))
        while True:
            if braced and self.check("punct", "}"):
                break
            if not braced and (
                self.check("keyword", "Transitions") or self.check("punct", "}")
            ):
                break
            name = self.expect("ident").text
            self.expect("punct", ":")
            state_type = self.parse_type()
            default = None
            if self.accept("op", "="):
                default = self.parse_expr()
            spec.states.append(ast.StateDecl(name, state_type, default))
            if not self.accept("punct", ","):
                self.accept("punct", ";")
        if braced:
            self.expect("punct", "}")

    def parse_transitions_block(self, spec: ast.SMSpec) -> None:
        self.expect("punct", "{")
        while not self.check("punct", "}"):
            transition = self.parse_transition_definition()
            existing = spec.transitions.get(transition.name)
            if existing is None or existing.is_stub:
                spec.transitions[transition.name] = transition
        self.expect("punct", "}")

    def parse_transition_definition(self) -> ast.Transition:
        category = ""
        if self.accept("op", "@"):
            category = self.expect("ident").text
            if category not in ast.CATEGORIES:
                raise self.error(
                    f"unknown category @{category}; expected one of "
                    + ", ".join(ast.CATEGORIES)
                )
        name = self.expect("ident").text
        self.expect("punct", "(")
        params: list[Param] = []
        while not self.check("punct", ")"):
            param_name = self.expect("ident").text
            param_type = ANY
            if self.accept("punct", ":"):
                param_type = self.parse_type()
            params.append(Param(param_name, param_type))
            if not self.check("punct", ")"):
                self.expect("punct", ",")
        self.expect("punct", ")")
        if self.accept("punct", ";"):
            # Signature-only declaration: an unfinished stub.
            return ast.Transition(
                name=name, params=tuple(params), category=category, is_stub=True
            )
        body = self.parse_block()
        return ast.Transition(
            name=name, params=tuple(params), body=tuple(body), category=category
        )

    # -- types --------------------------------------------------------------

    def parse_type(self) -> StateType:
        token = self.peek()
        if token.kind == "keyword" and token.text == "SM":
            self.advance()
            if self.accept("op", "<"):
                target = self.expect("ident").text
                self.expect("op", ">")
                return sm_of(target)
            return StateType("sm")
        name_token = self.expect("ident")
        name = name_token.text
        if name == "enum":
            if self.accept("punct", "("):
                values = [self.parse_enum_value()]
                while self.accept("punct", ","):
                    values.append(self.parse_enum_value())
                self.expect("punct", ")")
                return enum_of(*values)
            return StateType("enum")
        if name == "list":
            if self.accept("op", "<"):
                element = self.parse_type()
                self.expect("op", ">")
                return list_of(element)
            return StateType("list")
        if name in ("str", "string"):
            return StateType("str")
        if name in ("int", "integer"):
            return StateType("int")
        if name in ("bool", "boolean"):
            return StateType("bool")
        if name == "float":
            return StateType("float")
        if name == "map":
            return StateType("map")
        if name == "any":
            return ANY
        raise SpecSyntaxError(
            f"unknown type {name!r}", name_token.line, name_token.column
        )

    def parse_enum_value(self) -> str:
        """Enum symbols are usually identifiers, but versions ("1.27")
        and dotted product names appear in real documentation too."""
        token = self.peek()
        if token.kind in ("ident", "string"):
            self.advance()
            text = token.text
        elif token.kind == "number":
            self.advance()
            text = token.text
        else:
            raise self.error("expected an enum value")
        # Allow a dotted continuation (1.27 lexes as one number, but
        # identifiers like node.large arrive as ident '.' ident).
        while self.check("punct", ".") and self.peek(1).kind in (
            "ident", "number",
        ):
            self.advance()
            text += "." + self.advance().text
        return text

    # -- statements ----------------------------------------------------------

    def parse_block(self) -> list[ast.Stmt]:
        self.expect("punct", "{")
        statements: list[ast.Stmt] = []
        while not self.check("punct", "}"):
            statements.append(self.parse_statement())
        self.expect("punct", "}")
        return statements

    def parse_statement(self) -> ast.Stmt:
        if self.check("keyword", "if"):
            return self.parse_if()
        token = self.expect("ident")
        primitive = token.text
        if primitive == "read":
            self.expect("punct", "(")
            state = self.expect("ident").text
            self.expect("punct", ",")
            var = self.expect("ident").text
            self.expect("punct", ")")
            self.expect("punct", ";")
            return ast.Read(state, var)
        if primitive == "write":
            self.expect("punct", "(")
            state = self.expect("ident").text
            self.expect("punct", ",")
            value = self.parse_expr()
            self.expect("punct", ")")
            self.expect("punct", ";")
            return ast.Write(state, value)
        if primitive == "emit":
            self.expect("punct", "(")
            key = self.expect("ident").text
            self.expect("punct", ",")
            value = self.parse_expr()
            self.expect("punct", ")")
            self.expect("punct", ";")
            return ast.Emit(key, value)
        if primitive == "assert":
            self.expect("punct", "(")
            pred = self.parse_pred()
            self.expect("punct", ")")
            error_code = "OperationFailure"
            message = ""
            if self.accept("punct", ":"):
                error_code = self.parse_error_code()
                if self.accept("punct", "("):
                    message = self.expect("string").text
                    self.expect("punct", ")")
            self.expect("punct", ";")
            return ast.Assert(pred, error_code, message)
        if primitive == "call":
            self.expect("punct", "(")
            stmt = self.parse_call_interior()
            self.expect("punct", ")")
            self.expect("punct", ";")
            return stmt
        raise SpecSyntaxError(
            f"unknown primitive {primitive!r}; expected read/write/assert/call/emit/if",
            token.line,
            token.column,
        )

    def parse_error_code(self) -> str:
        """Error codes may be dotted, e.g. ``InvalidSubnet.Range``."""
        code = self.expect("ident").text
        while self.check("punct", ".") and self.peek(1).kind == "ident":
            self.advance()
            code += "." + self.expect("ident").text
        return code

    def parse_if(self) -> ast.Stmt:
        self.expect("keyword", "if")
        parenthesized = bool(self.accept("punct", "("))
        pred = self.parse_pred()
        if parenthesized:
            self.expect("punct", ")")
        self.accept("keyword", "then")
        then = tuple(self.parse_block())
        orelse: tuple[ast.Stmt, ...] = ()
        if self.accept("keyword", "else"):
            if self.check("keyword", "if"):
                orelse = (self.parse_if(),)
            else:
                orelse = tuple(self.parse_block())
        return ast.If(pred, then, orelse)

    def parse_call_interior(self) -> ast.Call:
        """Parse ``target.Transition(args...)`` inside ``call( ... )``."""
        expr = self.parse_primary()
        segments: list[str] = []
        args: tuple[ast.Expr, ...] | None = None
        while self.check("punct", "."):
            self.advance()
            name = self.expect("ident").text
            if self.check("punct", "("):
                self.advance()
                call_args: list[ast.Expr] = []
                while not self.check("punct", ")"):
                    call_args.append(self.parse_expr())
                    if not self.check("punct", ")"):
                        self.expect("punct", ",")
                self.expect("punct", ")")
                args = tuple(call_args)
                segments.append(name)
                break
            segments.append(name)
        if args is None:
            raise self.error("call() requires target.Transition(args...)")
        target: ast.Expr = expr
        for segment in segments[:-1]:
            target = ast.Attr(target, segment)
        return ast.Call(target, segments[-1], args)

    # -- predicates -----------------------------------------------------------

    def parse_pred(self) -> ast.Pred:
        return self.parse_or()

    def parse_or(self) -> ast.Pred:
        left = self.parse_and()
        while self.accept("op", "||"):
            left = ast.Or(left, self.parse_and())
        return left

    def parse_and(self) -> ast.Pred:
        left = self.parse_unary_pred()
        while self.accept("op", "&&"):
            left = ast.And(left, self.parse_unary_pred())
        return left

    def parse_unary_pred(self) -> ast.Pred:
        if self.accept("op", "!"):
            return ast.Not(self.parse_unary_pred())
        if self.check("punct", "("):
            # Could be a grouped predicate or a parenthesized expression
            # beginning a comparison; backtrack on failure.
            saved = self.pos
            self.advance()
            try:
                pred = self.parse_pred()
                self.expect("punct", ")")
            except SpecSyntaxError:
                if self.check("eof"):
                    # Truncated input, not a mis-parse: the failure is
                    # at the frontier, which prefix-viability checking
                    # (constrained decoding) relies on seeing.
                    raise
                self.pos = saved
            else:
                if self.peek().kind == "op" and self.peek().text in (
                    "==",
                    "!=",
                    "<",
                    "<=",
                    ">",
                    ">=",
                ):
                    self.pos = saved
                else:
                    return pred
        return self.parse_comparison()

    def parse_comparison(self) -> ast.Pred:
        left = self.parse_expr()
        token = self.peek()
        if token.kind == "op" and token.text in ("==", "!=", "<", "<=", ">", ">="):
            self.advance()
            right = self.parse_expr()
            return ast.Compare(token.text, left, right)
        if token.kind == "ident" and token.text == "in":
            self.advance()
            right = self.parse_expr()
            return ast.Compare("in", left, right)
        return ast.Truthy(left)

    # -- expressions -----------------------------------------------------------

    def parse_expr(self) -> ast.Expr:
        return self.parse_postfix()

    def parse_postfix(self) -> ast.Expr:
        expr = self.parse_primary()
        while self.check("punct", "."):
            self.advance()
            attr = self.expect("ident").text
            expr = ast.Attr(expr, attr)
        return expr

    def parse_primary(self) -> ast.Expr:
        token = self.peek()
        if token.kind == "string":
            self.advance()
            return ast.Literal(token.text)
        if token.kind == "number":
            self.advance()
            text = token.text
            return ast.Literal(float(text) if "." in text else int(text))
        if token.kind == "keyword":
            if token.text == "self":
                self.advance()
                return ast.SelfRef()
            if token.text == "true":
                self.advance()
                return ast.Literal(True)
            if token.text == "false":
                self.advance()
                return ast.Literal(False)
            if token.text == "null":
                self.advance()
                return ast.Literal(None)
            raise self.error(f"unexpected keyword {token.text!r} in expression")
        if token.kind == "punct" and token.text == "[":
            self.advance()
            items: list[ast.Expr] = []
            while not self.check("punct", "]"):
                items.append(self.parse_expr())
                if not self.check("punct", "]"):
                    self.expect("punct", ",")
            self.expect("punct", "]")
            return ast.ListExpr(tuple(items))
        if token.kind == "punct" and token.text == "(":
            self.advance()
            expr = self.parse_expr()
            self.expect("punct", ")")
            return expr
        if token.kind == "ident":
            self.advance()
            if self.check("punct", "("):
                self.advance()
                args: list[ast.Expr] = []
                while not self.check("punct", ")"):
                    args.append(self.parse_expr())
                    if not self.check("punct", ")"):
                        self.expect("punct", ",")
                self.expect("punct", ")")
                return ast.Func(token.text, tuple(args))
            return ast.Name(token.text)
        raise self.error(f"unexpected token {token.text or token.kind!r}")


def parse_module(source: str, service: str = "", provider: str = "aws") -> ast.SpecModule:
    """Parse a full spec module (one or more SM blocks)."""
    return Parser(source).parse_module(service=service, provider=provider)


def parse_sm(source: str) -> ast.SMSpec:
    """Parse a single SM block."""
    parser = Parser(source)
    spec = parser.parse_sm()
    parser.expect("eof")
    return spec
