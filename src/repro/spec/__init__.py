"""The SM specification language (Fig. 1 of the paper).

This package provides the grammar as a concrete textual DSL, with:

- :mod:`repro.spec.lexer` / :mod:`repro.spec.parser` — text to AST;
- :mod:`repro.spec.ast` — the hierarchy-of-state-machines model;
- :mod:`repro.spec.types` — the state/parameter type system;
- :mod:`repro.spec.validator` — static semantic checks;
- :mod:`repro.spec.serializer` — AST back to text (round-trips).
"""

from .ast import (
    And,
    Assert,
    Attr,
    Call,
    CATEGORIES,
    clone_spec,
    clone_transition,
    Compare,
    Emit,
    Expr,
    Func,
    If,
    ListExpr,
    Literal,
    Name,
    Not,
    Or,
    Pred,
    Read,
    SelfRef,
    SMSpec,
    SpecModule,
    StateDecl,
    Stmt,
    Transition,
    Truthy,
    Write,
)
from .builder import sm, SMBuilder, TransitionBuilder
from .errors import SpecError, SpecSyntaxError, SpecValidationError
from .parser import BUILTIN_FUNCTIONS, parse_module, parse_sm
from .serializer import serialize_module, serialize_sm
from .types import (
    ANY,
    BOOL,
    FLOAT,
    INT,
    MAP,
    Param,
    SM_REF,
    STR,
    StateType,
    enum_of,
    list_of,
    sm_of,
)
from .validator import collect_violations, validate_module, validate_sm

__all__ = [
    "And",
    "ANY",
    "Assert",
    "Attr",
    "BOOL",
    "BUILTIN_FUNCTIONS",
    "Call",
    "CATEGORIES",
    "clone_spec",
    "clone_transition",
    "Compare",
    "collect_violations",
    "Emit",
    "enum_of",
    "Expr",
    "FLOAT",
    "Func",
    "If",
    "INT",
    "ListExpr",
    "list_of",
    "Literal",
    "MAP",
    "Name",
    "Not",
    "Or",
    "Param",
    "parse_module",
    "parse_sm",
    "Pred",
    "Read",
    "SelfRef",
    "serialize_module",
    "serialize_sm",
    "sm",
    "SM_REF",
    "SMBuilder",
    "TransitionBuilder",
    "sm_of",
    "SMSpec",
    "SpecError",
    "SpecModule",
    "SpecSyntaxError",
    "SpecValidationError",
    "StateDecl",
    "StateType",
    "Stmt",
    "STR",
    "Transition",
    "Truthy",
    "validate_module",
    "validate_sm",
    "Write",
]
