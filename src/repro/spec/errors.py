"""Errors raised by the specification layer (lexing, parsing, validation)."""

from __future__ import annotations


class SpecError(Exception):
    """Base class for all specification-layer errors."""


class SpecSyntaxError(SpecError):
    """The spec text does not conform to the grammar of Fig. 1.

    The synthesis loop catches this to trigger re-prompting (§5:
    "enforce syntactic checks in the interpreter and re-prompt in case
    of issues").
    """

    def __init__(self, message: str, line: int = 0, column: int = 0):
        self.line = line
        self.column = column
        location = f" at {line}:{column}" if line else ""
        super().__init__(f"{message}{location}")


class SpecValidationError(SpecError):
    """The spec parsed but violates a static semantic rule.

    Carries the list of individual violations so the correction loop can
    target them one by one.
    """

    def __init__(self, violations: list[str]):
        self.violations = list(violations)
        super().__init__(
            f"{len(self.violations)} validation violation(s): "
            + "; ".join(self.violations[:5])
            + ("; ..." if len(self.violations) > 5 else "")
        )
