"""Tokenizer for the SM specification language."""

from __future__ import annotations

from dataclasses import dataclass

from .errors import SpecSyntaxError

KEYWORDS = {
    "SM",
    "States",
    "Transitions",
    "if",
    "then",
    "else",
    "self",
    "true",
    "false",
    "null",
    "contained_in",
}

#: Multi-character operators, longest first so ``==`` wins over ``=``.
OPERATORS = ["==", "!=", "<=", ">=", "&&", "||", "<", ">", "=", "!", "@"]

PUNCTUATION = "{}(),:;.[]"


@dataclass(frozen=True)
class Token:
    kind: str  # 'ident' | 'keyword' | 'string' | 'number' | 'op' | 'punct' | 'eof'
    text: str
    line: int
    column: int

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.kind}, {self.text!r}, {self.line}:{self.column})"


def tokenize(source: str) -> list[Token]:
    """Tokenize ``source``, raising :class:`SpecSyntaxError` on bad input.

    Comments run from ``//`` or ``/*``..``*/`` and are discarded, as the
    paper's example specs are commented.
    """
    tokens: list[Token] = []
    i = 0
    line = 1
    col = 1
    n = len(source)

    def advance(count: int) -> None:
        nonlocal i, line, col
        for _ in range(count):
            if i < n and source[i] == "\n":
                line += 1
                col = 1
            else:
                col += 1
            i += 1

    while i < n:
        ch = source[i]
        if ch in " \t\r\n":
            advance(1)
            continue
        if source.startswith("//", i):
            while i < n and source[i] != "\n":
                advance(1)
            continue
        if source.startswith("/*", i):
            end = source.find("*/", i + 2)
            if end == -1:
                raise SpecSyntaxError("unterminated block comment", line, col)
            advance(end + 2 - i)
            continue
        if ch == '"':
            start_line, start_col = line, col
            advance(1)
            chars: list[str] = []
            while i < n and source[i] != '"':
                if source[i] == "\\" and i + 1 < n:
                    escape = source[i + 1]
                    chars.append({"n": "\n", "t": "\t"}.get(escape, escape))
                    advance(2)
                else:
                    chars.append(source[i])
                    advance(1)
            if i >= n:
                raise SpecSyntaxError("unterminated string", start_line, start_col)
            advance(1)
            tokens.append(Token("string", "".join(chars), start_line, start_col))
            continue
        if ch.isdigit() or (ch == "-" and i + 1 < n and source[i + 1].isdigit()):
            start_line, start_col = line, col
            j = i + 1
            while j < n and (source[j].isdigit() or source[j] == "."):
                j += 1
            text = source[i:j]
            advance(j - i)
            tokens.append(Token("number", text, start_line, start_col))
            continue
        if ch.isalpha() or ch == "_":
            start_line, start_col = line, col
            j = i
            while j < n and (source[j].isalnum() or source[j] == "_"):
                j += 1
            text = source[i:j]
            advance(j - i)
            kind = "keyword" if text in KEYWORDS else "ident"
            tokens.append(Token(kind, text, start_line, start_col))
            continue
        matched = False
        for op in OPERATORS:
            if source.startswith(op, i):
                tokens.append(Token("op", op, line, col))
                advance(len(op))
                matched = True
                break
        if matched:
            continue
        if ch in PUNCTUATION:
            tokens.append(Token("punct", ch, line, col))
            advance(1)
            continue
        raise SpecSyntaxError(f"unexpected character {ch!r}", line, col)

    tokens.append(Token("eof", "", line, col))
    return tokens
