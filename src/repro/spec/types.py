"""Type system for the state-machine specification language.

The grammar in the paper (Fig. 1) declares each state variable with a
type (``s : t``).  The illustrative example uses ``enum``, ``str`` and
``SM`` (a reference to another state machine).  We support those plus the
small set of scalar and container types that cloud documentation actually
uses for resource attributes (booleans, integers, lists of identifiers,
string maps for tags).
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: The type kinds a state variable or transition parameter may carry.
KINDS = ("str", "int", "float", "bool", "enum", "sm", "list", "map", "any")


def _is_versionish(value: str) -> bool:
    """Version-style enum symbols ("1.27") spell without quotes."""
    return all(part.isdigit() for part in value.split(".") if part)


@dataclass(frozen=True)
class StateType:
    """The declared type of a state variable or transition parameter.

    ``kind`` is one of :data:`KINDS`.  For ``enum`` types,
    ``enum_values`` holds the permissible symbols.  For ``sm`` types,
    ``sm_name`` optionally names the target state-machine type
    (``SM<subnet>``); when empty the reference is untyped (plain ``SM``),
    matching the paper's example.  For ``list`` types, ``element`` holds
    the element type.
    """

    kind: str
    enum_values: tuple[str, ...] = ()
    sm_name: str = ""
    element: "StateType | None" = None

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ValueError(f"unknown type kind: {self.kind!r}")

    def render(self) -> str:
        """Return the concrete-syntax spelling of this type."""
        if self.kind == "enum" and self.enum_values:
            spelled = []
            for value in self.enum_values:
                if value.replace("_", "").replace(".", "").isalnum() and (
                    not value[0].isdigit() or _is_versionish(value)
                ):
                    spelled.append(value)
                else:
                    spelled.append('"' + value + '"')
            return "enum(" + ", ".join(spelled) + ")"
        if self.kind == "sm":
            return f"SM<{self.sm_name}>" if self.sm_name else "SM"
        if self.kind == "list":
            inner = self.element.render() if self.element else "any"
            return f"list<{inner}>"
        return self.kind

    def accepts(self, value: object) -> bool:
        """Check whether a runtime ``value`` is compatible with this type.

        ``None`` is accepted by every type: cloud resource attributes are
        routinely absent until some API call sets them (e.g. a PublicIP's
        NIC before association).
        """
        if value is None or self.kind == "any":
            return True
        if self.kind == "str":
            return isinstance(value, str)
        if self.kind == "int":
            return isinstance(value, int) and not isinstance(value, bool)
        if self.kind == "float":
            return isinstance(value, (int, float)) and not isinstance(value, bool)
        if self.kind == "bool":
            return isinstance(value, bool)
        if self.kind == "enum":
            return isinstance(value, str) and (
                not self.enum_values or value in self.enum_values
            )
        if self.kind == "sm":
            # Runtime SM references are resource identifiers (strings) or
            # live machine handles; the interpreter enforces the latter.
            return True
        if self.kind == "list":
            if not isinstance(value, list):
                return False
            if self.element is None:
                return True
            return all(self.element.accepts(item) for item in value)
        if self.kind == "map":
            return isinstance(value, dict)
        raise AssertionError(f"unhandled kind {self.kind}")


#: Convenience singletons for the common scalar types.
STR = StateType("str")
INT = StateType("int")
FLOAT = StateType("float")
BOOL = StateType("bool")
ANY = StateType("any")
MAP = StateType("map")
SM_REF = StateType("sm")


def enum_of(*values: str) -> StateType:
    """Build an enum type over ``values``."""
    return StateType("enum", enum_values=tuple(values))


def sm_of(name: str) -> StateType:
    """Build a typed SM reference (``SM<name>``)."""
    return StateType("sm", sm_name=name)


def list_of(element: StateType) -> StateType:
    """Build a list type with the given element type."""
    return StateType("list", element=element)


@dataclass(frozen=True)
class Param:
    """A typed transition parameter (``region: str``)."""

    name: str
    type: StateType = field(default=ANY)

    def render(self) -> str:
        return f"{self.name}: {self.type.render()}"
