"""Abstract syntax tree for the SM specification language.

The shape follows Fig. 1 of the paper directly:

.. code-block:: text

    prog        ::= SM states transitions
    states      ::= s1:t1, ..., sn:tn
    transitions ::= expr | if pred then expr else expr
    expr        ::= primitive | primitive, expr
    primitive   ::= read(s, v) | write(s, v) | assert(pred) | call(transition)

with the practical extensions the paper's own illustrative example uses:
named transitions with typed parameters, attribute access on SM
references (``nic_ref.loc``), the ``self`` handle passed through
``call``, negation in predicates (``assert(!NIC)``), and an error-code
annotation on asserts so failed assertions map to cloud error codes
(the "specification linking" step of §4.2 fills these in).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .types import Param, StateType

# ---------------------------------------------------------------------------
# Value expressions
# ---------------------------------------------------------------------------


class Expr:
    """Base class for value expressions."""

    def children(self) -> tuple["Expr", ...]:
        return ()


@dataclass(frozen=True)
class Literal(Expr):
    """A literal string, number, boolean or null."""

    value: object

    def render(self) -> str:
        if self.value is None:
            return "null"
        if isinstance(self.value, bool):
            return "true" if self.value else "false"
        if isinstance(self.value, str):
            return '"' + self.value.replace("\\", "\\\\").replace('"', '\\"') + '"'
        return repr(self.value)


@dataclass(frozen=True)
class Name(Expr):
    """A bare identifier.

    Resolution is dynamic, mirroring the paper's symbolic treatment of
    state: at evaluation time a name resolves to (in order) a local
    variable / parameter, a state variable of the enclosing SM, or — if
    spelled in CONSTANT_CASE — an enum symbol.
    """

    ident: str

    def render(self) -> str:
        return self.ident


@dataclass(frozen=True)
class SelfRef(Expr):
    """The ``self`` handle of the currently executing SM instance."""

    def render(self) -> str:
        return "self"


@dataclass(frozen=True)
class Attr(Expr):
    """Attribute access on an SM reference: ``nic_ref.loc``."""

    base: Expr
    attr: str

    def children(self) -> tuple[Expr, ...]:
        return (self.base,)

    def render(self) -> str:
        return f"{self.base.render()}.{self.attr}"


@dataclass(frozen=True)
class Func(Expr):
    """A builtin function applied to arguments (``valid_cidr(block)``).

    Builtins are the small domain vocabulary that predicates over cloud
    state need: CIDR arithmetic, prefix lengths, list membership and
    sizes.  The interpreter provides their implementations; the validator
    rejects unknown names so the LLM cannot invent functions.
    """

    name: str
    args: tuple[Expr, ...]

    def children(self) -> tuple[Expr, ...]:
        return self.args

    def render(self) -> str:
        return f"{self.name}(" + ", ".join(a.render() for a in self.args) + ")"


@dataclass(frozen=True)
class ListExpr(Expr):
    """A literal list of expressions (``[a, b]``)."""

    items: tuple[Expr, ...]

    def children(self) -> tuple[Expr, ...]:
        return self.items

    def render(self) -> str:
        return "[" + ", ".join(item.render() for item in self.items) + "]"


# ---------------------------------------------------------------------------
# Predicates
# ---------------------------------------------------------------------------


class Pred:
    """Base class for predicates."""

    def children(self) -> tuple[object, ...]:
        return ()


@dataclass(frozen=True)
class Compare(Pred):
    """A binary comparison: ``==  !=  <  <=  >  >=  in``."""

    op: str
    left: Expr
    right: Expr

    def children(self) -> tuple[object, ...]:
        return (self.left, self.right)

    def render(self) -> str:
        return f"{self.left.render()} {self.op} {self.right.render()}"


@dataclass(frozen=True)
class Truthy(Pred):
    """An expression used directly as a predicate (``assert(!NIC)``)."""

    expr: Expr

    def children(self) -> tuple[object, ...]:
        return (self.expr,)

    def render(self) -> str:
        return self.expr.render()


@dataclass(frozen=True)
class Not(Pred):
    pred: Pred

    def children(self) -> tuple[object, ...]:
        return (self.pred,)

    def render(self) -> str:
        inner = self.pred.render()
        if isinstance(self.pred, (Compare, And, Or)):
            return f"!({inner})"
        return f"!{inner}"


@dataclass(frozen=True)
class And(Pred):
    left: Pred
    right: Pred

    def children(self) -> tuple[object, ...]:
        return (self.left, self.right)

    def render(self) -> str:
        return f"({self.left.render()} && {self.right.render()})"


@dataclass(frozen=True)
class Or(Pred):
    left: Pred
    right: Pred

    def children(self) -> tuple[object, ...]:
        return (self.left, self.right)

    def render(self) -> str:
        return f"({self.left.render()} || {self.right.render()})"


# ---------------------------------------------------------------------------
# Statements (the grammar's expr / primitive layer)
# ---------------------------------------------------------------------------


class Stmt:
    """Base class for transition-body statements."""


@dataclass(frozen=True)
class Read(Stmt):
    """``read(state, var)`` — read state variable into a local binding.

    Per describe() semantics, every variable bound by ``read`` is also
    included in the transition's API response payload under its own
    name, which is how describe-class APIs surface resource attributes.
    """

    state: str
    var: str

    def render(self) -> str:
        return f"read({self.state}, {self.var});"


@dataclass(frozen=True)
class Write(Stmt):
    """``write(state, value)`` — assign a state variable."""

    state: str
    value: Expr

    def render(self) -> str:
        return f"write({self.state}, {self.value.render()});"


@dataclass(frozen=True)
class Assert(Stmt):
    """``assert(pred) : ErrorCode("message")`` — a guarded constraint.

    When the predicate is false the transition fails atomically with the
    annotated cloud error code.  The message is a template; ``{name}``
    placeholders are interpolated from the evaluation scope.
    """

    pred: Pred
    error_code: str = "OperationFailure"
    message: str = ""

    def render(self) -> str:
        suffix = f" : {self.error_code}"
        if self.message:
            suffix += f'("{self.message}")'
        return f"assert({self.pred.render()}){suffix};"


@dataclass(frozen=True)
class Call(Stmt):
    """``call(target.Transition(args...))`` — trigger an external SM.

    ``target`` must evaluate to an SM reference (a parameter, a state
    variable holding a reference, or ``self`` for recursion).  The paper
    uses this for bidirectional association, e.g.
    ``call(nic_ref.AttachPublicIP(self))``.
    """

    target: Expr
    transition: str
    args: tuple[Expr, ...] = ()

    def render(self) -> str:
        argtext = ", ".join(a.render() for a in self.args)
        return f"call({self.target.render()}.{self.transition}({argtext}));"


@dataclass(frozen=True)
class If(Stmt):
    """``if pred then expr else expr`` from the grammar, with blocks."""

    pred: Pred
    then: tuple[Stmt, ...]
    orelse: tuple[Stmt, ...] = ()


@dataclass(frozen=True)
class Emit(Stmt):
    """``emit(key, value)`` — add a field to the API response payload.

    An extension primitive: create()-class APIs must return identifiers
    and attributes they computed (``emit(vpcId, self.id)``), which plain
    ``read`` cannot express for derived values.
    """

    key: str
    value: Expr

    def render(self) -> str:
        return f"emit({self.key}, {self.value.render()});"


# ---------------------------------------------------------------------------
# Structure: transitions, state machines, modules
# ---------------------------------------------------------------------------

#: The four API categories the paper identifies (§3).
CATEGORIES = ("create", "destroy", "describe", "modify")


@dataclass
class Transition:
    """A named transition — one cloud API mapped onto this SM."""

    name: str
    params: tuple[Param, ...] = ()
    body: tuple[Stmt, ...] = ()
    category: str = ""
    #: True while this transition is an unfinished stub left by the
    #: incremental extraction pass (§4.2); linking must patch it.
    is_stub: bool = False

    def statements(self):
        """Yield every statement in the body, descending into ifs."""
        stack = list(self.body)
        while stack:
            stmt = stack.pop(0)
            yield stmt
            if isinstance(stmt, If):
                stack = list(stmt.then) + list(stmt.orelse) + stack


@dataclass
class StateDecl:
    """A typed state variable declaration (``status: enum``)."""

    name: str
    type: StateType
    default: Expr | None = None

    def render(self) -> str:
        text = f"{self.name}: {self.type.render()}"
        if self.default is not None:
            text += f" = {self.default.render()}"
        return text


@dataclass
class SMSpec:
    """One state machine: a cloud resource type (§3).

    ``parent`` names the containing resource type in the hierarchy of
    state machines (e.g. a subnet is contained in a vpc); the hierarchy
    scopes the impact of SM operations and powers the soundness checks.
    """

    name: str
    states: list[StateDecl] = field(default_factory=list)
    transitions: dict[str, Transition] = field(default_factory=dict)
    parent: str = ""
    doc: str = ""

    def state_names(self) -> list[str]:
        return [decl.name for decl in self.states]

    def state_type(self, name: str) -> StateType | None:
        for decl in self.states:
            if decl.name == name:
                return decl.type
        return None

    @property
    def complexity(self) -> int:
        """The paper's SM complexity metric: #state vars + #transitions."""
        return len(self.states) + len(self.transitions)

    def referenced_sms(self) -> set[str]:
        """SM types this machine references through typed states/params."""
        refs = set()
        for decl in self.states:
            if decl.type.kind == "sm" and decl.type.sm_name:
                refs.add(decl.type.sm_name)
            if (
                decl.type.kind == "list"
                and decl.type.element is not None
                and decl.type.element.kind == "sm"
                and decl.type.element.sm_name
            ):
                refs.add(decl.type.element.sm_name)
        for transition in self.transitions.values():
            for param in transition.params:
                if param.type.kind == "sm" and param.type.sm_name:
                    refs.add(param.type.sm_name)
        if self.parent:
            refs.add(self.parent)
        return refs


@dataclass
class SpecModule:
    """A set of SMs extracted for one cloud service.

    This is the "executable specification" of §4.2: the artifact the
    LLM produces and the interpreter executes.
    """

    service: str
    provider: str = "aws"
    machines: dict[str, SMSpec] = field(default_factory=dict)

    def add(self, spec: SMSpec) -> None:
        self.machines[spec.name] = spec

    def get(self, name: str) -> SMSpec | None:
        return self.machines.get(name)

    def transition_index(self) -> dict[str, tuple[str, Transition]]:
        """Map every transition (API) name to its owning SM.

        Cloud API names are globally unique within a service, which is
        what makes the flat API → SM dispatch of the emulator possible.
        """
        index: dict[str, tuple[str, Transition]] = {}
        for sm_name, spec in self.machines.items():
            for t_name, transition in spec.transitions.items():
                index[t_name] = (sm_name, transition)
        return index

    def api_names(self) -> list[str]:
        """Public API names: helper transitions (``_``-prefixed, added
        by specification linking) are internal and excluded."""
        return sorted(
            name for name in self.transition_index()
            if not name.startswith("_")
        )


# ---------------------------------------------------------------------------
# Cheap structural clones
# ---------------------------------------------------------------------------
#
# Expressions, predicates, statements and params are frozen and freely
# shareable; only the mutable shells (Transition, StateDecl, SMSpec)
# need fresh identity.  This is what makes a parse-memo cache safe:
# linking and alignment repairs replace ``transition.body`` wholesale
# on the shell, never mutating shared nodes in place, so clones from
# one memoized parse cannot observe each other's patches.


def clone_transition(transition: Transition) -> Transition:
    """A fresh Transition shell sharing the frozen params/body nodes."""
    return Transition(
        name=transition.name,
        params=transition.params,
        body=transition.body,
        category=transition.category,
        is_stub=transition.is_stub,
    )


def clone_spec(spec: SMSpec) -> SMSpec:
    """A fresh SMSpec (fresh decl/transition shells, shared leaves)."""
    return SMSpec(
        name=spec.name,
        states=[
            StateDecl(decl.name, decl.type, decl.default)
            for decl in spec.states
        ],
        transitions={
            name: clone_transition(transition)
            for name, transition in spec.transitions.items()
        },
        parent=spec.parent,
        doc=spec.doc,
    )
