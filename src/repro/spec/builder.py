"""A fluent Python API for authoring SM specs without the DSL.

Downstream users extending a learned emulator (adding a custom
resource, stubbing an internal service) shouldn't need to concatenate
DSL strings.  The builder produces the same validated
:class:`~repro.spec.ast.SMSpec` values the parser does, and
serializes through the standard serializer::

    spec = (
        sm("queue")
        .state("depth", "int", default=0)
        .state("paused", "bool", default=False)
        .create("CreateQueue")
        .modify("SendMessage")
            .require("queue_id")
            .check("paused == false", code="QueuePaused")
            .write("depth", "depth + 1")          # expressions parse
        .done()
    )
"""

from __future__ import annotations

from . import ast
from .errors import SpecSyntaxError
from .parser import Parser
from .types import (
    ANY,
    Param,
    StateType,
    enum_of,
    list_of,
    sm_of,
)
from .validator import validate_sm


def _parse_expr(text: str) -> ast.Expr:
    parser = Parser(text)
    expr = parser.parse_expr()
    parser.expect("eof")
    return expr


def _parse_pred(text: str) -> ast.Pred:
    parser = Parser(text)
    pred = parser.parse_pred()
    parser.expect("eof")
    return pred


def _state_type(spec: str | StateType) -> StateType:
    if isinstance(spec, StateType):
        return spec
    text = spec.strip()
    if text.startswith("enum(") and text.endswith(")"):
        values = [v.strip() for v in text[5:-1].split(",") if v.strip()]
        return enum_of(*values)
    if text.startswith("SM<") and text.endswith(">"):
        return sm_of(text[3:-1])
    if text == "SM":
        return StateType("sm")
    if text.startswith("list<") and text.endswith(">"):
        return list_of(_state_type(text[5:-1]))
    simple = {
        "str": StateType("str"), "string": StateType("str"),
        "int": StateType("int"), "bool": StateType("bool"),
        "float": StateType("float"), "list": StateType("list"),
        "map": StateType("map"), "enum": StateType("enum"),
        "any": ANY,
    }
    if text in simple:
        return simple[text]
    raise SpecSyntaxError(f"unknown type spelling {text!r}")


class TransitionBuilder:
    """Accumulates one transition's params and body."""

    def __init__(self, parent: "SMBuilder", name: str, category: str):
        self._parent = parent
        self._name = name
        self._category = category
        self._params: list[Param] = []
        self._body: list[ast.Stmt] = []

    # -- signature ----------------------------------------------------------

    def param(self, name: str, type: str | StateType = "any"
              ) -> "TransitionBuilder":
        self._params.append(Param(name, _state_type(type)))
        return self

    # -- statements -----------------------------------------------------------

    def require(self, param_name: str,
                code: str = "MissingParameter") -> "TransitionBuilder":
        """Assert the parameter is present (declaring it if needed)."""
        if all(p.name != param_name for p in self._params):
            self._params.append(Param(param_name, ANY))
        self._body.append(
            ast.Assert(
                ast.Truthy(ast.Func("exists", (ast.Name(param_name),))),
                code,
            )
        )
        return self

    def check(self, predicate: str, code: str = "OperationFailure",
              message: str = "") -> "TransitionBuilder":
        self._body.append(ast.Assert(_parse_pred(predicate), code, message))
        return self

    def write(self, state: str, value: str) -> "TransitionBuilder":
        self._body.append(ast.Write(state, _parse_expr(value)))
        return self

    def read(self, state: str, var: str = "") -> "TransitionBuilder":
        self._body.append(ast.Read(state, var or state))
        return self

    def emit(self, key: str, value: str) -> "TransitionBuilder":
        self._body.append(ast.Emit(key, _parse_expr(value)))
        return self

    def call(self, target: str, transition: str,
             *args: str) -> "TransitionBuilder":
        self._body.append(
            ast.Call(
                _parse_expr(target),
                transition,
                tuple(_parse_expr(a) for a in args),
            )
        )
        return self

    def when(self, predicate: str, then: list[ast.Stmt],
             orelse: list[ast.Stmt] | None = None) -> "TransitionBuilder":
        self._body.append(
            ast.If(_parse_pred(predicate), tuple(then),
                   tuple(orelse or ()))
        )
        return self

    # -- chaining ---------------------------------------------------------------

    def _build(self) -> ast.Transition:
        return ast.Transition(
            name=self._name,
            params=tuple(self._params),
            body=tuple(self._body),
            category=self._category,
        )

    def __getattr__(self, name: str):
        """Unknown attributes fall through to the SM builder, so a new
        transition (or ``done``) can start without explicit closing."""
        self._parent._commit(self)
        return getattr(self._parent, name)


class SMBuilder:
    """Fluent construction of one state machine."""

    def __init__(self, name: str, parent: str = "", doc: str = ""):
        self._spec = ast.SMSpec(name=name, parent=parent, doc=doc)
        self._open: TransitionBuilder | None = None

    def _commit(self, transition: TransitionBuilder) -> None:
        built = transition._build()
        self._spec.transitions[built.name] = built
        if self._open is transition:
            self._open = None

    def state(self, name: str, type: str | StateType = "str",
              default: object = None) -> "SMBuilder":
        decl_default = None if default is None else ast.Literal(default)
        self._spec.states.append(
            ast.StateDecl(name, _state_type(type), decl_default)
        )
        return self

    def _transition(self, name: str, category: str) -> TransitionBuilder:
        if self._open is not None:
            self._commit(self._open)
        self._open = TransitionBuilder(self, name, category)
        return self._open

    def create(self, name: str) -> TransitionBuilder:
        return self._transition(name, "create")

    def destroy(self, name: str) -> TransitionBuilder:
        return self._transition(name, "destroy")

    def describe(self, name: str) -> TransitionBuilder:
        return self._transition(name, "describe")

    def modify(self, name: str) -> TransitionBuilder:
        return self._transition(name, "modify")

    def done(self) -> ast.SMSpec:
        """Finish, validate and return the SM."""
        if self._open is not None:
            self._commit(self._open)
        validate_sm(self._spec)
        return self._spec


def sm(name: str, parent: str = "", doc: str = "") -> SMBuilder:
    """Start building a state machine."""
    return SMBuilder(name, parent=parent, doc=doc)
