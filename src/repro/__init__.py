"""Learned cloud emulators: a reproduction of "A Case for Learned
Cloud Emulators" (HotNets 2025).

The package implements the paper's full workflow (Fig. 2):

1. :mod:`repro.docs` — structured documentation catalogs, provider-
   style renderers (AWS PDF / Azure web), and the wrangler that parses
   rendered pages back (§4.1);
2. :mod:`repro.llm` — the (simulated) LLM that reads per-resource
   documentation and emits SM specs, with seeded fault models
   reproducing §5's generation-error taxonomy;
3. :mod:`repro.spec` — the SM specification grammar (Fig. 1): lexer,
   parser, AST, validator, serializer;
4. :mod:`repro.extraction` — dependency graphs, incremental extraction
   with stubs, specification linking, consistency checks (§4.2);
5. :mod:`repro.interpreter` — the emulator framework that executes SM
   specs as a mock cloud;
6. :mod:`repro.cloud` — the reference cloud used as alignment ground
   truth (the offline stand-in for the real provider);
7. :mod:`repro.alignment` — symbolic classes, guided trace generation,
   differential execution, diagnosis, the repair loop, and error
   decoding (§4.3);
8. :mod:`repro.baselines` — the Moto-like handcrafted emulator and the
   direct-to-code baseline;
9. :mod:`repro.analysis` — complexity metrics, coverage, anti-patterns,
   the cloud gym and multi-cloud comparison (§4.4);
10. :mod:`repro.scenarios` — the evaluation traces behind Fig. 3.

Quickstart::

    from repro.core import build_learned_emulator

    build = build_learned_emulator("ec2")
    emulator = build.make_backend()
    vpc = emulator.invoke("CreateVpc", {"CidrBlock": "10.0.0.0/16"})
"""

from .core import build_learned_emulator, LearnedEmulatorBuild

__version__ = "1.0.0"

__all__ = ["build_learned_emulator", "LearnedEmulatorBuild", "__version__"]
