"""The reference cloud: the ground truth the emulator is aligned against.

The paper aligns emulators against the *actual* cloud.  Offline, this
engine plays that role: it enforces every behaviour in the service
catalog — including the rules documentation omits — with an
implementation deliberately disjoint from the SM interpreter:

- entities are plain dicts, not state machines;
- identifiers are AWS-style hex strings (``vpc-0f3a9c...``), not the
  emulator's counters, so differs cannot cheat by comparing ids;
- cross-resource effects mutate the target entity directly instead of
  going through helper transitions;
- checks evaluate with its own predicate code (its own CIDR logic).

Error messages describe the violated condition in the documentation's
own prose, the way real cloud errors describe their cause; the
alignment phase parses these messages to learn undocumented rules
(§4.3: alignment "enables us to learn how the cloud produces error
logs").
"""

from __future__ import annotations

import hashlib
import ipaddress
from copy import deepcopy
from dataclasses import dataclass, field
from functools import lru_cache

from ..docs.model import ApiDoc, ResourceDoc, Rule, ServiceDoc
from ..docs.prose import render_rule
from ..interpreter.errors import ApiResponse


class _CloudFailure(Exception):
    """Internal control flow for a failed check."""

    def __init__(self, code: str, message: str):
        self.code = code
        self.message = message
        super().__init__(code)


def _normalize(key: str) -> str:
    return key.replace("_", "").replace("-", "").lower()


@lru_cache(maxsize=4096)
def _parse_cidr_str(value: str) -> ipaddress.IPv4Network | None:
    if "/" not in value:
        return None
    try:
        return ipaddress.IPv4Network(value, strict=False)
    except ValueError:
        return None


def _parse_cidr(value: object) -> ipaddress.IPv4Network | None:
    """Parsed (immutable, safely shareable) network, or ``None``.

    CIDR strings recur heavily across checks — every subnet create
    re-validates against every tracked sibling — so parses are
    memoized process-wide.
    """
    if not isinstance(value, str):
        return None
    return _parse_cidr_str(value)


def _camel_to_prefix(name: str) -> str:
    parts = name.split("_")
    if len(name) > 12:
        return "".join(part[0] for part in parts)
    return name


@dataclass
class Entity:
    """One live cloud resource: a typed bag of attributes."""

    id: str
    type: str
    state: dict = field(default_factory=dict)


def _default_state(res: ResourceDoc) -> dict:
    state: dict = {}
    for attribute in res.attributes:
        value: object = attribute.default
        if value is None and attribute.type == "List":
            value = []
        if value is None and attribute.type == "Map":
            value = {}
        state[attribute.name] = value
    return state


class ReferenceCloud:
    """Executes a service catalog's full behaviour, documented or not."""

    def __init__(self, service_doc: ServiceDoc, seed: int = 11):
        self.doc = service_doc
        self.seed = seed
        self.entities: dict[str, Entity] = {}
        self._counter = 0
        #: Active undo journal: (created entity ids, id -> (entity,
        #: pre-call state)).  Only set for the duration of one invoke.
        self._journal: tuple[list[str], dict[str, tuple[Entity, dict]]] | None = None
        self._index: dict[str, tuple[ResourceDoc, ApiDoc]] = {}
        for res in service_doc.resources:
            for api in res.apis:
                self._index[api.name] = (res, api)

    # -- public backend surface ------------------------------------------------

    def api_names(self) -> list[str]:
        return sorted(self._index)

    def supports(self, api: str) -> bool:
        return api in self._index

    def reset(self) -> None:
        self.entities = {}
        self._counter = 0

    def invoke(self, api: str, params: dict | None = None) -> ApiResponse:
        params = params or {}
        entry = self._index.get(api)
        if entry is None:
            return ApiResponse.fail(
                "InvalidAction",
                f"The action {api} is not valid for this endpoint.",
            )
        res, api_doc = entry
        if api_doc.category == "describe" and not api_doc.params:
            ids = sorted(
                entity.id for entity in self.entities.values()
                if entity.type == res.name
            )
            return ApiResponse.ok({"ids": ids, "count": len(ids)})

        request = {_normalize(k): v for k, v in params.items()}
        # Failure rollback is an undo journal, not a registry snapshot:
        # entities created and entity states touched by this call are
        # recorded lazily (see ``_touch``) and restored on failure.  A
        # shallow ``state`` copy is a faithful undo because every
        # effect branch rebinds attributes to *fresh* containers —
        # ``_apply`` never mutates an existing list/dict in place.
        created: list[str] = []
        touched: dict[str, tuple[Entity, dict]] = {}
        self._journal = (created, touched)
        try:
            refs = self._resolve_references(api_doc, request)
            subject = self._resolve_subject(res, api_doc, request)
            data = self._execute(res, api_doc, subject, request, refs)
        except _CloudFailure as failure:
            for entity_id in created:
                self.entities.pop(entity_id, None)
            for entity, saved in touched.values():
                entity.state = saved
            return ApiResponse.fail(failure.code, failure.message)
        finally:
            self._journal = None
        if api_doc.category == "destroy":
            self.entities.pop(subject.id, None)
        if api_doc.category == "create":
            data.setdefault("id", subject.id)
            data.setdefault(f"{res.name}_id", subject.id)
        return ApiResponse.ok(data)

    # -- resolution -------------------------------------------------------------

    def _notfound_code(self, res_name: str) -> str:
        for res in self.doc.resources:
            if res.name == res_name and res.notfound_code:
                return res.notfound_code
        camel = "".join(part.capitalize() for part in res_name.split("_"))
        return f"Invalid{camel}ID.NotFound"

    def _fresh_id(self, res_name: str) -> str:
        self._counter += 1
        digest = hashlib.sha256(
            f"{self.seed}:{res_name}:{self._counter}".encode()
        ).hexdigest()[:12]
        return f"{_camel_to_prefix(res_name)}-0{digest}"

    def _resolve_references(
        self, api_doc: ApiDoc, request: dict
    ) -> dict[str, Entity]:
        refs: dict[str, Entity] = {}
        for param in api_doc.params:
            if param.type != "Reference":
                continue
            value = request.get(_normalize(param.name))
            if value is None:
                continue
            entity = self.entities.get(str(value))
            if entity is None or (param.ref and entity.type != param.ref):
                raise _CloudFailure(
                    self._notfound_code(param.ref or "resource"),
                    f"The ID '{value}' does not exist",
                )
            refs[param.name] = entity
        return refs

    def _resolve_subject(
        self, res: ResourceDoc, api_doc: ApiDoc, request: dict
    ) -> Entity:
        if api_doc.category == "create":
            entity = Entity(
                id=self._fresh_id(res.name),
                type=res.name,
                state=_default_state(res),
            )
            self.entities[entity.id] = entity
            if self._journal is not None:
                self._journal[0].append(entity.id)
            return entity
        subject_key = _normalize(f"{res.name}_id")
        value = request.get(subject_key)
        if value is None:
            raise _CloudFailure(
                "MissingParameter",
                f"The request must contain the parameter {res.name}_id",
            )
        entity = self.entities.get(str(value))
        if entity is None or entity.type != res.name:
            raise _CloudFailure(
                self._notfound_code(res.name),
                f"The {res.name} ID '{value}' does not exist",
            )
        return entity

    # -- execution -----------------------------------------------------------------

    def _execute(
        self,
        res: ResourceDoc,
        api_doc: ApiDoc,
        subject: Entity,
        request: dict,
        refs: dict[str, Entity],
    ) -> dict:
        def param_value(name: str):
            return request.get(_normalize(name))

        # All checks run before any effect, regardless of documented
        # interleaving: cloud APIs validate, then act.
        for behaviour in api_doc.rules:
            if behaviour.is_check:
                self._check(behaviour, subject, param_value, refs)
        data: dict = {}
        for behaviour in api_doc.rules:
            if not behaviour.is_check:
                self._apply(behaviour, res, api_doc, subject, param_value,
                            refs, data)
        return data

    def _fail(self, behaviour: Rule) -> None:
        raise _CloudFailure(behaviour.error_code, render_rule(behaviour))

    def _touch(self, entity: Entity) -> None:
        """Journal ``entity``'s state before its first mutation."""
        journal = self._journal
        if journal is not None and entity.id not in journal[1]:
            journal[1][entity.id] = (entity, entity.state.copy())

    def _check(self, behaviour: Rule, subject: Entity, param_value, refs) -> None:
        kind = behaviour.kind
        if kind == "require_param":
            if param_value(str(behaviour["param"])) is None:
                self._fail(behaviour)
        elif kind == "require_one_of":
            value = param_value(str(behaviour["param"]))
            if value is not None and value not in tuple(behaviour["values"]):  # type: ignore[arg-type]
                self._fail(behaviour)
        elif kind == "check_valid_cidr":
            value = param_value(str(behaviour["param"]))
            if value is not None and not self._is_cidr(value):
                self._fail(behaviour)
        elif kind == "check_prefix_between":
            value = param_value(str(behaviour["param"]))
            if value is None:
                return
            prefix = self._prefix(value)
            if prefix is None or not (
                int(behaviour["lo"]) <= prefix <= int(behaviour["hi"])  # type: ignore[arg-type]
            ):
                self._fail(behaviour)
        elif kind == "check_cidr_within":
            value = param_value(str(behaviour["param"]))
            ref = refs.get(str(behaviour["ref"]))
            if value is None or ref is None:
                self._fail(behaviour)
                return
            outer = ref.state.get(str(behaviour["ref_attr"]))
            inner_net = _parse_cidr(value)
            outer_net = _parse_cidr(outer)
            if inner_net is None or outer_net is None:
                self._fail(behaviour)
                return
            if not inner_net.subnet_of(outer_net):
                self._fail(behaviour)
        elif kind == "check_no_overlap":
            value = param_value(str(behaviour["param"]))
            ref = refs.get(str(behaviour["ref"]))
            net = _parse_cidr(value) if ref is not None else None
            if net is None:
                return
            blocks = ref.state.get(str(behaviour["list_attr"])) or []
            for other in blocks:
                other_net = _parse_cidr(other)
                if other_net is not None and net.overlaps(other_net):
                    self._fail(behaviour)
        elif kind == "check_attr_is":
            if subject.state.get(str(behaviour["attr"])) != behaviour["value"]:
                self._fail(behaviour)
        elif kind == "check_attr_is_not":
            if subject.state.get(str(behaviour["attr"])) == behaviour["value"]:
                self._fail(behaviour)
        elif kind == "check_attr_set":
            value = subject.state.get(str(behaviour["attr"]))
            if value is None or value == "":
                self._fail(behaviour)
        elif kind == "check_attr_unset":
            value = subject.state.get(str(behaviour["attr"]))
            if not (value is None or value == ""):
                self._fail(behaviour)
        elif kind == "check_list_empty":
            if subject.state.get(str(behaviour["attr"])):
                self._fail(behaviour)
        elif kind == "check_attr_matches_ref":
            ref = refs.get(str(behaviour["ref"]))
            if ref is None:
                self._fail(behaviour)
                return
            mine = subject.state.get(str(behaviour["attr"]))
            theirs = ref.state.get(str(behaviour["ref_attr"]))
            if mine != theirs:
                self._fail(behaviour)
        elif kind == "check_ref_attr_is":
            ref = refs.get(str(behaviour["ref"]))
            if ref is None:
                self._fail(behaviour)
                return
            if ref.state.get(str(behaviour["ref_attr"])) != behaviour["value"]:
                self._fail(behaviour)
        elif kind == "check_in_list":
            value = param_value(str(behaviour["param"]))
            items = subject.state.get(str(behaviour["attr"])) or []
            if value not in items:
                self._fail(behaviour)
        elif kind == "check_not_in_list":
            value = param_value(str(behaviour["param"]))
            items = subject.state.get(str(behaviour["attr"])) or []
            if value in items:
                self._fail(behaviour)
        elif kind == "check_in_map":
            key = param_value(str(behaviour["key_param"]))
            mapping = subject.state.get(str(behaviour["attr"])) or {}
            if key not in mapping:
                self._fail(behaviour)
        elif kind == "check_param_implies_attr":
            value = param_value(str(behaviour["param"]))
            if value is not None and value == behaviour["value"]:
                if subject.state.get(str(behaviour["attr"])) != behaviour[
                    "attr_value"
                ]:
                    self._fail(behaviour)
        else:
            raise AssertionError(f"unhandled check kind {kind}")

    def _apply(
        self,
        behaviour: Rule,
        res: ResourceDoc,
        api_doc: ApiDoc,
        subject: Entity,
        param_value,
        refs: dict[str, Entity],
        data: dict,
    ) -> None:
        kind = behaviour.kind
        self._touch(subject)
        if kind == "set_attr_param":
            value = param_value(str(behaviour["param"]))
            if value is not None:
                subject.state[str(behaviour["attr"])] = value
        elif kind == "set_attr_const":
            subject.state[str(behaviour["attr"])] = behaviour["value"]
        elif kind == "set_attr_fresh":
            subject.state[str(behaviour["attr"])] = self._fresh_id(
                str(behaviour["attr"])
            )
        elif kind == "clear_attr":
            subject.state[str(behaviour["attr"])] = None
        elif kind == "read_attr":
            attr = str(behaviour["attr"])
            data[attr] = deepcopy(subject.state.get(attr))
        elif kind == "link_ref":
            ref = refs.get(str(behaviour["param"]))
            if ref is not None:
                subject.state[str(behaviour["attr"])] = ref.id
        elif kind == "call_ref":
            ref = refs.get(str(behaviour["param"]))
            if ref is not None:
                self._call(ref, str(behaviour["transition"]), subject)
        elif kind == "call_attr":
            target_id = subject.state.get(str(behaviour["attr"]))
            target = self.entities.get(str(target_id)) if target_id else None
            if target is not None:
                self._call(target, str(behaviour["transition"]), subject)
        elif kind == "append_to_attr":
            value = param_value(str(behaviour["param"]))
            if value is not None:
                items = list(subject.state.get(str(behaviour["attr"])) or [])
                items.append(value)
                subject.state[str(behaviour["attr"])] = items
        elif kind == "remove_from_attr":
            value = param_value(str(behaviour["param"]))
            items = list(subject.state.get(str(behaviour["attr"])) or [])
            if value in items:
                items.remove(value)
            subject.state[str(behaviour["attr"])] = items
        elif kind == "map_put":
            key = param_value(str(behaviour["key_param"]))
            value = param_value(str(behaviour["value_param"]))
            mapping = dict(subject.state.get(str(behaviour["attr"])) or {})
            mapping[key] = value
            subject.state[str(behaviour["attr"])] = mapping
        elif kind == "map_remove":
            key = param_value(str(behaviour["key_param"]))
            mapping = dict(subject.state.get(str(behaviour["attr"])) or {})
            mapping.pop(key, None)
            subject.state[str(behaviour["attr"])] = mapping
        elif kind == "map_read":
            key = param_value(str(behaviour["key_param"]))
            mapping = subject.state.get(str(behaviour["attr"])) or {}
            data["value"] = deepcopy(mapping.get(key))
        elif kind == "track_in_ref":
            ref = refs.get(str(behaviour["param"]))
            if ref is not None:
                self._touch(ref)
                source = self._source_value(behaviour, subject, param_value)
                items = list(
                    ref.state.get(str(behaviour["list_attr"])) or []
                )
                items.append(source)
                ref.state[str(behaviour["list_attr"])] = items
        elif kind == "untrack_in_attr":
            target_id = subject.state.get(str(behaviour["attr"]))
            target = self.entities.get(str(target_id)) if target_id else None
            if target is not None:
                self._touch(target)
                source = self._source_value(behaviour, subject, param_value)
                items = list(
                    target.state.get(str(behaviour["list_attr"])) or []
                )
                if source in items:
                    items.remove(source)
                target.state[str(behaviour["list_attr"])] = items
        else:
            raise AssertionError(f"unhandled effect kind {kind}")

    def _source_value(self, behaviour: Rule, subject: Entity, param_value):
        source = str(behaviour["source"])
        if source == "id":
            return subject.id
        value = param_value(source)
        if value is not None:
            return value
        return subject.state.get(source)

    def _call(self, target: Entity, transition: str, caller: Entity) -> None:
        """Run another resource's operation on ``target`` (bidirectional
        association).  The caller's identity binds to the operation's
        first reference parameter."""
        entry = self._index.get(transition)
        if entry is None:
            return
        __, api_doc = entry
        request: dict = {f"{target.type}_id": target.id}
        for param in api_doc.params:
            if param.type == "Reference" and param.ref == caller.type:
                request[param.name] = caller.id
        refs = self._resolve_references(
            api_doc, {_normalize(k): v for k, v in request.items()}
        )
        def call_param(name: str):
            return request.get(name) or request.get(_normalize(name))
        for behaviour in api_doc.rules:
            if behaviour.is_check:
                self._check(behaviour, target, call_param, refs)
        data: dict = {}
        for behaviour in api_doc.rules:
            if not behaviour.is_check:
                self._apply(behaviour, None, api_doc, target, call_param,
                            refs, data)

    # -- local predicate helpers (independent of interpreter builtins) -----

    @staticmethod
    def _is_cidr(value: object) -> bool:
        return _parse_cidr(value) is not None

    @classmethod
    def _prefix(cls, value: object) -> int | None:
        network = _parse_cidr(value)
        return None if network is None else network.prefixlen
