"""Reference clouds: the ground truth for alignment and accuracy.

:class:`ReferenceCloud` executes a service catalog's full behaviour
(documented and undocumented) with an implementation disjoint from the
SM interpreter.  ``make_cloud`` builds one per service, including the
Azure-flavoured backend used by the multi-cloud experiment.
"""

from typing import Protocol

from ..docs import build_catalog
from ..interpreter.errors import ApiResponse
from .engine import Entity, ReferenceCloud


class CloudBackend(Protocol):
    """What trace running requires of any backend (cloud or emulator)."""

    def invoke(self, api: str, params: dict | None = None) -> ApiResponse:
        ...  # pragma: no cover - protocol

    def supports(self, api: str) -> bool:
        ...  # pragma: no cover - protocol

    def reset(self) -> None:
        ...  # pragma: no cover - protocol


def make_cloud(service: str, seed: int = 11) -> ReferenceCloud:
    """Build the reference cloud for a service catalog."""
    return ReferenceCloud(build_catalog(service), seed=seed)


__all__ = ["CloudBackend", "Entity", "make_cloud", "ReferenceCloud"]
