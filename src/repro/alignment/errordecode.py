"""Rich error decoding (§4.3, last paragraph).

Error codes must match the cloud exactly; error *messages* are for
developers, and the emulator can do better than the cloud — decode the
failure against the SM specification and the live emulated state to
name the root cause and suggest concrete repairs ("delete subnet
subnet-1 before deleting vpc-1").
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..interpreter.emulator import Emulator, normalize_key
from ..interpreter.errors import ApiResponse
from ..spec import ast
from .symbolic import classify_assert, transition_asserts


@dataclass
class ErrorExplanation:
    """A decoded failure: cause plus actionable repairs."""

    code: str
    summary: str
    root_cause: str = ""
    suggested_actions: list[str] = field(default_factory=list)

    def render(self) -> str:
        lines = [f"{self.code}: {self.summary}"]
        if self.root_cause:
            lines.append(f"Root cause: {self.root_cause}")
        for action in self.suggested_actions:
            lines.append(f"  - {action}")
        return "\n".join(lines)


class ErrorDecoder:
    """Decodes failed responses against the spec and live state."""

    def __init__(self, emulator: Emulator):
        self.emulator = emulator
        self.module = emulator.module

    def explain(
        self, api: str, params: dict, response: ApiResponse
    ) -> ErrorExplanation:
        if response.success:
            return ErrorExplanation(code="", summary="the call succeeded")
        explanation = ErrorExplanation(
            code=response.error_code,
            summary=response.error_message or "the call failed",
        )
        entry = self.module.transition_index().get(api)
        if entry is None:
            explanation.root_cause = f"{api} is not a known API"
            explanation.suggested_actions.append(
                "check the action name against the service's API reference"
            )
            return explanation
        sm_name, transition = entry
        spec = self.module.machines[sm_name]
        candidates = []
        for stmt in transition_asserts(transition):
            if stmt.error_code != response.error_code:
                continue
            pattern = classify_assert(spec, transition, stmt)
            if pattern.kind == "guarded":
                pattern = pattern["inner"]  # type: ignore[assignment]
            candidates.append(pattern)
        if not candidates:
            self._decode_framework_error(explanation, sm_name, params)
            return explanation
        # Several asserts may share an error code (three different
        # dependency checks on DeleteVpc, say); decode the one the live
        # state actually violates.
        state = self._subject_state(spec, params) or {}
        chosen = candidates[0]
        for pattern in candidates:
            if self._pattern_violated(pattern, state):
                chosen = pattern
                break
        self._decode_pattern(explanation, chosen, spec, params)
        return explanation

    @staticmethod
    def _pattern_violated(pattern, state: dict) -> bool:
        kind = pattern.kind
        if kind == "list_empty":
            return bool(state.get(str(pattern["attr"])))
        if kind == "attr_unset":
            return bool(state.get(str(pattern["attr"])))
        if kind == "attr_set":
            return not state.get(str(pattern["attr"]))
        if kind == "attr_equals":
            return state.get(str(pattern["attr"])) != pattern["value"]
        if kind == "attr_differs":
            return state.get(str(pattern["attr"])) == pattern["value"]
        return False

    # -- helpers ---------------------------------------------------------------

    def _subject_state(self, spec: ast.SMSpec, params: dict) -> dict | None:
        key = normalize_key(f"{spec.name}_id")
        request = {normalize_key(k): v for k, v in params.items()}
        subject_id = request.get(key)
        if subject_id is None:
            return None
        instance = self.emulator.registry.get(str(subject_id))
        return dict(instance.state) if instance is not None else None

    def _decode_pattern(self, explanation, pattern, spec, params) -> None:
        kind = pattern.kind
        state = self._subject_state(spec, params) or {}
        if kind == "list_empty":
            attr = str(pattern["attr"])
            blocking = state.get(attr) or []
            explanation.root_cause = (
                f"the {spec.name} still references {len(blocking)} "
                f"dependent resource(s) in its '{attr}' list"
            )
            for item in blocking[:5]:
                explanation.suggested_actions.append(
                    f"delete or detach {item} first"
                )
            return
        if kind == "attr_unset":
            attr = str(pattern["attr"])
            holder = state.get(attr)
            explanation.root_cause = (
                f"'{attr}' is still set"
                + (f" (to {holder})" if holder else "")
            )
            explanation.suggested_actions.append(
                f"clear the association on '{attr}' before retrying"
            )
            return
        if kind == "attr_set":
            attr = str(pattern["attr"])
            explanation.root_cause = f"'{attr}' is not set on the resource"
            explanation.suggested_actions.append(
                f"establish '{attr}' first (create or associate the "
                "depended-on resource)"
            )
            return
        if kind == "attr_equals":
            attr = str(pattern["attr"])
            wanted = pattern["value"]
            current = state.get(attr)
            explanation.root_cause = (
                f"'{attr}' is {current!r}, but this API requires {wanted!r}"
            )
            driver = self._writer_api(spec, attr, wanted)
            if driver:
                explanation.suggested_actions.append(
                    f"call {driver} to bring '{attr}' to {wanted!r}"
                )
            return
        if kind == "one_of":
            explanation.root_cause = (
                f"parameter '{pattern['param']}' must be one of "
                f"{list(pattern['values'])}"
            )
            return
        if kind in ("valid_cidr", "prefix_between", "cidr_within",
                    "no_overlap"):
            explanation.root_cause = (
                f"parameter '{pattern['param']}' is not an acceptable "
                "CIDR block for this operation"
            )
            explanation.suggested_actions.append(
                "choose an IPv4 CIDR inside the parent range with a "
                "netmask the service accepts"
            )
            return
        if kind == "require_param":
            explanation.root_cause = (
                f"required parameter '{pattern['param']}' is missing"
            )
            return
        if kind == "param_implies_attr":
            explanation.root_cause = (
                f"setting '{pattern['param']}' to {pattern['value']!r} "
                f"requires '{pattern['attr']}' to be "
                f"{pattern['attr_value']!r} first"
            )
            driver = self._writer_api(spec, str(pattern["attr"]),
                                      pattern["attr_value"])
            if driver:
                explanation.suggested_actions.append(
                    f"call {driver} first"
                )
            return
        explanation.root_cause = "a documented constraint was violated"

    def _decode_framework_error(self, explanation, sm_name, params) -> None:
        if "NotFound" in explanation.code or explanation.code.endswith(
            "NotFoundException"
        ):
            # Prefer the resource type named by the error code itself:
            # a CreateSubnet can fail with InvalidVpcID.NotFound when
            # the *reference*, not the subject, is missing.
            named = sm_name
            if explanation.code.startswith("Invalid") and (
                explanation.code.endswith("ID.NotFound")
            ):
                camel = explanation.code[len("Invalid"):-len("ID.NotFound")]
                named = "".join(
                    ("_" + c.lower()) if c.isupper() else c for c in camel
                ).lstrip("_")
            explanation.root_cause = (
                f"the referenced {named} does not exist (it may have "
                "been deleted, or the identifier is from another account "
                "or region)"
            )
            explanation.suggested_actions.append(
                f"list existing {named} resources and re-check the id"
            )
        elif explanation.code == "MissingParameter":
            explanation.root_cause = (
                f"the request must identify the target {sm_name}"
            )

    def _writer_api(self, spec: ast.SMSpec, attr: str, value: object) -> str:
        for transition in spec.transitions.values():
            if transition.name.startswith("_") or transition.is_stub:
                continue
            for stmt in transition.statements():
                if (
                    isinstance(stmt, ast.Write)
                    and stmt.state == attr
                    and isinstance(stmt.value, ast.Literal)
                    and stmt.value.value == value
                ):
                    return transition.name
        return ""
