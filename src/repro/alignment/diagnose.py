"""Divergence diagnosis and repair (§4.3).

For each divergence the LLM is fed the delta and asked: is the
difference attributable to the extracted spec, or to the cloud
documentation?

- If the violated behaviour appears in the documentation, the spec
  dropped it — a *spec error*; the repair is targeted regeneration of
  the resource from its documentation.
- If the documentation never mentions it, it is a *documentation gap*;
  the repair learns the rule from the cloud's error message (real
  clouds describe the violated condition in their error text) and
  splices the corresponding assert into the transition.
- Spurious or miscoded asserts are identified by the emulator's own
  error code and removed or recoded.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..docs.model import Rule, ServiceDoc
from ..llm.client import SimulatedLLM
from ..llm.synthesis import attribute_state_type, RuleCompiler, SpecSynthesizer
from ..llm.faults import FaultModel, PERFECT_PROFILE
from ..spec import ast
from .differ import Divergence

DOC_GAP = "doc_gap"
SPEC_ERROR = "spec_error"
UNKNOWN = "unknown"


@dataclass
class Diagnosis:
    """The verdict for one divergence."""

    kind: str
    divergence: Divergence
    sm: str = ""
    api: str = ""
    learned_rule: Rule | None = None
    detail: str = ""


def _rule_documented(service_doc: ServiceDoc, api: str, learned: Rule) -> bool:
    entry = service_doc.find_api(api)
    if entry is None:
        return False
    __, api_doc = entry
    return any(
        behaviour.kind == learned.kind
        and behaviour.as_dict() == learned.as_dict()
        for behaviour in api_doc.documented_rules()
    )


def diagnose(
    divergence: Divergence,
    module: ast.SpecModule,
    service_doc: ServiceDoc,
    llm: SimulatedLLM,
) -> Diagnosis:
    """Attribute a divergence to the spec or to the documentation."""
    entry = module.transition_index().get(divergence.api)
    if entry is None:
        return Diagnosis(UNKNOWN, divergence,
                         detail=f"no transition for API {divergence.api}")
    sm_name, __ = entry

    if divergence.emulator_too_permissive:
        learned = llm.diagnose_error_message(
            divergence.cloud_response.error_message
        )
        if learned is None:
            return Diagnosis(
                UNKNOWN, divergence, sm=sm_name, api=divergence.api,
                detail="cloud error message carries no recoverable rule",
            )
        learned = learned.with_fields(
            code=divergence.cloud_response.error_code
        )
        if _rule_documented(service_doc, divergence.api, learned):
            return Diagnosis(
                SPEC_ERROR, divergence, sm=sm_name, api=divergence.api,
                learned_rule=learned,
                detail="documented check missing from the extracted spec",
            )
        return Diagnosis(
            DOC_GAP, divergence, sm=sm_name, api=divergence.api,
            learned_rule=learned,
            detail="cloud enforces a rule the documentation omits",
        )

    if divergence.emulator_too_strict or divergence.wrong_error_code:
        return Diagnosis(
            SPEC_ERROR, divergence, sm=sm_name, api=divergence.api,
            detail="spurious or miscoded assert in the extracted spec",
        )
    return Diagnosis(
        SPEC_ERROR, divergence, sm=sm_name, api=divergence.api,
        detail="response payload mismatch; regenerate from documentation",
    )


@dataclass
class Repair:
    """One applied fix."""

    kind: str  # 'learned_assert' | 'regenerated' | 'removed_assert' | 'recoded_assert'
    sm: str
    api: str
    detail: str = ""


def apply_repair(
    diagnosis: Diagnosis,
    module: ast.SpecModule,
    service_doc: ServiceDoc,
    seed: int = 7,
) -> Repair | None:
    """Mutate the module to close one diagnosed divergence."""
    if diagnosis.kind == UNKNOWN:
        return None
    spec = module.get(diagnosis.sm)
    if spec is None:
        return None
    transition = spec.transitions.get(diagnosis.api)
    if transition is None:
        return None
    divergence = diagnosis.divergence

    if divergence.emulator_too_strict:
        return _remove_assert(diagnosis, spec, transition)
    if divergence.wrong_error_code:
        return _recode_assert(diagnosis, spec, transition)
    if diagnosis.kind == DOC_GAP and diagnosis.learned_rule is not None:
        return _insert_learned_assert(diagnosis, module, service_doc)
    # Spec errors with documentation backing: targeted regeneration.
    return _regenerate(diagnosis, module, service_doc, seed)


def _remove_assert(
    diagnosis: Diagnosis, spec: ast.SMSpec, transition: ast.Transition
) -> Repair | None:
    bad_code = diagnosis.divergence.emulator_response.error_code
    body = list(transition.body)
    for index, stmt in enumerate(body):
        if isinstance(stmt, ast.Assert) and stmt.error_code == bad_code:
            del body[index]
            transition.body = tuple(body)
            return Repair(
                "removed_assert", diagnosis.sm, diagnosis.api,
                detail=f"removed assert raising {bad_code!r}",
            )
    return None


def _recode_assert(
    diagnosis: Diagnosis, spec: ast.SMSpec, transition: ast.Transition
) -> Repair | None:
    old = diagnosis.divergence.emulator_response.error_code
    new = diagnosis.divergence.cloud_response.error_code
    body = list(transition.body)
    changed = False
    for index, stmt in enumerate(body):
        if isinstance(stmt, ast.Assert) and stmt.error_code == old:
            body[index] = replace(stmt, error_code=new)
            changed = True
            break
    if not changed:
        return None
    transition.body = tuple(body)
    return Repair("recoded_assert", diagnosis.sm, diagnosis.api,
                  detail=f"recoded assert {old!r} -> {new!r}")


def _insert_learned_assert(
    diagnosis: Diagnosis,
    module: ast.SpecModule,
    service_doc: ServiceDoc,
) -> Repair | None:
    entry = service_doc.find_api(diagnosis.api)
    if entry is None:
        return None
    res, api_doc = entry
    spec = module.get(diagnosis.sm)
    transition = spec.transitions[diagnosis.api]
    learned = diagnosis.learned_rule
    assert learned is not None
    # Restore any state variable the learned rule constrains but the
    # spec lacks (e.g. an attribute a faulty generation dropped).
    mentioned = {
        str(value) for key, value in learned.fields
        if key in ("attr",)
    }
    for attribute in res.attributes:
        if attribute.name in mentioned and spec.state_type(
            attribute.name
        ) is None:
            default = (
                ast.Literal(attribute.default)
                if attribute.default is not None else None
            )
            spec.states.append(
                ast.StateDecl(attribute.name,
                              attribute_state_type(attribute), default)
            )
    compiler = RuleCompiler(res, api_doc, set(spec.state_names()))
    statements = compiler.compile(learned)
    transition.body = tuple(statements) + transition.body
    return Repair(
        "learned_assert", diagnosis.sm, diagnosis.api,
        detail=f"learned {learned.kind} from cloud error message",
    )


def _regenerate(
    diagnosis: Diagnosis,
    module: ast.SpecModule,
    service_doc: ServiceDoc,
    seed: int,
) -> Repair | None:
    try:
        res = service_doc.resource(diagnosis.sm)
    except KeyError:
        return None
    synthesizer = SpecSynthesizer(FaultModel(PERFECT_PROFILE, seed=seed))
    fresh, __ = synthesizer.synthesize_sm(res)
    old = module.get(diagnosis.sm)
    if old is not None:
        # Preserve helper transitions patched in by linking, and any
        # asserts previously learned through alignment.
        for name, transition in old.transitions.items():
            if name.startswith("_") and name not in fresh.transitions:
                fresh.transitions[name] = transition
        for decl in old.states:
            if fresh.state_type(decl.name) is None:
                fresh.states.append(decl)
        _carry_learned_asserts(old, fresh)
    module.add(fresh)
    return Repair("regenerated", diagnosis.sm, diagnosis.api,
                  detail="regenerated resource from documentation")


def _carry_learned_asserts(old: ast.SMSpec, fresh: ast.SMSpec) -> None:
    """Keep previously learned (undocumented) asserts across regeneration.

    An assert whose error code the fresh generation does not produce for
    the same transition is assumed to be alignment-learned and carried
    forward.
    """
    for name, old_transition in old.transitions.items():
        fresh_transition = fresh.transitions.get(name)
        if fresh_transition is None:
            continue
        fresh_codes = {
            stmt.error_code
            for stmt in fresh_transition.statements()
            if isinstance(stmt, ast.Assert)
        }
        carried = tuple(
            stmt for stmt in old_transition.body
            if isinstance(stmt, ast.Assert)
            and stmt.error_code not in fresh_codes
        )
        if carried:
            fresh_transition.body = carried + fresh_transition.body
