"""Random API fuzzing: the baseline alignment strategy (§4.3).

"Whereas prior work has found emulator discrepancy using API fuzzing,
randomly fuzzing the entire emulator is inefficient."  This module
implements that baseline so the claim is measurable: a seeded random
fuzzer that invokes arbitrary APIs with semi-plausible parameters, to
be compared against the guided symbolic trace generator on
divergences found per API call spent.

Reports are actionable: each divergence records the exact parameters
that triggered it (so it can be replayed by hand or turned into a
regression trace) and repeated ``(api, error_code)`` pairs are folded
into the first sighting's ``duplicates`` counter instead of flooding
the list.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..interpreter.emulator import normalize_key
from ..spec import ast


@dataclass
class FuzzDivergence:
    """One distinct behavioural difference the fuzzer triggered."""

    api: str
    #: The code alignment keys on (the cloud's, falling back to the
    #: emulator's when the cloud succeeded and the emulator failed).
    error_code: str
    cloud_code: str
    emulator_code: str
    #: The exact parameters of the first call that triggered it —
    #: enough to replay the divergence by hand.
    params: dict = field(default_factory=dict)
    #: 1-based call number of the first sighting (the efficiency axis).
    call_index: int = 0
    #: How many further calls re-triggered this same (api, code) pair.
    duplicates: int = 0

    @property
    def key(self) -> tuple[str, str]:
        return (self.api, self.error_code)


@dataclass
class FuzzReport:
    """What a fuzzing campaign found and what it cost."""

    calls: int = 0
    #: Distinct divergences, deduped on ``(api, error_code)``; the
    #: recorded params are the *first* triggering call's.
    divergences: list[FuzzDivergence] = field(default_factory=list)
    #: Re-sightings folded away by the dedupe.
    duplicate_divergences: int = 0
    _seen: dict = field(default_factory=dict, repr=False)

    def record(self, api: str, cloud_code: str, emulator_code: str,
               params: dict) -> FuzzDivergence:
        """Record one divergent call, deduping on (api, code)."""
        code = cloud_code or emulator_code
        known = self._seen.get((api, code))
        if known is not None:
            known.duplicates += 1
            self.duplicate_divergences += 1
            return known
        divergence = FuzzDivergence(
            api=api, error_code=code, cloud_code=cloud_code,
            emulator_code=emulator_code, params=dict(params),
            call_index=self.calls,
        )
        self._seen[(api, code)] = divergence
        self.divergences.append(divergence)
        return divergence

    @property
    def divergence_count(self) -> int:
        return len(self.divergences)

    @property
    def calls_per_divergence(self) -> float:
        """Average spend per distinct divergence; 0.0 when the
        campaign found nothing (finite, so reports can render it)."""
        if not self.divergences:
            return 0.0
        return self.calls / len(self.divergences)


class RandomFuzzer:
    """Seeded random API fuzzing over a spec module's API surface.

    Parameter values are drawn from a small pool of plausible strings,
    CIDRs, booleans and previously returned resource identifiers —
    the usual stateful-fuzzing heuristics, without any of the SM
    structure the guided generator exploits.
    """

    def __init__(self, module: ast.SpecModule, seed: int = 99):
        self.module = module
        self.rng = random.Random(seed)
        self._index = module.transition_index()
        self._apis = [
            name for name in sorted(self._index)
            if not name.startswith("_")
        ]

    def _value_pool(self, ids: list[str]) -> list[object]:
        pool: list[object] = [
            "10.0.0.0/16", "10.0.1.0/24", "10.0.0.0/29", "not-a-cidr",
            "t2.micro", "zz-bogus", "us-east", True, False, 5, "name",
            "default", "standard",
        ]
        pool.extend(ids[-8:])
        return pool

    def _random_params(self, api: str, ids: list[str]) -> dict:
        __, transition = self._index[api]
        pool = self._value_pool(ids)
        params: dict = {}
        for param in transition.params:
            if self.rng.random() < 0.15:
                continue  # sometimes omit a parameter
            if param.type.kind == "sm" or normalize_key(param.name).endswith(
                "id"
            ):
                if ids and self.rng.random() < 0.85:
                    params[param.name] = self.rng.choice(ids[-8:])
                else:
                    params[param.name] = "missing-" + param.name
            else:
                params[param.name] = self.rng.choice(pool)
        return params

    def run(self, cloud, emulator, budget: int = 500) -> FuzzReport:
        """Fuzz both backends in lock-step for ``budget`` calls."""
        cloud.reset()
        emulator.reset()
        report = FuzzReport()
        cloud_ids: list[str] = []
        emulator_ids: list[str] = []
        for __ in range(budget):
            api = self.rng.choice(self._apis)
            # The same symbolic choice maps to each backend's own ids:
            # keep the two id lists positionally parallel.
            params_template = self._random_params(api, cloud_ids)
            emulator_params = dict(params_template)
            for key, value in params_template.items():
                if isinstance(value, str) and value in cloud_ids:
                    emulator_params[key] = emulator_ids[
                        cloud_ids.index(value)
                    ]
            cloud_response = cloud.invoke(api, params_template)
            emulator_response = emulator.invoke(api, emulator_params)
            report.calls += 1
            if cloud_response.success != emulator_response.success or (
                not cloud_response.success
                and cloud_response.error_code
                != emulator_response.error_code
            ):
                report.record(
                    api,
                    cloud_response.error_code,
                    emulator_response.error_code,
                    params_template,
                )
            if cloud_response.success and emulator_response.success:
                cloud_id = cloud_response.data.get("id")
                emulator_id = emulator_response.data.get("id")
                if cloud_id and emulator_id:
                    cloud_ids.append(str(cloud_id))
                    emulator_ids.append(str(emulator_id))
        return report

    def unique_divergent_apis(self, report: FuzzReport) -> set[str]:
        return {divergence.api for divergence in report.divergences}
