"""Response and trace comparison (the differ's core).

Alignment means: permissible behaviours produce the same effects in
emulator and cloud, and forbidden behaviours fail in both with the same
error *code* (§4.3).  Error messages are developer-facing prose and
deliberately not compared.

Resource identifiers differ across backends by design (the emulator
counts, the cloud hashes), so values are normalized before comparison:
identifiers bound by the trace map to their symbolic names, and any
remaining opaque tokens (freshly assigned addresses, association ids)
compare by presence.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from ..interpreter.errors import ApiResponse
from ..resilience.errors import TRANSIENT_CODES
from ..scenarios.model import TraceRun

#: Matches both backends' generated identifiers: ``subnet-00000001``,
#: ``vpc-0f3a9c2be1d4``, ``public_ip-0...`` etc.
_TOKEN = re.compile(r"^[A-Za-z_]{1,40}-[0-9a-f]{6,}$")

_OPAQUE = "<token>"


def is_transient_failure(response: ApiResponse) -> bool:
    """Whether a response is infrastructure weather, not behaviour.

    Throttles, 5xx and timeouts say nothing about the specification
    under alignment — a resilient client retries them, and the differ
    must never hand one to diagnosis as if it were a semantic
    divergence.  Both backends' *behavioural* error codes (not-found,
    dependency violations, validation failures) are never transient.
    """
    return not response.success and response.error_code in TRANSIENT_CODES


def normalize_value(value: object, env_inverse: dict[str, str]) -> object:
    """Replace backend-specific identifiers with comparable forms."""
    if isinstance(value, str):
        if value in env_inverse:
            return "$" + env_inverse[value]
        if _TOKEN.match(value):
            return _OPAQUE
        return value
    if isinstance(value, list):
        return [normalize_value(item, env_inverse) for item in value]
    if isinstance(value, dict):
        return {
            key: normalize_value(item, env_inverse)
            for key, item in value.items()
        }
    return value


@dataclass(frozen=True)
class StepComparison:
    """The verdict for one step of a trace."""

    api: str
    aligned: bool
    reason: str = ""


def compare_responses(
    reference: ApiResponse,
    candidate: ApiResponse,
    reference_env: dict[str, str],
    candidate_env: dict[str, str],
    api: str = "",
) -> StepComparison:
    """Compare one cloud response against one emulator response."""
    if reference.success != candidate.success:
        expected = "success" if reference.success else (
            f"failure ({reference.error_code})"
        )
        got = "success" if candidate.success else (
            f"failure ({candidate.error_code})"
        )
        return StepComparison(api, False,
                              f"expected {expected}, got {got}")
    if not reference.success:
        if reference.error_code != candidate.error_code:
            return StepComparison(
                api, False,
                f"error code mismatch: cloud={reference.error_code!r} "
                f"emulator={candidate.error_code!r}",
            )
        return StepComparison(api, True)
    ref_inverse = {v: k for k, v in reference_env.items()}
    cand_inverse = {v: k for k, v in candidate_env.items()}
    for key, ref_value in reference.data.items():
        if key not in candidate.data:
            return StepComparison(
                api, False, f"response field {key!r} missing from emulator"
            )
        ref_norm = normalize_value(ref_value, ref_inverse)
        cand_norm = normalize_value(candidate.data[key], cand_inverse)
        if ref_norm != cand_norm:
            return StepComparison(
                api, False,
                f"response field {key!r} differs: cloud={ref_norm!r} "
                f"emulator={cand_norm!r}",
            )
    return StepComparison(api, True)


@dataclass
class TraceComparison:
    """The verdict for a whole trace."""

    trace_name: str
    steps: list[StepComparison]

    @property
    def aligned(self) -> bool:
        return all(step.aligned for step in self.steps)

    @property
    def first_divergence(self) -> StepComparison | None:
        for step in self.steps:
            if not step.aligned:
                return step
        return None

    @property
    def divergent_step_index(self) -> int:
        for index, step in enumerate(self.steps):
            if not step.aligned:
                return index
        return -1


def compare_runs(reference: TraceRun, candidate: TraceRun) -> TraceComparison:
    """Compare a trace's run on the cloud against its run on an emulator."""
    steps: list[StepComparison] = []
    for ref_step, cand_step in zip(reference.results, candidate.results):
        steps.append(
            compare_responses(
                ref_step.response,
                cand_step.response,
                reference.env,
                candidate.env,
                api=ref_step.api,
            )
        )
    return TraceComparison(trace_name=reference.trace.name, steps=steps)
