"""The closed alignment loop (§4.3): trace, diff, diagnose, repair,
repeat — continuously improving emulator fidelity against the cloud.

The loop talks to the *real* cloud, so it is built to survive bad
weather: under an active chaos profile the cloud is wrapped in the
chaos + retry layers, transient divergences are skipped rather than
repaired, completed rounds are checkpointed, and a fault that escapes
mid-round resumes the loop at the failed round instead of restarting
from scratch.  Everything absorbed is accounted in the report's
:class:`~repro.resilience.stats.ResilienceStats`.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

from ..cloud.engine import ReferenceCloud
from ..docs.model import ServiceDoc
from ..interpreter.compiler import compile_module
from ..interpreter.emulator import Emulator
from ..llm.client import SimulatedLLM
from ..resilience.chaos import (
    ChaosEngine,
    ChaosLLM,
    ChaosProfile,
    ChaosProxy,
    resolve_profile,
)
from ..resilience.errors import ResilienceError
from ..resilience.policy import RetryPolicy
from ..resilience.resilient import ResilientBackend, ResilientLLM
from ..resilience.stats import ResilienceStats
from ..spec import ast
from ..spec.validator import collect_violations
from ..telemetry import ensure_telemetry
from .diagnose import apply_repair, diagnose, Diagnosis, Repair
from .differ import diff_traces, DiffReport
from .symbolic import ClassCoverage
from .tracegen import TraceBuilder


@dataclass
class AlignmentRound:
    """One iteration of the loop."""

    index: int
    traces: int
    diff: DiffReport
    diagnoses: list[Diagnosis] = field(default_factory=list)
    repairs: list[Repair] = field(default_factory=list)
    coverage: ClassCoverage | None = None
    #: Set when the round was abandoned after repeated faults: the
    #: loop degraded past it instead of crashing the whole run.
    faulted: str = ""


@dataclass
class AlignmentCheckpoint:
    """Progress ledger: which rounds completed, what each one cost.

    A mid-round fault rolls the loop back to this ledger — completed
    rounds (and the repairs they applied to the module) are never
    redone; only the interrupted round re-runs.
    """

    completed_rounds: list[int] = field(default_factory=list)
    #: round index -> times it was restarted after a fault.
    restarts: dict[int, int] = field(default_factory=dict)

    def record_fault(self, round_index: int) -> int:
        count = self.restarts.get(round_index, 0) + 1
        self.restarts[round_index] = count
        return count


@dataclass
class AlignmentReport:
    """The loop's outcome."""

    rounds: list[AlignmentRound] = field(default_factory=list)
    converged: bool = False
    validator_violations: list[str] = field(default_factory=list)
    #: What the resilience layer absorbed (all-zero when chaos is off).
    resilience: ResilienceStats = field(default_factory=ResilienceStats)
    checkpoint: AlignmentCheckpoint = field(
        default_factory=AlignmentCheckpoint
    )
    chaos_profile: str = "off"

    @property
    def total_divergences(self) -> int:
        return sum(len(r.diff.divergences) for r in self.rounds)

    @property
    def total_repairs(self) -> int:
        return sum(len(r.repairs) for r in self.rounds)

    @property
    def doc_gaps_learned(self) -> int:
        return sum(
            1
            for round_ in self.rounds
            for repair in round_.repairs
            if repair.kind == "learned_assert"
        )


def _run_round(
    round_index: int,
    module: ast.SpecModule,
    notfound_codes: dict[str, str],
    service_doc: ServiceDoc,
    llm,
    cloud_factory,
    skip_transient: bool,
    telemetry=None,
    parallel: int = 1,
    compile: bool = True,
) -> AlignmentRound:
    """One full iteration: enumerate, trace, diff, diagnose, repair."""
    tele = ensure_telemetry(telemetry)
    with tele.span("alignment.tracegen", kind="tracegen") as span:
        builder = TraceBuilder(module)
        traces, coverage = builder.build_all()
        span.set("classes_covered", len(coverage.covered))
        span.set("classes_skipped", len(coverage.skipped))

    compiled = compile_module(module) if compile else None

    def make_pair():
        return (
            cloud_factory(),
            Emulator(module, notfound_codes=notfound_codes,
                     telemetry=telemetry, compile=compile,
                     compiled=compiled),
        )

    cloud, emulator = make_pair()
    diff = diff_traces(cloud, emulator, traces,
                       skip_transient=skip_transient, telemetry=telemetry,
                       parallel=parallel,
                       backend_factory=make_pair if parallel > 1 else None)
    round_report = AlignmentRound(
        index=round_index, traces=len(traces), diff=diff,
        coverage=coverage,
    )
    repaired_targets: set[tuple[str, str]] = set()
    for divergence in diff.divergences:
        with tele.span(
            "alignment.diagnose", kind="diagnosis",
            api=divergence.api, reason=divergence.reason,
        ) as span:
            diagnosis = diagnose(divergence, module, service_doc, llm)
            round_report.diagnoses.append(diagnosis)
            key = (diagnosis.sm, diagnosis.api)
            if key in repaired_targets:
                continue
            repair = apply_repair(diagnosis, module, service_doc)
            if repair is not None:
                round_report.repairs.append(repair)
                repaired_targets.add(key)
                span.set("repair", repair.kind)
                tele.counter("alignment.repairs", kind=repair.kind).inc()
    return round_report


def align_module(
    module: ast.SpecModule,
    notfound_codes: dict[str, str],
    service_doc: ServiceDoc,
    llm: SimulatedLLM,
    cloud_factory=None,
    cloud_seed: int = 11,
    max_rounds: int = 4,
    chaos: ChaosProfile | str | None = None,
    resilience_policy: RetryPolicy | None = None,
    max_round_restarts: int = 3,
    telemetry=None,
    parallel: int = 1,
    compile: bool = True,
) -> AlignmentReport:
    """Run the alignment loop in place on ``module``.

    Each round symbolically enumerates the current spec's equivalence
    classes, generates one guided trace per class, diffs emulator
    against a fresh *real* cloud, and repairs every diagnosed
    divergence.  Convergence = a round with no divergences.

    ``service_doc`` is the wrangled documentation (what diagnosis
    consults to attribute divergence to spec vs docs); ``cloud_factory``
    builds the ground-truth backend.  The two are distinct on purpose:
    the cloud enforces behaviour the documentation may not mention.
    When ``cloud_factory`` is omitted, the reference cloud for the
    module's service catalog is used.

    ``chaos`` selects a fault-injection profile (a profile, a name, or
    ``None`` to read ``REPRO_CHAOS_PROFILE`` / default off).  Under an
    active profile the cloud and the LLM are wrapped in the chaos +
    retry layers; a fault that still escapes restarts only the current
    round (completed rounds are checkpointed), and a round that faults
    more than ``max_round_restarts`` times is marked ``faulted`` and
    skipped rather than crashing the loop.

    ``parallel`` shards each round's differential pass across that
    many backend pairs (see :func:`~repro.alignment.differ.diff_traces`);
    ``compile`` selects the emulator's compiled fast path (on by
    default) versus the tree-walking evaluator.
    """
    if cloud_factory is None:
        from ..docs import build_catalog

        catalog = build_catalog(module.service)
        cloud_factory = lambda: ReferenceCloud(catalog, seed=cloud_seed)  # noqa: E731

    tele = ensure_telemetry(telemetry)
    profile = resolve_profile(chaos)
    stats = ResilienceStats()
    backend_stats: list[ResilienceStats] = []
    backend_stats_lock = threading.Lock()
    chaotic = profile.active
    if chaotic:
        engine = ChaosEngine(profile, seed=cloud_seed)
        llm = ResilientLLM(
            ChaosLLM(llm, engine),
            policy=resilience_policy,
            stats=stats,
            seed=cloud_seed,
            clock=tele.clock,
            telemetry=telemetry,
        )
        base_factory = cloud_factory

        def cloud_factory():
            # Each backend gets its own stats ledger (and, when the
            # diff pass is sharded, its own proxy call counter via
            # _chaos_wrap), so concurrent shards never race on shared
            # counters; ledgers are summed into ``stats`` at the end,
            # and the sum is order-independent.
            ledger = ResilienceStats()
            with backend_stats_lock:
                backend_stats.append(ledger)
            return ResilientBackend(
                _chaos_wrap(base_factory(), engine),
                policy=resilience_policy,
                stats=ledger,
                seed=cloud_seed,
                clock=tele.clock,
                telemetry=telemetry,
            )

    report = AlignmentReport(resilience=stats, chaos_profile=profile.name)
    checkpoint = report.checkpoint
    with tele.span(
        "alignment", kind="phase", service=module.service,
        chaos=profile.name,
    ) as phase:
        round_index = 0
        while round_index < max_rounds:
            with tele.span(
                "alignment.round", kind="round", index=round_index
            ) as round_span:
                try:
                    round_report = _run_round(
                        round_index, module, notfound_codes, service_doc,
                        llm, cloud_factory, skip_transient=chaotic,
                        telemetry=telemetry, parallel=parallel,
                        compile=compile,
                    )
                except ResilienceError as fault:
                    # Mid-round fault: resume from the checkpoint —
                    # completed rounds (and their repairs) stand; only
                    # this round re-runs.
                    stats.round_restarts += 1
                    round_span.set("restarted", True)
                    tele.event("round_restart", round=round_index,
                               fault=str(fault))
                    if (
                        checkpoint.record_fault(round_index)
                        > max_round_restarts
                    ):
                        report.rounds.append(
                            AlignmentRound(
                                index=round_index, traces=0,
                                diff=DiffReport(), faulted=str(fault),
                            )
                        )
                        round_index += 1
                    continue
                round_span.set("traces", round_report.traces)
                round_span.set("divergences",
                               len(round_report.diff.divergences))
                round_span.set("repairs", len(round_report.repairs))
            report.rounds.append(round_report)
            checkpoint.completed_rounds.append(round_index)
            if not round_report.diff.divergences:
                report.converged = True
                break
            round_index += 1
        phase.set("rounds", len(report.rounds))
        phase.set("converged", report.converged)
    for ledger in backend_stats:
        stats.merge(ledger)
    report.validator_violations = collect_violations(module)
    return report


def _chaos_wrap(backend, engine: ChaosEngine):
    """Wrap a backend in chaos unless the factory already did."""
    if isinstance(backend, ChaosProxy):
        return backend
    return ChaosProxy(backend, engine)
