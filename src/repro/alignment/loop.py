"""The closed alignment loop (§4.3): trace, diff, diagnose, repair,
repeat — continuously improving emulator fidelity against the cloud.

The loop talks to the *real* cloud, so it is built to survive bad
weather: under an active chaos profile the cloud is wrapped in the
chaos + retry layers, transient divergences are skipped rather than
repaired, completed rounds are checkpointed, and a fault that escapes
mid-round resumes the loop at the failed round instead of restarting
from scratch.  Everything absorbed is accounted in the report's
:class:`~repro.resilience.stats.ResilienceStats`.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

from ..cloud.engine import ReferenceCloud
from ..docs.model import ServiceDoc
from ..interpreter.compiler import compile_module
from ..interpreter.emulator import Emulator
from ..llm.client import SimulatedLLM
from ..resilience.chaos import (
    ChaosEngine,
    ChaosLLM,
    ChaosProfile,
    ChaosProxy,
    kill_point,
    resolve_profile,
)
from ..resilience.errors import ResilienceError
from ..resilience.policy import RetryPolicy
from ..resilience.resilient import ResilientBackend, ResilientLLM
from ..resilience.stats import ResilienceStats
from ..spec import ast
from ..spec.parser import parse_sm
from ..spec.serializer import serialize_sm
from ..spec.validator import collect_violations
from ..telemetry import ensure_telemetry
from .diagnose import apply_repair, diagnose, Diagnosis, Repair
from .differ import diff_traces, DiffReport
from .symbolic import ClassCoverage
from .tracegen import TraceBuilder


@dataclass
class AlignmentRound:
    """One iteration of the loop."""

    index: int
    traces: int
    diff: DiffReport
    diagnoses: list[Diagnosis] = field(default_factory=list)
    repairs: list[Repair] = field(default_factory=list)
    coverage: ClassCoverage | None = None
    #: Set when the round was abandoned after repeated faults: the
    #: loop degraded past it instead of crashing the whole run.
    faulted: str = ""
    #: True when the round was reinstated from the build journal on
    #: resume instead of being executed.
    replayed: bool = False
    #: Journaled divergence count for replayed rounds, whose
    #: ``DiffReport`` is empty because the traces were not re-diffed.
    divergence_count: int | None = None


@dataclass
class AlignmentCheckpoint:
    """Progress ledger: which rounds completed, what each one cost.

    A mid-round fault rolls the loop back to this ledger — completed
    rounds (and the repairs they applied to the module) are never
    redone; only the interrupted round re-runs.
    """

    completed_rounds: list[int] = field(default_factory=list)
    #: round index -> times it was restarted after a fault.
    restarts: dict[int, int] = field(default_factory=dict)

    def record_fault(self, round_index: int) -> int:
        count = self.restarts.get(round_index, 0) + 1
        self.restarts[round_index] = count
        return count


@dataclass
class AlignmentReport:
    """The loop's outcome."""

    rounds: list[AlignmentRound] = field(default_factory=list)
    converged: bool = False
    validator_violations: list[str] = field(default_factory=list)
    #: What the resilience layer absorbed (all-zero when chaos is off).
    resilience: ResilienceStats = field(default_factory=ResilienceStats)
    checkpoint: AlignmentCheckpoint = field(
        default_factory=AlignmentCheckpoint
    )
    chaos_profile: str = "off"

    @property
    def total_divergences(self) -> int:
        return sum(
            r.divergence_count
            if r.divergence_count is not None
            else len(r.diff.divergences)
            for r in self.rounds
        )

    @property
    def total_repairs(self) -> int:
        return sum(len(r.repairs) for r in self.rounds)

    @property
    def doc_gaps_learned(self) -> int:
        return sum(
            1
            for round_ in self.rounds
            for repair in round_.repairs
            if repair.kind == "learned_assert"
        )


def _run_round(
    round_index: int,
    module: ast.SpecModule,
    notfound_codes: dict[str, str],
    service_doc: ServiceDoc,
    llm,
    cloud_factory,
    skip_transient: bool,
    telemetry=None,
    parallel: int = 1,
    compile: bool = True,
) -> AlignmentRound:
    """One full iteration: enumerate, trace, diff, diagnose, repair."""
    tele = ensure_telemetry(telemetry)
    with tele.span("alignment.tracegen", kind="tracegen") as span:
        builder = TraceBuilder(module)
        traces, coverage = builder.build_all()
        span.set("classes_covered", len(coverage.covered))
        span.set("classes_skipped", len(coverage.skipped))

    compiled = compile_module(module) if compile else None

    def make_pair():
        return (
            cloud_factory(),
            Emulator(module, notfound_codes=notfound_codes,
                     telemetry=telemetry, compile=compile,
                     compiled=compiled),
        )

    cloud, emulator = make_pair()
    diff = diff_traces(cloud, emulator, traces,
                       skip_transient=skip_transient, telemetry=telemetry,
                       parallel=parallel,
                       backend_factory=make_pair if parallel > 1 else None)
    round_report = AlignmentRound(
        index=round_index, traces=len(traces), diff=diff,
        coverage=coverage,
    )
    repaired_targets: set[tuple[str, str]] = set()
    for divergence in diff.divergences:
        with tele.span(
            "alignment.diagnose", kind="diagnosis",
            api=divergence.api, reason=divergence.reason,
        ) as span:
            diagnosis = diagnose(divergence, module, service_doc, llm)
            round_report.diagnoses.append(diagnosis)
            key = (diagnosis.sm, diagnosis.api)
            if key in repaired_targets:
                continue
            repair = apply_repair(diagnosis, module, service_doc)
            if repair is not None:
                round_report.repairs.append(repair)
                repaired_targets.add(key)
                span.set("repair", repair.kind)
                tele.counter("alignment.repairs", kind=repair.kind).inc()
    return round_report


def align_module(
    module: ast.SpecModule,
    notfound_codes: dict[str, str],
    service_doc: ServiceDoc,
    llm: SimulatedLLM,
    cloud_factory=None,
    cloud_seed: int = 11,
    max_rounds: int = 4,
    chaos: ChaosProfile | str | None = None,
    resilience_policy: RetryPolicy | None = None,
    max_round_restarts: int = 3,
    telemetry=None,
    parallel: int = 1,
    compile: bool = True,
    journal=None,
) -> AlignmentReport:
    """Run the alignment loop in place on ``module``.

    Each round symbolically enumerates the current spec's equivalence
    classes, generates one guided trace per class, diffs emulator
    against a fresh *real* cloud, and repairs every diagnosed
    divergence.  Convergence = a round with no divergences.

    ``service_doc`` is the wrangled documentation (what diagnosis
    consults to attribute divergence to spec vs docs); ``cloud_factory``
    builds the ground-truth backend.  The two are distinct on purpose:
    the cloud enforces behaviour the documentation may not mention.
    When ``cloud_factory`` is omitted, the reference cloud for the
    module's service catalog is used.

    ``chaos`` selects a fault-injection profile (a profile, a name, or
    ``None`` to read ``REPRO_CHAOS_PROFILE`` / default off).  Under an
    active profile the cloud and the LLM are wrapped in the chaos +
    retry layers; a fault that still escapes restarts only the current
    round (completed rounds are checkpointed), and a round that faults
    more than ``max_round_restarts`` times is marked ``faulted`` and
    skipped rather than crashing the loop.

    ``parallel`` shards each round's differential pass across that
    many backend pairs (see :func:`~repro.alignment.differ.diff_traces`);
    ``compile`` selects the emulator's compiled fast path (on by
    default) versus the tree-walking evaluator.

    ``journal`` (a :class:`~repro.durability.BuildJournal`, already
    started or resumed by the caller) makes each completed round
    durable — the post-round machine texts, applied repairs, and the
    usage/chaos counters the round consumed.  Rounds it already holds
    are reinstated (machines overwritten from the journaled text)
    instead of re-run, so a resumed loop continues exactly where the
    crashed one stopped and converges to the same module.
    """
    if cloud_factory is None:
        from ..docs import build_catalog

        catalog = build_catalog(module.service)
        cloud_factory = lambda: ReferenceCloud(catalog, seed=cloud_seed)  # noqa: E731

    tele = ensure_telemetry(telemetry)
    profile = resolve_profile(chaos)
    stats = ResilienceStats()
    backend_stats: list[ResilienceStats] = []
    backend_stats_lock = threading.Lock()
    chaotic = profile.active
    chaos_llm: ChaosLLM | None = None
    base_usage = getattr(llm, "usage", None)
    if chaotic:
        engine = ChaosEngine(profile, seed=cloud_seed)
        chaos_llm = ChaosLLM(llm, engine)
        llm = ResilientLLM(
            chaos_llm,
            policy=resilience_policy,
            stats=stats,
            seed=cloud_seed,
            clock=tele.clock,
            telemetry=telemetry,
        )
        base_factory = cloud_factory

        def cloud_factory():
            # Each backend gets its own stats ledger (and, when the
            # diff pass is sharded, its own proxy call counter via
            # _chaos_wrap), so concurrent shards never race on shared
            # counters; ledgers are summed into ``stats`` at the end,
            # and the sum is order-independent.
            ledger = ResilienceStats()
            with backend_stats_lock:
                backend_stats.append(ledger)
            return ResilientBackend(
                _chaos_wrap(base_factory(), engine),
                policy=resilience_policy,
                stats=ledger,
                seed=cloud_seed,
                clock=tele.clock,
                telemetry=telemetry,
            )

    report = AlignmentReport(resilience=stats, chaos_profile=profile.name)
    checkpoint = report.checkpoint

    def round_delta() -> dict:
        """Usage + chaos counters one round (attempt) consumed — what a
        resumed run must fast-forward past to stay byte-identical."""
        extra: dict = {}
        if base_usage is not None:
            current = base_usage.as_dict()
            extra["usage"] = {
                key: current[key] - usage_before.get(key, 0)
                for key in current
            }
        if chaos_llm is not None:
            extra["calls"] = chaos_llm._calls
        return extra

    replayed_rounds: list[dict] = []
    if journal is not None:
        # Rebuild the fault ledger and fast-forward the counters the
        # interrupted run burned, so the live loop's give-up thresholds
        # and injected weather match an uninterrupted run's exactly.
        for record in journal.records:
            record_type = record.get("type")
            if record_type == "round_fault":
                stats.round_restarts += 1
                checkpoint.record_fault(record["index"])
            elif record_type != "round":
                continue
            if base_usage is not None:
                base_usage.add(record.get("usage") or {})
            if chaos_llm is not None and record.get("calls"):
                chaos_llm._calls = max(chaos_llm._calls, record["calls"])
        replayed_rounds = journal.round_records()

    with tele.span(
        "alignment", kind="phase", service=module.service,
        chaos=profile.name,
    ) as phase:
        for record in replayed_rounds:
            # Machines carry the journaled round's applied repairs;
            # overwriting existing keys preserves module order.
            for name, text in record["machines"].items():
                spec = parse_sm(text)
                existing = module.machines.get(name)
                if existing is not None and not spec.doc:
                    # Doc strings serialize as comments, which the
                    # parser drops; rounds never touch them, so the
                    # pre-round doc is the post-round doc.
                    spec.doc = existing.doc
                module.machines[name] = spec
            report.rounds.append(
                AlignmentRound(
                    index=record["index"], traces=record["traces"],
                    diff=DiffReport(),
                    repairs=[Repair(**fix) for fix in record["repairs"]],
                    faulted=record.get("faulted", ""),
                    replayed=True,
                    divergence_count=record["divergences"],
                )
            )
            if not record.get("faulted"):
                checkpoint.completed_rounds.append(record["index"])
            if record.get("converged"):
                report.converged = True
            journal.replayed()

        round_index = len(replayed_rounds)
        while round_index < max_rounds and not report.converged:
            usage_before = (
                base_usage.as_dict() if base_usage is not None else {}
            )
            with tele.span(
                "alignment.round", kind="round", index=round_index
            ) as round_span:
                try:
                    round_report = _run_round(
                        round_index, module, notfound_codes, service_doc,
                        llm, cloud_factory, skip_transient=chaotic,
                        telemetry=telemetry, parallel=parallel,
                        compile=compile,
                    )
                except ResilienceError as fault:
                    # Mid-round fault: resume from the checkpoint —
                    # completed rounds (and their repairs) stand; only
                    # this round re-runs.
                    stats.round_restarts += 1
                    round_span.set("restarted", True)
                    tele.event("round_restart", round=round_index,
                               fault=str(fault))
                    if journal is not None:
                        journal.append("round_fault", index=round_index,
                                       **round_delta())
                    if (
                        checkpoint.record_fault(round_index)
                        > max_round_restarts
                    ):
                        report.rounds.append(
                            AlignmentRound(
                                index=round_index, traces=0,
                                diff=DiffReport(), faulted=str(fault),
                            )
                        )
                        if journal is not None:
                            journal.append(
                                "round", index=round_index, traces=0,
                                divergences=0, converged=False,
                                faulted=str(fault), repairs=[], machines={},
                            )
                        round_index += 1
                    continue
                round_span.set("traces", round_report.traces)
                round_span.set("divergences",
                               len(round_report.diff.divergences))
                round_span.set("repairs", len(round_report.repairs))
                # The crash window the journal exists for: the round's
                # work is done but not yet durable, so a resumed run
                # must redo it — and lands on the same result.
                kill_point("mid-alignment-round")
            report.rounds.append(round_report)
            checkpoint.completed_rounds.append(round_index)
            if journal is not None:
                journal.append(
                    "round", index=round_index,
                    traces=round_report.traces,
                    divergences=len(round_report.diff.divergences),
                    converged=not round_report.diff.divergences,
                    faulted="",
                    repairs=[vars(fix) for fix in round_report.repairs],
                    # A round only mutates the machines its repairs
                    # name; journaling just those keeps the record (and
                    # the fsync behind it) proportional to the work.
                    machines={
                        name: serialize_sm(module.machines[name])
                        for name in sorted(
                            {fix.sm for fix in round_report.repairs}
                        )
                    },
                    **round_delta(),
                )
            if not round_report.diff.divergences:
                report.converged = True
                break
            round_index += 1
        phase.set("rounds", len(report.rounds))
        phase.set("converged", report.converged)
    for ledger in backend_stats:
        stats.merge(ledger)
    report.validator_violations = collect_violations(module)
    return report


def _chaos_wrap(backend, engine: ChaosEngine):
    """Wrap a backend in chaos unless the factory already did."""
    if isinstance(backend, ChaosProxy):
        return backend
    return ChaosProxy(backend, engine)
