"""The closed alignment loop (§4.3): trace, diff, diagnose, repair,
repeat — continuously improving emulator fidelity against the cloud.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..cloud.engine import ReferenceCloud
from ..docs.model import ServiceDoc
from ..interpreter.emulator import Emulator
from ..llm.client import SimulatedLLM
from ..spec import ast
from ..spec.validator import collect_violations
from .diagnose import apply_repair, diagnose, Diagnosis, Repair
from .differ import diff_traces, DiffReport
from .symbolic import ClassCoverage
from .tracegen import TraceBuilder


@dataclass
class AlignmentRound:
    """One iteration of the loop."""

    index: int
    traces: int
    diff: DiffReport
    diagnoses: list[Diagnosis] = field(default_factory=list)
    repairs: list[Repair] = field(default_factory=list)
    coverage: ClassCoverage | None = None


@dataclass
class AlignmentReport:
    """The loop's outcome."""

    rounds: list[AlignmentRound] = field(default_factory=list)
    converged: bool = False
    validator_violations: list[str] = field(default_factory=list)

    @property
    def total_divergences(self) -> int:
        return sum(len(r.diff.divergences) for r in self.rounds)

    @property
    def total_repairs(self) -> int:
        return sum(len(r.repairs) for r in self.rounds)

    @property
    def doc_gaps_learned(self) -> int:
        return sum(
            1
            for round_ in self.rounds
            for repair in round_.repairs
            if repair.kind == "learned_assert"
        )


def align_module(
    module: ast.SpecModule,
    notfound_codes: dict[str, str],
    service_doc: ServiceDoc,
    llm: SimulatedLLM,
    cloud_factory=None,
    cloud_seed: int = 11,
    max_rounds: int = 4,
) -> AlignmentReport:
    """Run the alignment loop in place on ``module``.

    Each round symbolically enumerates the current spec's equivalence
    classes, generates one guided trace per class, diffs emulator
    against a fresh *real* cloud, and repairs every diagnosed
    divergence.  Convergence = a round with no divergences.

    ``service_doc`` is the wrangled documentation (what diagnosis
    consults to attribute divergence to spec vs docs); ``cloud_factory``
    builds the ground-truth backend.  The two are distinct on purpose:
    the cloud enforces behaviour the documentation may not mention.
    When ``cloud_factory`` is omitted, the reference cloud for the
    module's service catalog is used.
    """
    if cloud_factory is None:
        from ..docs import build_catalog

        catalog = build_catalog(module.service)
        cloud_factory = lambda: ReferenceCloud(catalog, seed=cloud_seed)  # noqa: E731
    report = AlignmentReport()
    for round_index in range(max_rounds):
        builder = TraceBuilder(module)
        traces, coverage = builder.build_all()
        cloud = cloud_factory()
        emulator = Emulator(module, notfound_codes=notfound_codes)
        diff = diff_traces(cloud, emulator, traces)
        round_report = AlignmentRound(
            index=round_index, traces=len(traces), diff=diff,
            coverage=coverage,
        )
        report.rounds.append(round_report)
        if not diff.divergences:
            report.converged = True
            break
        repaired_targets: set[tuple[str, str]] = set()
        for divergence in diff.divergences:
            diagnosis = diagnose(divergence, module, service_doc, llm)
            round_report.diagnoses.append(diagnosis)
            key = (diagnosis.sm, diagnosis.api)
            if key in repaired_targets:
                continue
            repair = apply_repair(diagnosis, module, service_doc)
            if repair is not None:
                round_report.repairs.append(repair)
                repaired_targets.add(key)
    report.validator_violations = collect_violations(module)
    return report
