"""Guided trace generation from symbolic classes (§4.3).

For each symbolic class the builder constructs a minimal API trace:
recursively create the subject and its references, drive state
preconditions via transitions that establish them, then invoke the
target transition with parameters chosen to pass every assert — or to
violate exactly the targeted one.

Coverage is deliberately partial: classes whose violation cannot be
constructed from the SM structure are skipped and reported, matching
the paper's §6 position that alignment hardens frequently executed
paths without completeness guarantees.
"""

from __future__ import annotations

import ipaddress
from dataclasses import dataclass, field

from ..interpreter.evaluator import evaluate_defaults
from ..scenarios.model import Trace, TraceStep
from ..spec import ast
from .symbolic import (
    AssertPattern,
    classify_assert,
    ClassCoverage,
    module_classes,
    SymbolicClass,
    transition_asserts,
)


class SkipClass(Exception):
    """The builder cannot construct a trace for this class."""


#: Sentinel override: omit this parameter from the request.
OMIT = object()

_MAX_DEPTH = 6


@dataclass
class _Context:
    """Per-trace construction state."""

    steps: list[TraceStep] = field(default_factory=list)
    #: symbol -> SM type
    types: dict[str, str] = field(default_factory=dict)
    #: symbol -> creation parameter values
    created_with: dict[str, dict[str, object]] = field(default_factory=dict)
    #: symbol -> approximate (symbolic) state
    state: dict[str, dict[str, object]] = field(default_factory=dict)
    counter: int = 0

    def fresh_symbol(self, sm_name: str) -> str:
        self.counter += 1
        return f"{sm_name}_{self.counter}"


class TraceBuilder:
    """Builds one guided trace per symbolic class of a module."""

    def __init__(self, module: ast.SpecModule):
        self.module = module
        self._cidr_pool = 0

    # -- public -----------------------------------------------------------

    def build_class_trace(self, cls: SymbolicClass) -> Trace:
        """Build the trace for one symbolic class (raises SkipClass)."""
        ctx = _Context()
        spec = self.module.machines[cls.sm]
        transition = spec.transitions[cls.transition]
        asserts = transition_asserts(transition)
        target = asserts[cls.assert_index] if not cls.is_all_pass else None

        if transition.category == "create":
            subject = ""
        else:
            subject = self._create_resource(ctx, cls.sm, depth=0)

        overrides: dict[str, object] = {}
        if target is not None:
            pattern = classify_assert(spec, transition, target)
            overrides = self._violation_setup(
                ctx, spec, transition, pattern, subject
            )
        params = self._solve_params(
            ctx, spec, transition, subject, overrides,
            skip_precondition=target is not None
            and classify_assert(spec, transition, target).kind
            in ("attr_equals", "attr_differs"),
        )
        ctx.steps.append(
            TraceStep(
                transition.name,
                params,
                expect_success=(True if target is None else False),
            )
        )
        suffix = "pass" if cls.is_all_pass else f"violate_{cls.assert_index}"
        return Trace(
            name=f"align_{cls.sm}_{cls.transition}_{suffix}",
            service=self.module.service,
            scenario="alignment",
            steps=tuple(ctx.steps),
        )

    def build_all(
        self, classes: list[SymbolicClass] | None = None,
        probes: bool = True,
    ) -> tuple[list[Trace], ClassCoverage]:
        """Build traces for every (constructible) class of the module."""
        coverage = ClassCoverage()
        traces: list[Trace] = []
        for cls in classes if classes is not None else module_classes(
            self.module
        ):
            try:
                traces.append(self.build_class_trace(cls))
            except SkipClass as skip:
                coverage.skipped.append((cls, str(skip)))
            else:
                coverage.covered.append(cls)
        if probes:
            traces.extend(self.build_probe_traces())
        return traces, coverage

    def build_probe_traces(self) -> list[Trace]:
        """Semantic-check mining probes (§4.3).

        Assert-derived classes can only test checks the spec already
        contains; missing checks need exploration.  For every modify
        transition, probe each optional boolean parameter (set to true)
        against every reachable boolean state configuration of the
        subject — minimal traces that surface context-dependent rules
        the documentation omitted (e.g. DNS hostnames requiring DNS
        support).
        """
        traces: list[Trace] = []
        seen: set[tuple] = set()
        for spec in self.module.machines.values():
            bool_attrs = [
                decl.name for decl in spec.states
                if decl.type.kind == "bool"
            ][:4]
            for transition in spec.transitions.values():
                if transition.category != "modify" or transition.is_stub:
                    continue
                if transition.name.startswith("_"):
                    continue
                optional_bools = [
                    p.name for p in transition.params
                    if p.type.kind == "bool"
                ][:4]
                for param_name in optional_bools:
                    for attr in bool_attrs:
                        for value in (True, False):
                            key = (spec.name, transition.name, param_name,
                                   attr, value)
                            if key in seen:
                                continue
                            seen.add(key)
                            trace = self._build_probe(
                                spec, transition, param_name, attr, value
                            )
                            if trace is not None:
                                traces.append(trace)
        return traces

    def _build_probe(
        self,
        spec: ast.SMSpec,
        transition: ast.Transition,
        param_name: str,
        attr: str,
        attr_value: bool,
    ) -> Trace | None:
        ctx = _Context()
        try:
            subject = self._create_resource(ctx, spec.name, depth=0)
            if ctx.state.get(subject, {}).get(attr) != attr_value:
                self._drive_attr_to(ctx, subject, attr, attr_value, depth=1)
            params = self._solve_params(
                ctx, spec, transition, subject,
                overrides={param_name: True},
            )
        except SkipClass:
            return None
        ctx.steps.append(TraceStep(transition.name, params))
        flag = "t" if attr_value else "f"
        return Trace(
            name=(f"probe_{spec.name}_{transition.name}_{param_name}"
                  f"__{attr}_{flag}"),
            service=self.module.service,
            scenario="alignment_probe",
            steps=tuple(ctx.steps),
        )

    # -- creation ------------------------------------------------------------

    def _create_transition(self, sm_name: str) -> ast.Transition:
        spec = self.module.machines.get(sm_name)
        if spec is None:
            raise SkipClass(f"no SM for resource type {sm_name!r}")
        for transition in spec.transitions.values():
            if transition.category == "create" and not transition.is_stub:
                return transition
        raise SkipClass(f"resource type {sm_name!r} has no create API")

    def _create_resource(
        self,
        ctx: _Context,
        sm_name: str,
        depth: int,
        overrides: dict[str, object] | None = None,
    ) -> str:
        if depth > _MAX_DEPTH:
            raise SkipClass("reference chain too deep")
        spec = self.module.machines[sm_name]
        transition = self._create_transition(sm_name)
        params = self._solve_params(
            ctx, spec, transition, subject="", overrides=overrides or {},
            depth=depth,
        )
        symbol = ctx.fresh_symbol(sm_name)
        ctx.steps.append(TraceStep(transition.name, params, bind=symbol))
        ctx.types[symbol] = sm_name
        ctx.created_with[symbol] = {
            key: value for key, value in params.items()
        }
        ctx.state[symbol] = evaluate_defaults(spec)
        self._apply_writes(ctx, symbol, spec, transition, params)
        return symbol

    # -- parameter solving ------------------------------------------------------

    def _solve_params(
        self,
        ctx: _Context,
        spec: ast.SMSpec,
        transition: ast.Transition,
        subject: str,
        overrides: dict[str, object],
        depth: int = 0,
        skip_precondition: bool = False,
    ) -> dict[str, object]:
        patterns = [
            classify_assert(spec, transition, stmt)
            for stmt in transition_asserts(transition)
        ]
        required = {
            str(p["param"]) for p in patterns if p.kind == "require_param"
        }
        by_param: dict[str, list[AssertPattern]] = {}
        for pattern in patterns:
            inner = pattern
            if pattern.kind == "guarded":
                inner = pattern["inner"]  # type: ignore[assignment]
            param_name = inner.get("param")
            if isinstance(param_name, str):
                by_param.setdefault(param_name, []).append(inner)

        subject_key = f"{spec.name}_id"
        params: dict[str, object] = {}
        for param in transition.params:
            if param.name in overrides:
                value = overrides[param.name]
                if value is not OMIT:
                    params[param.name] = value
                continue
            if param.name == subject_key:
                if subject:
                    params[param.name] = f"${subject}"
                continue
            if param.name not in required:
                continue
            params[param.name] = self._pass_value(
                ctx, spec, transition, param, by_param.get(param.name, []),
                params, depth,
            )

        if not skip_precondition:
            self._drive_preconditions(
                ctx, spec, transition, subject, patterns, params, depth
            )
        return params

    def _pass_value(
        self,
        ctx: _Context,
        spec: ast.SMSpec,
        transition: ast.Transition,
        param,
        patterns: list[AssertPattern],
        solved: dict[str, object],
        depth: int,
    ) -> object:
        if param.type.kind == "sm":
            target = param.type.sm_name
            if not target:
                raise SkipClass(f"untyped SM parameter {param.name!r}")
            symbol = self._create_resource(ctx, target, depth + 1)
            return f"${symbol}"
        for pattern in patterns:
            if pattern.kind == "one_of":
                values = pattern["values"]
                if values:
                    return values[0]  # type: ignore[index]
            if pattern.kind in ("valid_cidr", "prefix_between", "cidr_within",
                                "no_overlap"):
                return self._pass_cidr(ctx, patterns, solved)
        if param.type.kind == "int":
            return 100
        if param.type.kind == "bool":
            return True
        return f"v-{param.name}"

    def _pass_cidr(
        self,
        ctx: _Context,
        patterns: list[AssertPattern],
        solved: dict[str, object],
    ) -> str:
        lo, hi = 16, 28
        parent_symbol = ""
        parent_attr = ""
        for pattern in patterns:
            if pattern.kind == "prefix_between":
                lo = int(pattern["lo"])  # type: ignore[arg-type]
                hi = int(pattern["hi"])  # type: ignore[arg-type]
            if pattern.kind in ("cidr_within", "no_overlap"):
                ref_param = str(pattern["ref"])
                ref_value = solved.get(ref_param)
                if isinstance(ref_value, str) and ref_value.startswith("$"):
                    parent_symbol = ref_value[1:]
                if pattern.kind == "cidr_within":
                    parent_attr = str(pattern["ref_attr"])
        if parent_symbol:
            parent_cidr = self._creation_cidr(ctx, parent_symbol, parent_attr)
            if parent_cidr:
                return self._carve(ctx, parent_symbol, parent_cidr,
                                   prefix=max(lo, 24))
        self._cidr_pool += 1
        prefix = max(lo, min(hi, 16))
        return f"10.{100 + self._cidr_pool}.0.0/{prefix}"

    def _creation_cidr(
        self, ctx: _Context, symbol: str, attr: str
    ) -> str | None:
        """The CIDR the referenced resource was created with."""
        created = ctx.created_with.get(symbol, {})
        spec = self.module.machines.get(ctx.types.get(symbol, ""), None)
        if spec is not None and attr:
            create = next(
                (t for t in spec.transitions.values()
                 if t.category == "create"), None,
            )
            if create is not None:
                for stmt in create.statements():
                    if (
                        isinstance(stmt, ast.Write)
                        and stmt.state == attr
                        and isinstance(stmt.value, ast.Name)
                    ):
                        value = created.get(stmt.value.ident)
                        if isinstance(value, str):
                            return value
        for value in created.values():
            if isinstance(value, str) and "/" in value:
                return value
        return None

    def _carve(
        self, ctx: _Context, parent_symbol: str, parent_cidr: str,
        prefix: int = 24,
    ) -> str:
        """A fresh sub-block of the parent's CIDR."""
        try:
            network = ipaddress.IPv4Network(parent_cidr, strict=False)
        except ValueError:
            self._cidr_pool += 1
            return f"10.{100 + self._cidr_pool}.0.0/{prefix}"
        prefix = max(prefix, network.prefixlen + 1)
        carved = ctx.created_with[parent_symbol].setdefault(
            "__carved__", 0
        )
        ctx.created_with[parent_symbol]["__carved__"] = carved + 1  # type: ignore[assignment]
        subnets = network.subnets(new_prefix=min(prefix, 30))
        for index, block in enumerate(subnets):
            if index == carved:
                return str(block)
        return str(network)

    # -- symbolic state ---------------------------------------------------------

    def _apply_writes(
        self,
        ctx: _Context,
        symbol: str,
        spec: ast.SMSpec,
        transition: ast.Transition,
        params: dict[str, object],
    ) -> None:
        state = ctx.state.setdefault(symbol, {})
        for stmt in transition.statements():
            if isinstance(stmt, ast.Write):
                if isinstance(stmt.value, ast.Literal):
                    state[stmt.state] = stmt.value.value
                elif isinstance(stmt.value, ast.Name):
                    if stmt.value.ident in params:
                        state[stmt.state] = params[stmt.value.ident]
                elif (
                    isinstance(stmt.value, ast.Func)
                    and stmt.value.name == "append"
                ):
                    items = list(state.get(stmt.state) or [])
                    items.append("<item>")
                    state[stmt.state] = items
            elif isinstance(stmt, ast.Call) and stmt.transition.startswith(
                "_Track_"
            ):
                target_symbol = self._call_target_symbol(stmt, params)
                if target_symbol:
                    list_attr = stmt.transition[len("_Track_"):]
                    target_state = ctx.state.setdefault(target_symbol, {})
                    items = list(target_state.get(list_attr) or [])
                    items.append("<item>")
                    target_state[list_attr] = items

    def _call_target_symbol(
        self, stmt: ast.Call, params: dict[str, object]
    ) -> str:
        if isinstance(stmt.target, ast.Name):
            value = params.get(stmt.target.ident)
            if isinstance(value, str) and value.startswith("$"):
                return value[1:]
        return ""

    # -- precondition driving -----------------------------------------------------

    def _drive_preconditions(
        self,
        ctx: _Context,
        spec: ast.SMSpec,
        transition: ast.Transition,
        subject: str,
        patterns: list[AssertPattern],
        params: dict[str, object],
        depth: int,
    ) -> None:
        if not subject:
            return
        for pattern in patterns:
            if pattern.kind == "attr_equals":
                self._drive_attr_to(
                    ctx, subject, str(pattern["attr"]), pattern["value"],
                    depth,
                )
            elif pattern.kind == "ref_attr_equals":
                ref_param = str(pattern["ref"])
                value = params.get(ref_param)
                if isinstance(value, str) and value.startswith("$"):
                    self._drive_attr_to(
                        ctx, value[1:], str(pattern["ref_attr"]),
                        pattern["value"], depth,
                    )

    def _drive_attr_to(
        self,
        ctx: _Context,
        symbol: str,
        attr: str,
        value: object,
        depth: int,
        forbid: str = "",
    ) -> None:
        """Invoke whatever transition establishes ``attr == value``."""
        state = ctx.state.get(symbol, {})
        if state.get(attr) == value:
            return
        sm_name = ctx.types.get(symbol, "")
        spec = self.module.machines.get(sm_name)
        if spec is None:
            raise SkipClass(f"cannot drive state of unknown SM {sm_name!r}")
        driver = self._find_writer(spec, attr, value, forbid)
        if driver is None:
            raise SkipClass(
                f"no transition on {sm_name} establishes {attr}={value!r}"
            )
        transition, param_name = driver
        overrides: dict[str, object] = {}
        if param_name:
            overrides[param_name] = value
        driver_params = self._solve_params(
            ctx, spec, transition, subject=symbol, overrides=overrides,
            depth=depth + 1,
        )
        ctx.steps.append(TraceStep(transition.name, driver_params))
        self._apply_writes(ctx, symbol, spec, transition, driver_params)
        if ctx.state.get(symbol, {}).get(attr) != value:
            ctx.state.setdefault(symbol, {})[attr] = value

    def _find_writer(
        self, spec: ast.SMSpec, attr: str, value: object, forbid: str = ""
    ) -> tuple[ast.Transition, str] | None:
        """A transition writing ``value`` (or a parameter) into ``attr``."""
        fallback: tuple[ast.Transition, str] | None = None
        for transition in spec.transitions.values():
            if transition.is_stub or transition.name == forbid:
                continue
            if transition.category in ("create", "destroy"):
                continue
            for stmt in transition.statements():
                if not isinstance(stmt, ast.Write) or stmt.state != attr:
                    continue
                if isinstance(stmt.value, ast.Literal) and (
                    stmt.value.value == value
                ):
                    return transition, ""
                if isinstance(stmt.value, ast.Name) and any(
                    p.name == stmt.value.ident for p in transition.params
                ):
                    fallback = (transition, stmt.value.ident)
        return fallback

    # -- violation construction ------------------------------------------------------

    def _violation_setup(
        self,
        ctx: _Context,
        spec: ast.SMSpec,
        transition: ast.Transition,
        pattern: AssertPattern,
        subject: str,
    ) -> dict[str, object]:
        """Steps + parameter overrides that violate exactly one assert."""
        kind = pattern.kind
        if kind == "guarded":
            inner = pattern["inner"]
            overrides = self._violation_setup(
                ctx, spec, transition, inner, subject  # type: ignore[arg-type]
            )
            # The guard passes when the parameter is present, which the
            # inner violation guarantees by supplying a bad value.
            if str(pattern["param"]) not in overrides:
                raise SkipClass("guarded assert without parameter handle")
            return overrides
        if kind == "require_param":
            return {str(pattern["param"]): OMIT}
        if kind == "one_of":
            return {str(pattern["param"]): "zz-invalid-choice"}
        if kind == "valid_cidr":
            return {str(pattern["param"]): "not-a-cidr"}
        if kind == "prefix_between":
            return {str(pattern["param"]): self._violating_prefix(ctx, spec,
                                                                  transition)}
        if kind == "cidr_within":
            return {str(pattern["param"]): "192.168.250.0/24"}
        if kind == "no_overlap":
            return self._violate_overlap(ctx, spec, transition, pattern)
        if kind == "attr_equals":
            self._drive_attr_away(ctx, subject, str(pattern["attr"]),
                                  pattern["value"], transition.name)
            return {}
        if kind == "attr_differs":
            self._drive_attr_to(ctx, subject, str(pattern["attr"]),
                                pattern["value"], 0, forbid=transition.name)
            return {}
        if kind == "attr_unset":
            self._drive_attr_set(ctx, subject, str(pattern["attr"]),
                                 transition.name)
            return {}
        if kind == "attr_set":
            state = ctx.state.get(subject, {})
            if state.get(str(pattern["attr"])):
                raise SkipClass("attribute is set after creation; cannot "
                                "construct the unset violation")
            return {}
        if kind == "list_empty":
            self._violate_list_empty(ctx, subject, str(pattern["attr"]))
            return {}
        if kind == "in_collection":
            # Fresh collections are empty, so a direct call violates.
            return {str(pattern["param"]): "v-absent"}
        if kind == "not_in_collection":
            return self._violate_not_in_collection(ctx, spec, transition,
                                                   pattern, subject)
        if kind == "matches_ref":
            return self._violate_matches_ref(ctx, spec, transition, pattern)
        if kind == "ref_attr_equals":
            return self._violate_ref_attr(ctx, spec, transition, pattern)
        if kind == "param_implies_attr":
            self._drive_attr_away(ctx, subject, str(pattern["attr"]),
                                  pattern["attr_value"], transition.name)
            return {str(pattern["param"]): pattern["value"]}
        raise SkipClass(f"no violation strategy for pattern {kind!r}")

    def _violating_prefix(
        self, ctx: _Context, spec: ast.SMSpec, transition: ast.Transition
    ) -> str:
        """A syntactically valid CIDR whose prefix is out of range.

        If a containment assert is also present, carve the /30 from the
        parent so only the prefix check is violated.
        """
        for stmt in transition_asserts(transition):
            pattern = classify_assert(spec, transition, stmt)
            if pattern.kind == "guarded":
                pattern = pattern["inner"]  # type: ignore[assignment]
            if pattern.kind == "cidr_within":
                # The reference will be created by _solve_params later;
                # use the conventional first pool block it will pick.
                break
        self._cidr_pool += 1
        return f"10.{100 + self._cidr_pool}.0.0/30"

    def _violate_overlap(
        self,
        ctx: _Context,
        spec: ast.SMSpec,
        transition: ast.Transition,
        pattern: AssertPattern,
    ) -> dict[str, object]:
        """Create a sibling with the same CIDR first."""
        if transition.category != "create":
            raise SkipClass("overlap violation only constructed for creates")
        params = self._solve_params(ctx, spec, transition, subject="",
                                    overrides={}, depth=1)
        cidr_param = str(pattern["param"])
        cidr_value = params.get(cidr_param)
        if not isinstance(cidr_value, str):
            raise SkipClass("could not solve a passing CIDR to duplicate")
        symbol = ctx.fresh_symbol(spec.name)
        ctx.steps.append(TraceStep(transition.name, params, bind=symbol))
        ctx.types[symbol] = spec.name
        ctx.created_with[symbol] = dict(params)
        ctx.state[symbol] = evaluate_defaults(spec)
        self._apply_writes(ctx, symbol, spec, transition, params)
        # Reuse the same reference and the same CIDR for the violation.
        overrides: dict[str, object] = {cidr_param: cidr_value}
        ref_param = str(pattern["ref"])
        if isinstance(params.get(ref_param), str):
            overrides[ref_param] = params[ref_param]
        return overrides

    def _violate_not_in_collection(
        self,
        ctx: _Context,
        spec: ast.SMSpec,
        transition: ast.Transition,
        pattern: AssertPattern,
        subject: str,
    ) -> dict[str, object]:
        """Run the adding transition once, then repeat the value."""
        value = "v-duplicate"
        params = self._solve_params(
            ctx, spec, transition, subject,
            overrides={str(pattern["param"]): value},
            skip_precondition=True,
        )
        ctx.steps.append(TraceStep(transition.name, params))
        self._apply_writes(ctx, subject, spec, transition, params)
        return {str(pattern["param"]): value}

    def _violate_matches_ref(
        self,
        ctx: _Context,
        spec: ast.SMSpec,
        transition: ast.Transition,
        pattern: AssertPattern,
    ) -> dict[str, object]:
        """Create the reference with a deliberately different attribute."""
        ref_param_name = str(pattern["ref"])
        ref_type = ""
        for param in transition.params:
            if param.name == ref_param_name and param.type.kind == "sm":
                ref_type = param.type.sm_name
        if not ref_type:
            raise SkipClass("matches_ref target is not an SM parameter")
        ref_spec = self.module.machines.get(ref_type)
        if ref_spec is None:
            raise SkipClass(f"no SM for reference type {ref_type!r}")
        create = self._create_transition(ref_type)
        setter = ""
        for stmt in create.statements():
            if (
                isinstance(stmt, ast.Write)
                and stmt.state == str(pattern["ref_attr"])
                and isinstance(stmt.value, ast.Name)
            ):
                setter = stmt.value.ident
        if not setter:
            raise SkipClass("reference attribute is not set from a create "
                            "parameter")
        symbol = self._create_resource(
            ctx, ref_type, depth=1, overrides={setter: "v-mismatched"}
        )
        return {ref_param_name: f"${symbol}"}

    def _violate_ref_attr(
        self,
        ctx: _Context,
        spec: ast.SMSpec,
        transition: ast.Transition,
        pattern: AssertPattern,
    ) -> dict[str, object]:
        """Drive the referenced resource away from the required value."""
        ref_param_name = str(pattern["ref"])
        ref_type = ""
        for param in transition.params:
            if param.name == ref_param_name and param.type.kind == "sm":
                ref_type = param.type.sm_name
        if not ref_type:
            raise SkipClass("ref_attr target is not an SM parameter")
        symbol = self._create_resource(ctx, ref_type, depth=1)
        self._drive_attr_away(ctx, symbol, str(pattern["ref_attr"]),
                              pattern["value"], transition.name)
        return {ref_param_name: f"${symbol}"}

    def _drive_attr_away(
        self, ctx: _Context, symbol: str, attr: str, value: object,
        forbid: str,
    ) -> None:
        """Ensure the symbol's ``attr`` differs from ``value``."""
        if not symbol:
            raise SkipClass("violation requires an existing subject")
        state = ctx.state.get(symbol, {})
        if state.get(attr) != value:
            return
        sm_name = ctx.types.get(symbol, "")
        spec = self.module.machines.get(sm_name)
        if spec is None:
            raise SkipClass(f"cannot drive state of unknown SM {sm_name!r}")
        for transition in spec.transitions.values():
            if transition.is_stub or transition.name == forbid:
                continue
            if transition.category in ("create", "destroy"):
                continue
            for stmt in transition.statements():
                if (
                    isinstance(stmt, ast.Write)
                    and stmt.state == attr
                    and isinstance(stmt.value, ast.Literal)
                    and stmt.value.value != value
                ):
                    params = self._solve_params(
                        ctx, spec, transition, subject=symbol, overrides={},
                        depth=1,
                    )
                    ctx.steps.append(TraceStep(transition.name, params))
                    self._apply_writes(ctx, symbol, spec, transition, params)
                    if ctx.state.get(symbol, {}).get(attr) != value:
                        return
        # A boolean attribute may be drivable through a parameter write.
        if isinstance(value, bool):
            driver = self._find_writer(spec, attr, not value)
            if driver is not None:
                transition, param_name = driver
                overrides = {param_name: (not value)} if param_name else {}
                params = self._solve_params(
                    ctx, spec, transition, subject=symbol,
                    overrides=overrides, depth=1,
                )
                ctx.steps.append(TraceStep(transition.name, params))
                ctx.state.setdefault(symbol, {})[attr] = not value
                return
        raise SkipClass(
            f"no transition on {sm_name} drives {attr} away from {value!r}"
        )

    def _drive_attr_set(
        self, ctx: _Context, symbol: str, attr: str, forbid: str
    ) -> None:
        """Ensure the symbol's reference attribute is set."""
        if not symbol:
            raise SkipClass("violation requires an existing subject")
        state = ctx.state.get(symbol, {})
        if state.get(attr):
            return
        sm_name = ctx.types.get(symbol, "")
        spec = self.module.machines.get(sm_name)
        if spec is None:
            raise SkipClass(f"cannot drive state of unknown SM {sm_name!r}")
        for transition in spec.transitions.values():
            if transition.is_stub or transition.name == forbid:
                continue
            for stmt in transition.statements():
                if (
                    isinstance(stmt, ast.Write)
                    and stmt.state == attr
                    and isinstance(stmt.value, ast.Name)
                    and any(
                        p.name == stmt.value.ident and p.type.kind == "sm"
                        for p in transition.params
                    )
                ):
                    params = self._solve_params(
                        ctx, spec, transition, subject=symbol, overrides={},
                        depth=1,
                    )
                    ref_param = stmt.value.ident
                    if ref_param not in params:
                        ref_type = next(
                            p.type.sm_name for p in transition.params
                            if p.name == ref_param
                        )
                        ref_symbol = self._create_resource(ctx, ref_type, 1)
                        params[ref_param] = f"${ref_symbol}"
                    ctx.steps.append(TraceStep(transition.name, params))
                    self._apply_writes(ctx, symbol, spec, transition, params)
                    ctx.state.setdefault(symbol, {})[attr] = "<set>"
                    return
        raise SkipClass(f"no transition on {sm_name} sets {attr}")

    def _violate_list_empty(
        self, ctx: _Context, subject: str, attr: str
    ) -> None:
        """Create a child whose creation tracks into the subject's list."""
        if not subject:
            raise SkipClass("violation requires an existing subject")
        subject_type = ctx.types.get(subject, "")
        helper = f"_Track_{attr}"
        for spec in self.module.machines.values():
            for transition in spec.transitions.values():
                if transition.category != "create" or transition.is_stub:
                    continue
                for stmt in transition.statements():
                    if (
                        isinstance(stmt, ast.Call)
                        and stmt.transition == helper
                        and isinstance(stmt.target, ast.Name)
                    ):
                        ref_param = stmt.target.ident
                        matches = any(
                            p.name == ref_param
                            and p.type.kind == "sm"
                            and p.type.sm_name == subject_type
                            for p in transition.params
                        )
                        if not matches:
                            continue
                        self._create_resource(
                            ctx, spec.name, depth=1,
                            overrides={ref_param: f"${subject}"},
                        )
                        return
        raise SkipClass(
            f"no create on any SM tracks into {subject_type}.{attr}"
        )
