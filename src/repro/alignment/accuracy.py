"""Scenario accuracy measurement: the numbers behind Fig. 3.

A trace "aligns" when every step's response matches the reference
cloud's on success/failure, error code, and (for successes) response
payload.  Accuracy is reported per scenario, as the paper plots it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..scenarios.model import Trace
from .differ import diff_traces


@dataclass
class ScenarioAccuracy:
    """Aligned/total per scenario plus the per-trace verdicts."""

    emulator_name: str
    per_scenario: dict[str, tuple[int, int]] = field(default_factory=dict)
    per_trace: dict[str, bool] = field(default_factory=dict)
    failures: dict[str, str] = field(default_factory=dict)

    @property
    def total(self) -> tuple[int, int]:
        aligned = sum(a for a, __ in self.per_scenario.values())
        count = sum(t for __, t in self.per_scenario.values())
        return aligned, count

    def summary(self) -> str:
        aligned, count = self.total
        parts = [f"{self.emulator_name}: {aligned}/{count} traces aligned"]
        for scenario in sorted(self.per_scenario):
            a, t = self.per_scenario[scenario]
            parts.append(f"  {scenario}: {a}/{t}")
        return "\n".join(parts)


def measure_accuracy(
    emulator_name: str,
    backends: dict[str, object],
    clouds: dict[str, object],
    traces: list[Trace],
) -> ScenarioAccuracy:
    """Run each trace on its service's cloud and emulator; score alignment.

    ``backends`` and ``clouds`` map service name to backend instance.
    Traces whose service the emulator does not provide count as
    misaligned (coverage failures are fidelity failures for a DevOps
    program).
    """
    result = ScenarioAccuracy(emulator_name=emulator_name)
    for trace in traces:
        cloud = clouds[trace.service]
        backend = backends.get(trace.service)
        aligned = False
        reason = "service not emulated"
        if backend is not None:
            report = diff_traces(cloud, backend, [trace])
            aligned = report.aligned == 1
            if not aligned and report.divergences:
                divergence = report.divergences[0]
                reason = f"{divergence.api}: {divergence.reason}"
        a, t = result.per_scenario.get(trace.scenario, (0, 0))
        result.per_scenario[trace.scenario] = (a + (1 if aligned else 0),
                                               t + 1)
        result.per_trace[trace.name] = aligned
        if not aligned:
            result.failures[trace.name] = reason
    return result
