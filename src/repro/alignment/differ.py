"""Differential execution: run traces on both backends, find divergence.

Each generated trace runs on the reference cloud and on the emulator;
the comparator reports the first step where behaviour differs, together
with both responses — the "delta" that diagnosis feeds to the LLM
(§4.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..interpreter.errors import ApiResponse
from ..scenarios.model import run_trace, Trace
from ..telemetry import ensure_telemetry
from .compare import compare_runs, is_transient_failure, TraceComparison


@dataclass
class Divergence:
    """One behavioural difference between emulator and cloud."""

    trace: Trace
    step_index: int
    api: str
    reason: str
    cloud_response: ApiResponse
    emulator_response: ApiResponse
    resolved_params: dict = field(default_factory=dict)

    @property
    def emulator_too_permissive(self) -> bool:
        """The emulator accepted what the cloud rejects: a missing check."""
        return self.emulator_response.success and not (
            self.cloud_response.success
        )

    @property
    def emulator_too_strict(self) -> bool:
        """The emulator rejected what the cloud accepts: a spurious check."""
        return self.cloud_response.success and not (
            self.emulator_response.success
        )

    @property
    def wrong_error_code(self) -> bool:
        return (
            not self.cloud_response.success
            and not self.emulator_response.success
            and self.cloud_response.error_code
            != self.emulator_response.error_code
        )

    @property
    def data_mismatch(self) -> bool:
        return self.cloud_response.success and self.emulator_response.success


@dataclass
class DiffReport:
    """The outcome of one differential pass over a trace set."""

    compared: int = 0
    aligned: int = 0
    divergences: list[Divergence] = field(default_factory=list)
    comparisons: list[TraceComparison] = field(default_factory=list)
    #: Divergent steps dropped because the cloud side failed
    #: transiently (only counted when ``skip_transient`` is on).
    transient_skips: int = 0

    @property
    def alignment_ratio(self) -> float:
        return self.aligned / self.compared if self.compared else 1.0


def diff_traces(
    cloud, emulator, traces: list[Trace], skip_transient: bool = False,
    telemetry=None,
) -> DiffReport:
    """Run every trace on both backends and collect divergences.

    ``skip_transient`` is set by chaos-mode alignment: a divergent
    step whose cloud response is a throttle/5xx/timeout that leaked
    through the retry layer is weather, not behaviour — it is counted
    in ``transient_skips`` instead of becoming a divergence, so the
    repair machinery never "fixes" the spec against infrastructure
    noise.
    """
    tele = ensure_telemetry(telemetry)
    report = DiffReport()
    for trace in traces:
        with tele.span(
            "diff.trace", kind="trace", trace=trace.name,
            scenario=trace.scenario,
        ) as span:
            cloud_run = run_trace(cloud, trace)
            emulator_run = run_trace(emulator, trace)
            comparison = compare_runs(cloud_run, emulator_run)
            report.compared += 1
            report.comparisons.append(comparison)
            span.set("aligned", comparison.aligned)
            if comparison.aligned:
                report.aligned += 1
                continue
            index = comparison.divergent_step_index
            if skip_transient and is_transient_failure(
                cloud_run.results[index].response
            ):
                report.transient_skips += 1
                span.set("transient_skip", True)
                continue
            span.set("divergent_api", cloud_run.results[index].api)
            report.divergences.append(
                Divergence(
                    trace=trace,
                    step_index=index,
                    api=cloud_run.results[index].api,
                    reason=comparison.steps[index].reason,
                    cloud_response=cloud_run.results[index].response,
                    emulator_response=emulator_run.results[index].response,
                    resolved_params=cloud_run.results[index].resolved_params,
                )
            )
    tele.counter("diff.traces_compared").inc(report.compared)
    tele.counter("diff.divergences").inc(len(report.divergences))
    return report
