"""Differential execution: run traces on both backends, find divergence.

Each generated trace runs on the reference cloud and on the emulator;
the comparator reports the first step where behaviour differs, together
with both responses — the "delta" that diagnosis feeds to the LLM
(§4.3).

Traces are independent (each run resets its backend first), so the
pass can be *sharded*: contiguous chunks of the trace list run
concurrently, each against its own freshly built backend pair, and the
per-trace outcomes merge back in trace order.  The merged report is
identical to a sequential pass over fresh backends.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

from ..interpreter.errors import ApiResponse
from ..scenarios.model import run_trace, Trace
from ..telemetry import ensure_telemetry
from .compare import compare_runs, is_transient_failure, TraceComparison


@dataclass
class Divergence:
    """One behavioural difference between emulator and cloud."""

    trace: Trace
    step_index: int
    api: str
    reason: str
    cloud_response: ApiResponse
    emulator_response: ApiResponse
    resolved_params: dict = field(default_factory=dict)

    @property
    def emulator_too_permissive(self) -> bool:
        """The emulator accepted what the cloud rejects: a missing check."""
        return self.emulator_response.success and not (
            self.cloud_response.success
        )

    @property
    def emulator_too_strict(self) -> bool:
        """The emulator rejected what the cloud accepts: a spurious check."""
        return self.cloud_response.success and not (
            self.emulator_response.success
        )

    @property
    def wrong_error_code(self) -> bool:
        return (
            not self.cloud_response.success
            and not self.emulator_response.success
            and self.cloud_response.error_code
            != self.emulator_response.error_code
        )

    @property
    def data_mismatch(self) -> bool:
        return self.cloud_response.success and self.emulator_response.success


@dataclass
class DiffReport:
    """The outcome of one differential pass over a trace set."""

    compared: int = 0
    aligned: int = 0
    divergences: list[Divergence] = field(default_factory=list)
    comparisons: list[TraceComparison] = field(default_factory=list)
    #: Divergent steps dropped because the cloud side failed
    #: transiently (only counted when ``skip_transient`` is on).
    transient_skips: int = 0

    @property
    def alignment_ratio(self) -> float:
        return self.aligned / self.compared if self.compared else 1.0


def _diff_one(cloud, emulator, trace: Trace, skip_transient: bool, tele):
    """Diff one trace: (comparison, divergence | None, transient_skip)."""
    with tele.span(
        "diff.trace", kind="trace", trace=trace.name,
        scenario=trace.scenario,
    ) as span:
        cloud_run = run_trace(cloud, trace)
        emulator_run = run_trace(emulator, trace)
        comparison = compare_runs(cloud_run, emulator_run)
        span.set("aligned", comparison.aligned)
        if comparison.aligned:
            return comparison, None, False
        index = comparison.divergent_step_index
        if skip_transient and is_transient_failure(
            cloud_run.results[index].response
        ):
            span.set("transient_skip", True)
            return comparison, None, True
        span.set("divergent_api", cloud_run.results[index].api)
        divergence = Divergence(
            trace=trace,
            step_index=index,
            api=cloud_run.results[index].api,
            reason=comparison.steps[index].reason,
            cloud_response=cloud_run.results[index].response,
            emulator_response=emulator_run.results[index].response,
            resolved_params=cloud_run.results[index].resolved_params,
        )
        return comparison, divergence, False


def _shards(items: list, count: int) -> list[list]:
    """Split into at most ``count`` contiguous, balanced chunks."""
    count = min(count, len(items))
    size, extra = divmod(len(items), count)
    shards, start = [], 0
    for index in range(count):
        end = start + size + (1 if index < extra else 0)
        shards.append(items[start:end])
        start = end
    return shards


def diff_traces(
    cloud, emulator, traces: list[Trace], skip_transient: bool = False,
    telemetry=None, parallel: int = 1, backend_factory=None,
) -> DiffReport:
    """Run every trace on both backends and collect divergences.

    ``skip_transient`` is set by chaos-mode alignment: a divergent
    step whose cloud response is a throttle/5xx/timeout that leaked
    through the retry layer is weather, not behaviour — it is counted
    in ``transient_skips`` instead of becoming a divergence, so the
    repair machinery never "fixes" the spec against infrastructure
    noise.

    With ``parallel > 1`` and a ``backend_factory`` (returning a fresh
    ``(cloud, emulator)`` pair), the trace list is split into
    contiguous shards, each executed on its own backend pair; per-trace
    outcomes merge back in trace order, so the report does not depend
    on scheduling.  Without a factory the pass stays sequential (the
    caller's backends are stateful and cannot be shared across
    threads).
    """
    tele = ensure_telemetry(telemetry)
    workers = max(1, int(parallel))
    if workers > 1 and backend_factory is not None and len(traces) > 1:
        shards = _shards(list(traces), workers)

        def run_shard(shard: list[Trace]):
            shard_cloud, shard_emulator = backend_factory()
            return [
                _diff_one(shard_cloud, shard_emulator, trace,
                          skip_transient, tele)
                for trace in shard
            ]

        with tele.anchored():
            with ThreadPoolExecutor(max_workers=len(shards)) as pool:
                # ``map`` preserves shard order; shards are contiguous,
                # so the flattened outcomes are in trace order.
                outcomes = [
                    outcome
                    for shard_outcomes in pool.map(run_shard, shards)
                    for outcome in shard_outcomes
                ]
    else:
        outcomes = [
            _diff_one(cloud, emulator, trace, skip_transient, tele)
            for trace in traces
        ]

    report = DiffReport()
    for comparison, divergence, transient_skip in outcomes:
        report.compared += 1
        report.comparisons.append(comparison)
        if comparison.aligned:
            report.aligned += 1
        elif transient_skip:
            report.transient_skips += 1
        elif divergence is not None:
            report.divergences.append(divergence)
    tele.counter("diff.traces_compared").inc(report.compared)
    tele.counter("diff.divergences").inc(len(report.divergences))
    return report
