"""Automated alignment (§4.3): symbolic classes, guided traces,
differential execution, diagnosis, repair, and the closed loop.
"""

from .accuracy import measure_accuracy, ScenarioAccuracy
from .compare import (
    compare_responses,
    compare_runs,
    normalize_value,
    StepComparison,
    TraceComparison,
)
from .diagnose import (
    apply_repair,
    diagnose,
    Diagnosis,
    DOC_GAP,
    Repair,
    SPEC_ERROR,
    UNKNOWN,
)
from .differ import diff_traces, DiffReport, Divergence
from .errordecode import ErrorDecoder, ErrorExplanation
from .fuzz import FuzzDivergence, FuzzReport, RandomFuzzer
from .loop import align_module, AlignmentReport, AlignmentRound
from .symbolic import (
    AssertPattern,
    classify_assert,
    ClassCoverage,
    module_classes,
    SymbolicClass,
    transition_classes,
)
from .tracegen import OMIT, SkipClass, TraceBuilder

__all__ = [
    "align_module",
    "AlignmentReport",
    "AlignmentRound",
    "apply_repair",
    "AssertPattern",
    "ClassCoverage",
    "classify_assert",
    "compare_responses",
    "compare_runs",
    "diagnose",
    "Diagnosis",
    "diff_traces",
    "DiffReport",
    "Divergence",
    "DOC_GAP",
    "ErrorDecoder",
    "ErrorExplanation",
    "FuzzDivergence",
    "FuzzReport",
    "measure_accuracy",
    "RandomFuzzer",
    "module_classes",
    "normalize_value",
    "OMIT",
    "Repair",
    "ScenarioAccuracy",
    "SkipClass",
    "SPEC_ERROR",
    "StepComparison",
    "SymbolicClass",
    "TraceBuilder",
    "TraceComparison",
    "transition_classes",
    "UNKNOWN",
]
