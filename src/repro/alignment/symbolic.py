"""Symbolic passes over SMs (§4.3).

The search space of API behaviours is divided into symbolically
equivalent classes based on the check/assert conditions of each state
transition: for every transition there is one *all-pass* class, plus
one class per assert in which exactly that assert is violated.  The
trace generator then builds one guided test per class.

Asserts are classified by structural pattern matching against the
shapes the rule compiler emits; the classification exposes the
predicate's meaning (which parameter or state variable it constrains
and how), which is what lets the generator construct passing and
violating inputs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..spec import ast


@dataclass(frozen=True)
class AssertPattern:
    """The recognized meaning of one assert."""

    kind: str
    fields: tuple[tuple[str, object], ...] = ()

    def __getitem__(self, key: str) -> object:
        for name, value in self.fields:
            if name == key:
                return value
        raise KeyError(key)

    def get(self, key: str, default: object = None) -> object:
        for name, value in self.fields:
            if name == key:
                return value
        return default


def _pattern(kind: str, **fields: object) -> AssertPattern:
    return AssertPattern(kind, tuple(sorted(fields.items())))


def _is_exists(pred: ast.Pred) -> str | None:
    """Matches ``exists(name)``; returns the name."""
    if (
        isinstance(pred, ast.Truthy)
        and isinstance(pred.expr, ast.Func)
        and pred.expr.name == "exists"
        and len(pred.expr.args) == 1
        and isinstance(pred.expr.args[0], ast.Name)
    ):
        return pred.expr.args[0].ident
    return None


def _name_of(expr: ast.Expr) -> str | None:
    return expr.ident if isinstance(expr, ast.Name) else None


def _is_param(spec: ast.SMSpec, transition: ast.Transition, name: str) -> bool:
    return any(p.name == name for p in transition.params)


def _is_state(spec: ast.SMSpec, name: str) -> bool:
    return spec.state_type(name) is not None


def _strip_self_expr(expr: ast.Expr) -> ast.Expr:
    """Normalize ``self.attr`` to a bare name for pattern matching."""
    if isinstance(expr, ast.Attr):
        if isinstance(expr.base, ast.SelfRef):
            return ast.Name(expr.attr)
        return ast.Attr(_strip_self_expr(expr.base), expr.attr)
    if isinstance(expr, ast.Func):
        return ast.Func(
            expr.name, tuple(_strip_self_expr(arg) for arg in expr.args)
        )
    if isinstance(expr, ast.ListExpr):
        return ast.ListExpr(
            tuple(_strip_self_expr(item) for item in expr.items)
        )
    return expr


def _strip_self_pred(pred: ast.Pred) -> ast.Pred:
    if isinstance(pred, ast.Truthy):
        return ast.Truthy(_strip_self_expr(pred.expr))
    if isinstance(pred, ast.Not):
        return ast.Not(_strip_self_pred(pred.pred))
    if isinstance(pred, ast.And):
        return ast.And(_strip_self_pred(pred.left),
                       _strip_self_pred(pred.right))
    if isinstance(pred, ast.Or):
        return ast.Or(_strip_self_pred(pred.left),
                      _strip_self_pred(pred.right))
    if isinstance(pred, ast.Compare):
        return ast.Compare(pred.op, _strip_self_expr(pred.left),
                           _strip_self_expr(pred.right))
    return pred


def classify_assert(
    spec: ast.SMSpec, transition: ast.Transition, stmt: ast.Assert
) -> AssertPattern:
    """Recognize the symbolic meaning of an assert's predicate."""
    pred = _strip_self_pred(stmt.pred)

    exists_name = _is_exists(pred)
    if exists_name is not None:
        if _is_param(spec, transition, exists_name):
            return _pattern("require_param", param=exists_name)
        return _pattern("attr_set", attr=exists_name)

    if isinstance(pred, ast.Not):
        inner = _is_exists(pred.pred)
        if inner is not None:
            if _is_state(spec, inner):
                return _pattern("attr_unset", attr=inner)
            return _pattern("param_absent", param=inner)
        if (
            isinstance(pred.pred, ast.Truthy)
            and isinstance(pred.pred.expr, ast.Func)
            and pred.pred.expr.name == "cidr_overlaps_any"
        ):
            args = pred.pred.expr.args
            if (
                len(args) == 2
                and isinstance(args[0], ast.Name)
                and isinstance(args[1], ast.Attr)
                and isinstance(args[1].base, ast.Name)
            ):
                return _pattern(
                    "no_overlap",
                    param=args[0].ident,
                    ref=args[1].base.ident,
                    list_attr=args[1].attr,
                )
        if (
            isinstance(pred.pred, ast.Truthy)
            and isinstance(pred.pred.expr, ast.Func)
            and pred.pred.expr.name == "contains"
        ):
            args = pred.pred.expr.args
            if len(args) == 2 and isinstance(args[0], ast.Name) and isinstance(
                args[1], ast.Name
            ):
                return _pattern("not_in_collection",
                                attr=args[0].ident, param=args[1].ident)

    if isinstance(pred, ast.Truthy) and isinstance(pred.expr, ast.Func):
        func = pred.expr
        if func.name == "valid_cidr" and isinstance(func.args[0], ast.Name):
            return _pattern("valid_cidr", param=func.args[0].ident)
        if func.name == "cidr_within":
            inner, outer = func.args
            if (
                isinstance(inner, ast.Name)
                and isinstance(outer, ast.Attr)
                and isinstance(outer.base, ast.Name)
            ):
                return _pattern(
                    "cidr_within",
                    param=inner.ident,
                    ref=outer.base.ident,
                    ref_attr=outer.attr,
                )
        if func.name == "contains":
            container, item = func.args
            if isinstance(container, ast.Name) and isinstance(item, ast.Name):
                return _pattern("in_collection",
                                attr=container.ident, param=item.ident)

    if isinstance(pred, ast.Compare):
        left, right = pred.left, pred.right
        if pred.op == "in" and isinstance(left, ast.Name) and isinstance(
            right, ast.ListExpr
        ):
            members = tuple(
                item.value for item in right.items
                if isinstance(item, ast.Literal)
            )
            return _pattern("one_of", param=left.ident, values=members)
        if pred.op in ("==", "!=") and isinstance(left, ast.Name):
            name = left.ident
            if isinstance(right, ast.Literal) and _is_state(spec, name):
                kind = "attr_equals" if pred.op == "==" else "attr_differs"
                return _pattern(kind, attr=name, value=right.value)
            if isinstance(right, ast.Attr) and isinstance(right.base, ast.Name):
                return _pattern(
                    "matches_ref",
                    attr=name,
                    ref=right.base.ident,
                    ref_attr=right.attr,
                )
        if (
            pred.op == "=="
            and isinstance(left, ast.Func)
            and left.name == "len"
            and isinstance(left.args[0], ast.Name)
            and isinstance(right, ast.Literal)
            and right.value == 0
        ):
            return _pattern("list_empty", attr=left.args[0].ident)
        if (
            pred.op == "=="
            and isinstance(left, ast.Attr)
            and isinstance(left.base, ast.Name)
            and isinstance(right, ast.Literal)
        ):
            return _pattern(
                "ref_attr_equals",
                ref=left.base.ident,
                ref_attr=left.attr,
                value=right.value,
            )

    # Guarded forms: Or(Not(exists(p)), inner) — optional-parameter
    # checks; classify the inner predicate and mark the guard.
    if isinstance(pred, ast.Or):
        guard = pred.left
        if isinstance(guard, ast.Not):
            guarded_param = _is_exists(guard.pred)
            if guarded_param is not None:
                inner = classify_assert(
                    spec, transition, ast.Assert(pred.right, stmt.error_code)
                )
                return _pattern(
                    "guarded",
                    param=guarded_param,
                    inner=inner,
                )
        # check_param_implies_attr: Or(Or(!exists(p), p != v), attr == av)
        if isinstance(pred.left, ast.Or) and isinstance(
            pred.right, ast.Compare
        ):
            left_or = pred.left
            if (
                isinstance(left_or.left, ast.Not)
                and _is_exists(left_or.left.pred) is not None
                and isinstance(left_or.right, ast.Compare)
                and left_or.right.op == "!="
                and isinstance(left_or.right.left, ast.Name)
                and isinstance(left_or.right.right, ast.Literal)
                and pred.right.op == "=="
                and isinstance(pred.right.left, ast.Name)
                and isinstance(pred.right.right, ast.Literal)
            ):
                return _pattern(
                    "param_implies_attr",
                    param=left_or.right.left.ident,
                    value=left_or.right.right.value,
                    attr=pred.right.left.ident,
                    attr_value=pred.right.right.value,
                )

    # Range form: And(prefix_len(p) >= lo, prefix_len(p) <= hi)
    if isinstance(pred, ast.And):
        left, right = pred.left, pred.right
        if (
            isinstance(left, ast.Compare)
            and isinstance(right, ast.Compare)
            and isinstance(left.left, ast.Func)
            and left.left.name == "prefix_len"
            and isinstance(left.left.args[0], ast.Name)
            and isinstance(left.right, ast.Literal)
            and isinstance(right.right, ast.Literal)
        ):
            return _pattern(
                "prefix_between",
                param=left.left.args[0].ident,
                lo=left.right.value,
                hi=right.right.value,
            )

    return _pattern("opaque")


@dataclass(frozen=True)
class SymbolicClass:
    """One equivalence class of a transition's behaviour."""

    sm: str
    transition: str
    #: Index of the targeted assert in the flattened statement list, or
    #: -1 for the all-pass class.
    assert_index: int
    pattern: AssertPattern | None
    error_code: str = ""

    @property
    def is_all_pass(self) -> bool:
        return self.assert_index < 0


def transition_asserts(transition: ast.Transition) -> list[ast.Assert]:
    return [
        stmt for stmt in transition.statements()
        if isinstance(stmt, ast.Assert)
    ]


def transition_classes(
    spec: ast.SMSpec, transition: ast.Transition
) -> list[SymbolicClass]:
    """All symbolic classes of one transition: all-pass + one per assert."""
    classes = [
        SymbolicClass(spec.name, transition.name, -1, None)
    ]
    for index, stmt in enumerate(transition_asserts(transition)):
        classes.append(
            SymbolicClass(
                spec.name,
                transition.name,
                index,
                classify_assert(spec, transition, stmt),
                error_code=stmt.error_code,
            )
        )
    return classes


def module_classes(module: ast.SpecModule) -> list[SymbolicClass]:
    """Symbolic classes of every public transition in a module."""
    classes: list[SymbolicClass] = []
    for spec in module.machines.values():
        for transition in spec.transitions.values():
            if transition.name.startswith("_") or transition.is_stub:
                continue
            classes.extend(transition_classes(spec, transition))
    return classes


@dataclass
class ClassCoverage:
    """Bookkeeping for which classes the generator could reach (§6)."""

    covered: list[SymbolicClass] = field(default_factory=list)
    skipped: list[tuple[SymbolicClass, str]] = field(default_factory=list)

    @property
    def coverage_ratio(self) -> float:
        total = len(self.covered) + len(self.skipped)
        return len(self.covered) / total if total else 1.0
