"""An S3-flavoured object-storage catalog.

Storage emulation is the other big third-party-emulator domain the
paper cites (Azurite for Azure Storage).  This catalog exercises
behaviours the networking services don't: keyed object maps with
versioning toggles, multipart upload lifecycles, bucket policies, and
the classic BucketNotEmpty deletion guard.
"""

from __future__ import annotations

from .build import (
    api,
    attr,
    make_create,
    make_delete,
    make_describe,
    make_list,
    make_modify,
    param,
    resource,
)
from .model import rule, ServiceDoc

NOTFOUND = "NoSuchBucket"

STORAGE_CLASSES = ("STANDARD", "STANDARD_IA", "GLACIER")


def _bucket() -> "resource":
    attrs = [
        attr("bucket_name"),
        attr("region"),
        attr("objects", "Map"),
        attr("versioning", "Enum", enum=("Suspended", "Enabled"),
             default="Suspended"),
        attr("public_access_blocked", "Boolean", default=True),
        attr("policy_document"),
        attr("lifecycle_rules", "List"),
        attr("tags", "Map"),
    ]
    create = make_create(
        "bucket",
        "CreateBucket",
        [param("bucket_name", required=True), param("region")],
        attrs,
        desc="Creates a new bucket in the specified region.",
    )
    delete = make_delete(
        "bucket",
        "DeleteBucket",
        guard_rules=[
            rule("check_list_empty", attr="objects", code="BucketNotEmpty"),
        ],
        desc="Deletes the specified bucket. All objects must be deleted "
             "first.",
    )
    head = make_describe("bucket", "HeadBucket", attrs)
    listing = make_list("bucket", "ListBuckets")

    put_object = api(
        "PutObject", "modify",
        [param("bucket_id", required=True), param("object_key",
                                                  required=True),
         param("body")],
        [
            rule("require_param", param="bucket_id",
                 code="MissingParameter"),
            rule("require_param", param="object_key",
                 code="MissingParameter"),
            rule("map_put", attr="objects", key_param="object_key",
                 value_param="body"),
        ],
        desc="Adds an object to the bucket.",
    )
    get_object = api(
        "GetObject", "describe",
        [param("bucket_id", required=True),
         param("object_key", required=True)],
        [
            rule("check_in_map", attr="objects", key_param="object_key",
                 code="NoSuchKey"),
            rule("map_read", attr="objects", key_param="object_key"),
        ],
        desc="Retrieves an object from the bucket.",
    )
    delete_object = api(
        "DeleteObject", "modify",
        [param("bucket_id", required=True),
         param("object_key", required=True)],
        [
            rule("require_param", param="bucket_id",
                 code="MissingParameter"),
            rule("require_param", param="object_key",
                 code="MissingParameter"),
            rule("check_in_map", attr="objects", key_param="object_key",
                 code="NoSuchKey"),
            rule("map_remove", attr="objects", key_param="object_key"),
        ],
        desc="Removes an object from the bucket.",
    )
    list_objects = api(
        "ListObjectsV2", "describe",
        [param("bucket_id", required=True)],
        [rule("read_attr", attr="objects")],
        desc="Lists the objects in the bucket.",
    )
    put_versioning = api(
        "PutBucketVersioning", "modify",
        [param("bucket_id", required=True), param("versioning")],
        [
            rule("require_param", param="bucket_id",
                 code="MissingParameter"),
            rule("require_one_of", param="versioning",
                 values=("Suspended", "Enabled"),
                 code="IllegalVersioningConfigurationException"),
            rule("set_attr_param", attr="versioning", param="versioning"),
        ],
        desc="Sets the versioning state of the bucket.",
    )
    get_versioning = api(
        "GetBucketVersioning", "describe",
        [param("bucket_id", required=True)],
        [rule("read_attr", attr="versioning")],
        desc="Returns the versioning state of the bucket.",
    )
    put_public_access = make_modify(
        "bucket", "PutPublicAccessBlock", "public_access_blocked",
        param_type="Boolean",
        desc="Configures the bucket's public access block.",
    )
    put_tagging = api(
        "PutBucketTagging", "modify",
        [param("bucket_id", required=True), param("tag_key",
                                                  required=True),
         param("tag_value")],
        [
            rule("require_param", param="bucket_id",
                 code="MissingParameter"),
            rule("require_param", param="tag_key", code="MissingParameter"),
            rule("map_put", attr="tags", key_param="tag_key",
                 value_param="tag_value"),
        ],
        desc="Adds a tag to the bucket.",
    )
    return resource(
        "bucket",
        attrs,
        [create, delete, head, listing, put_object, get_object,
         delete_object, list_objects, put_versioning, get_versioning,
         put_public_access, put_tagging],
        desc="A container for objects stored in the cloud.",
        notfound=NOTFOUND,
    )


def _multipart_upload() -> "resource":
    attrs = [
        attr("bucket", "Reference", ref="bucket"),
        attr("object_key"),
        attr("parts", "List"),
        attr("status", "Enum",
             enum=("IN_PROGRESS", "COMPLETED", "ABORTED"),
             default="IN_PROGRESS"),
        attr("storage_class", "Enum", enum=STORAGE_CLASSES,
             default="STANDARD"),
    ]
    create = make_create(
        "multipart_upload",
        "CreateMultipartUpload",
        [
            param("bucket_id", "Reference", required=True, ref="bucket"),
            param("object_key", required=True),
            param("storage_class"),
        ],
        attrs,
        extra_rules=[
            rule("require_one_of", param="storage_class",
                 values=STORAGE_CLASSES, code="InvalidStorageClass"),
            rule("link_ref", attr="bucket", param="bucket_id"),
        ],
        desc="Initiates a multipart upload to the specified bucket.",
    )
    upload_part = api(
        "UploadPart", "modify",
        [param("multipart_upload_id", required=True),
         param("part_number", required=True)],
        [
            rule("require_param", param="multipart_upload_id",
                 code="MissingParameter"),
            rule("require_param", param="part_number",
                 code="MissingParameter"),
            rule("check_attr_is", attr="status", value="IN_PROGRESS",
                 code="NoSuchUpload"),
            rule("check_not_in_list", param="part_number", attr="parts",
                 code="InvalidPart"),
            rule("append_to_attr", attr="parts", param="part_number"),
        ],
        desc="Uploads a part in an in-progress multipart upload.",
    )
    complete = api(
        "CompleteMultipartUpload", "modify",
        [param("multipart_upload_id", required=True)],
        [
            rule("require_param", param="multipart_upload_id",
                 code="MissingParameter"),
            rule("check_attr_is", attr="status", value="IN_PROGRESS",
                 code="NoSuchUpload"),
            rule("check_attr_set", attr="object_key",
                 code="InvalidRequest"),
            rule("set_attr_const", attr="status", value="COMPLETED"),
        ],
        desc="Completes a multipart upload, assembling its parts.",
    )
    abort = api(
        "AbortMultipartUpload", "modify",
        [param("multipart_upload_id", required=True)],
        [
            rule("require_param", param="multipart_upload_id",
                 code="MissingParameter"),
            rule("check_attr_is", attr="status", value="IN_PROGRESS",
                 code="NoSuchUpload"),
            rule("set_attr_const", attr="status", value="ABORTED"),
        ],
        desc="Aborts an in-progress multipart upload.",
    )
    listing = make_list("multipart_upload", "ListMultipartUploads")
    describe = make_describe("multipart_upload", "ListParts", attrs)
    return resource(
        "multipart_upload",
        attrs,
        [create, upload_part, complete, abort, listing, describe],
        parent="bucket",
        desc="An in-progress multipart upload.",
        notfound="NoSuchUpload",
    )


def _bucket_policy() -> "resource":
    attrs = [
        attr("bucket", "Reference", ref="bucket"),
        attr("policy_document"),
        attr("effect", "Enum", enum=("Allow", "Deny"), default="Allow"),
    ]
    put = make_create(
        "bucket_policy",
        "PutBucketPolicy",
        [
            param("bucket_id", "Reference", required=True, ref="bucket"),
            param("policy_document", required=True),
            param("effect"),
        ],
        attrs,
        extra_rules=[
            rule("require_one_of", param="effect",
                 values=("Allow", "Deny"), code="MalformedPolicy"),
            rule("check_ref_attr_is", ref="bucket_id",
                 ref_attr="public_access_blocked", value=False,
                 code="AccessDenied"),
            rule("link_ref", attr="bucket", param="bucket_id"),
        ],
        desc="Attaches a policy to a bucket. The bucket's public access "
             "block must be disabled first.",
    )
    get = make_describe("bucket_policy", "GetBucketPolicy", attrs)
    delete = make_delete("bucket_policy", "DeleteBucketPolicy",
                         desc="Removes the policy from the bucket.")
    return resource(
        "bucket_policy",
        attrs,
        [put, get, delete],
        parent="bucket",
        desc="A resource-based access policy for a bucket.",
        notfound="NoSuchBucketPolicy",
    )


def _lifecycle_configuration() -> "resource":
    attrs = [
        attr("bucket", "Reference", ref="bucket"),
        attr("rules", "List"),
        attr("status", "Enum", enum=("Enabled", "Disabled"),
             default="Enabled"),
    ]
    put = make_create(
        "lifecycle_configuration",
        "PutBucketLifecycleConfiguration",
        [param("bucket_id", "Reference", required=True, ref="bucket")],
        attrs,
        extra_rules=[
            rule("link_ref", attr="bucket", param="bucket_id"),
            rule("track_in_ref", param="bucket_id",
                 list_attr="lifecycle_rules", source="id"),
        ],
        desc="Creates a lifecycle configuration for the bucket.",
    )
    add_rule = api(
        "AddLifecycleRule", "modify",
        [param("lifecycle_configuration_id", required=True),
         param("rule_name", required=True)],
        [
            rule("require_param", param="lifecycle_configuration_id",
                 code="MissingParameter"),
            rule("require_param", param="rule_name",
                 code="MissingParameter"),
            rule("check_not_in_list", param="rule_name", attr="rules",
                 code="InvalidArgument"),
            rule("append_to_attr", attr="rules", param="rule_name"),
        ],
        desc="Adds a rule to the lifecycle configuration.",
    )
    get = make_describe("lifecycle_configuration",
                        "GetBucketLifecycleConfiguration", attrs)
    delete = make_delete(
        "lifecycle_configuration",
        "DeleteBucketLifecycle",
        guard_rules=[
            rule("untrack_in_attr", attr="bucket",
                 list_attr="lifecycle_rules", source="id"),
        ],
        desc="Deletes the lifecycle configuration from the bucket.",
    )
    return resource(
        "lifecycle_configuration",
        attrs,
        [put, add_rule, get, delete],
        parent="bucket",
        desc="Rules that manage the lifecycle of a bucket's objects.",
        notfound="NoSuchLifecycleConfiguration",
    )


def _access_point() -> "resource":
    attrs = [
        attr("access_point_name"),
        attr("bucket", "Reference", ref="bucket"),
        attr("network_origin", "Enum", enum=("Internet", "VPC"),
             default="Internet"),
        attr("status", "Enum", enum=("CREATING", "READY"),
             default="CREATING"),
    ]
    create = make_create(
        "access_point",
        "CreateAccessPoint",
        [
            param("access_point_name", required=True),
            param("bucket_id", "Reference", required=True, ref="bucket"),
            param("network_origin"),
        ],
        attrs,
        extra_rules=[
            rule("require_one_of", param="network_origin",
                 values=("Internet", "VPC"), code="InvalidRequest"),
            rule("link_ref", attr="bucket", param="bucket_id"),
            rule("set_attr_const", attr="status", value="READY"),
        ],
        desc="Creates an access point for the specified bucket.",
    )
    delete = make_delete("access_point", "DeleteAccessPoint",
                         desc="Deletes the specified access point.")
    get = make_describe("access_point", "GetAccessPoint", attrs)
    listing = make_list("access_point", "ListAccessPoints")
    return resource(
        "access_point",
        attrs,
        [create, delete, get, listing],
        parent="bucket",
        desc="A named network endpoint attached to a bucket.",
        notfound="NoSuchAccessPoint",
    )


def build_s3_catalog() -> ServiceDoc:
    """The S3-flavoured object storage catalog (5 resources)."""
    return ServiceDoc(
        name="s3",
        provider="aws",
        resources=[
            _bucket(),
            _multipart_upload(),
            _bucket_policy(),
            _lifecycle_configuration(),
            _access_point(),
        ],
        description="Amazon Simple Storage Service: object storage.",
    )
