"""The documentation substrate: catalogs, renderers and the wrangler.

The workflow (Fig. 2) starts from provider documentation.  This package
holds structured catalogs for EC2 (28 resources), Network Firewall (8),
DynamoDB (7), EKS, and an Azure networking service; renderers that turn
them into provider-style *text* pages (AWS PDF layout, Azure web
layout); and the wrangler that parses rendered pages back — the
symbolic preprocessing step of §4.1.
"""

from .catalog_azure import build_azure_catalog
from .catalog_ddb import build_ddb_catalog
from .catalog_ec2 import build_ec2_catalog
from .catalog_eks import build_eks_catalog
from .catalog_gcp import build_gcp_catalog
from .catalog_nfw import build_nfw_catalog
from .catalog_s3 import build_s3_catalog
from .inventory import coverage, inventory, moto_emulated
from .model import (
    ApiDoc,
    ApiParam,
    AttributeDoc,
    DocPage,
    ResourceDoc,
    Rule,
    RULE_KINDS,
    rule,
    ServiceDoc,
    undocumented,
)
from .prose import parse_rule, render_rule, TEMPLATES
from .render_aws import render_aws_docs
from .render_azure import render_azure_docs
from .render_gcp import render_gcp_docs
from .wrangle import (
    AwsDocParser,
    AzureDocParser,
    GcpDocParser,
    wrangle,
    WrangleError,
)

#: Catalog builders by service name.
CATALOGS = {
    "ec2": build_ec2_catalog,
    "network_firewall": build_nfw_catalog,
    "dynamodb": build_ddb_catalog,
    "eks": build_eks_catalog,
    "azure_network": build_azure_catalog,
    "gcp_compute": build_gcp_catalog,
    "s3": build_s3_catalog,
}


def build_catalog(service: str) -> ServiceDoc:
    """Build the documentation catalog for a service by name."""
    return CATALOGS[service]()


def render_docs(service_doc: ServiceDoc) -> list[DocPage]:
    """Render a catalog with the provider-appropriate layout."""
    if service_doc.provider == "azure":
        return render_azure_docs(service_doc)
    if service_doc.provider == "gcp":
        return render_gcp_docs(service_doc)
    return render_aws_docs(service_doc)


__all__ = [
    "ApiDoc",
    "ApiParam",
    "AttributeDoc",
    "AwsDocParser",
    "AzureDocParser",
    "build_azure_catalog",
    "build_catalog",
    "build_ddb_catalog",
    "build_ec2_catalog",
    "build_eks_catalog",
    "build_gcp_catalog",
    "build_nfw_catalog",
    "build_s3_catalog",
    "GcpDocParser",
    "render_gcp_docs",
    "CATALOGS",
    "coverage",
    "DocPage",
    "inventory",
    "moto_emulated",
    "parse_rule",
    "render_aws_docs",
    "render_azure_docs",
    "render_docs",
    "render_rule",
    "ResourceDoc",
    "Rule",
    "rule",
    "RULE_KINDS",
    "ServiceDoc",
    "TEMPLATES",
    "undocumented",
    "wrangle",
    "WrangleError",
]
