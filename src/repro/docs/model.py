"""Documentation model: resources, APIs, attributes and behaviour rules.

Cloud documentation is semi-structured (§4.1): indexed by resource,
with ordered request/response information per API, and behaviour
described in stylized prose ("Fails with DependencyViolation if ...").
We model a corpus as structured catalogs that *render* to provider-
style text pages; the wrangler and the (simulated) LLM then work from
the rendered text, never from the catalog objects — so the parsing
problem is real, not a pass-through.

A :class:`Rule` is one documented behaviour of an API.  Rules marked
``documented=False`` model the documentation-drift problem of §4.3:
the real cloud enforces them but the docs never mention them, so only
the alignment phase can learn them.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

#: The behaviour-rule vocabulary.  Each kind has a prose template in
#: :mod:`repro.docs.prose` (render + parse) and a compilation rule in
#: the synthesizer (rules → SM statements) and in the reference cloud
#: (rules → direct execution).
RULE_KINDS = (
    # effects
    "set_attr_param",      # attr, param
    "set_attr_const",      # attr, value
    "set_attr_fresh",      # attr                  (cloud-assigned identifier)
    "clear_attr",          # attr
    "append_to_attr",      # attr, param
    "remove_from_attr",    # attr, param
    "map_put",             # attr, key_param, value_param
    "map_remove",          # attr, key_param
    "map_read",            # attr, key_param
    "read_attr",           # attr
    "link_ref",            # attr, param           (store reference)
    "call_ref",            # param, transition     (invoke on referenced SM)
    "call_attr",           # attr, transition      (invoke on stored ref)
    "track_in_ref",        # param, list_attr, source  (append to ref's list)
    "untrack_in_attr",     # attr, list_attr, source   (remove from stored ref's list)
    # parameter checks
    "require_param",       # param, code
    "require_one_of",      # param, values, code
    "check_valid_cidr",    # param, code
    "check_prefix_between",  # param, lo, hi, code
    "check_cidr_within",   # param, ref, ref_attr, code
    "check_no_overlap",    # param, ref, list_attr, code
    # state checks
    "check_attr_is",       # attr, value, code
    "check_attr_is_not",   # attr, value, code
    "check_attr_set",      # attr, code
    "check_attr_unset",    # attr, code
    "check_list_empty",    # attr, code
    "check_attr_matches_ref",  # attr, ref, ref_attr, code
    "check_ref_attr_is",   # ref, ref_attr, value, code
    "check_in_list",       # param, attr, code
    "check_not_in_list",   # param, attr, code
    "check_in_map",        # attr, key_param, code
    "check_param_implies_attr",  # param, value, attr, attr_value, code
)


@dataclass(frozen=True)
class Rule:
    """One documented (or undocumented) behaviour of an API."""

    kind: str
    fields: tuple[tuple[str, object], ...]
    documented: bool = True

    def __post_init__(self) -> None:
        if self.kind not in RULE_KINDS:
            raise ValueError(f"unknown rule kind: {self.kind!r}")

    def __getitem__(self, key: str) -> object:
        for name, value in self.fields:
            if name == key:
                return value
        raise KeyError(key)

    def get(self, key: str, default: object = None) -> object:
        for name, value in self.fields:
            if name == key:
                return value
        return default

    def as_dict(self) -> dict:
        return dict(self.fields)

    def with_fields(self, **updates: object) -> "Rule":
        merged = dict(self.fields)
        merged.update(updates)
        return replace(self, fields=tuple(sorted(merged.items())))

    @property
    def is_check(self) -> bool:
        return self.kind.startswith(("check_", "require_"))

    @property
    def error_code(self) -> str:
        return str(self.get("code", "")) if self.is_check else ""


def rule(kind: str, documented: bool = True, **fields: object) -> Rule:
    """Convenience constructor: ``rule("set_attr_param", attr=..., param=...)``."""
    return Rule(kind=kind, fields=tuple(sorted(fields.items())), documented=documented)


def undocumented(kind: str, **fields: object) -> Rule:
    """A behaviour the cloud enforces but the documentation omits (§4.3)."""
    return rule(kind, documented=False, **fields)


#: Documentation parameter types, as providers spell them.
PARAM_TYPES = ("String", "Integer", "Boolean", "List", "Map", "Reference")


@dataclass(frozen=True)
class ApiParam:
    """One request parameter of a documented API."""

    name: str
    type: str = "String"
    required: bool = False
    #: For ``Reference`` params: the resource type the identifier names.
    ref: str = ""

    def __post_init__(self) -> None:
        if self.type not in PARAM_TYPES:
            raise ValueError(f"unknown param type {self.type!r}")


@dataclass(frozen=True)
class AttributeDoc:
    """One resource attribute, as documented."""

    name: str
    type: str = "String"  # String | Integer | Boolean | Enum | List | Map | Reference
    enum_values: tuple[str, ...] = ()
    default: object = None
    ref: str = ""


@dataclass
class ApiDoc:
    """One API of a resource: signature, errors, behaviour."""

    name: str
    category: str  # create | destroy | describe | modify
    params: list[ApiParam] = field(default_factory=list)
    rules: list[Rule] = field(default_factory=list)
    description: str = ""

    def documented_rules(self) -> list[Rule]:
        return [r for r in self.rules if r.documented]

    def error_codes(self) -> list[str]:
        codes: list[str] = []
        for r in self.rules:
            if r.documented and r.is_check and r.error_code not in codes:
                codes.append(r.error_code)
        return codes


@dataclass
class ResourceDoc:
    """One cloud resource type: its attributes, hierarchy and APIs."""

    name: str
    attributes: list[AttributeDoc] = field(default_factory=list)
    apis: list[ApiDoc] = field(default_factory=list)
    parent: str = ""
    description: str = ""
    notfound_code: str = ""

    def api(self, name: str) -> ApiDoc:
        for api in self.apis:
            if api.name == name:
                return api
        raise KeyError(name)

    def api_names(self) -> list[str]:
        return [api.name for api in self.apis]


@dataclass
class ServiceDoc:
    """A service's full documentation catalog."""

    name: str
    provider: str = "aws"
    resources: list[ResourceDoc] = field(default_factory=list)
    description: str = ""

    def resource(self, name: str) -> ResourceDoc:
        for res in self.resources:
            if res.name == name:
                return res
        raise KeyError(name)

    def resource_names(self) -> list[str]:
        return [res.name for res in self.resources]

    def api_names(self) -> list[str]:
        names: list[str] = []
        for res in self.resources:
            names.extend(res.api_names())
        return names

    def find_api(self, api_name: str) -> tuple[ResourceDoc, ApiDoc] | None:
        for res in self.resources:
            for api in res.apis:
                if api.name == api_name:
                    return res, api
        return None


@dataclass(frozen=True)
class DocPage:
    """One rendered page of provider documentation."""

    number: int
    title: str
    text: str
