"""Render a service catalog as GCP-style REST discovery pages.

GCP documents Compute Engine as per-resource REST reference pages:
each resource page lists its representation (fields + types) and its
methods with dotted identifiers (``compute.networks.insert``).  The
layout differs from both AWS's PDF and Azure's markdown pages, giving
the wrangler its third provider-specific format (§4.1).
"""

from __future__ import annotations

from .model import DocPage, ResourceDoc, ServiceDoc
from .prose import render_rule


def _field_type(attribute) -> str:
    if attribute.type == "Enum" and attribute.enum_values:
        return "enum[" + ", ".join(attribute.enum_values) + "]"
    if attribute.type == "Reference" and attribute.ref:
        return f"resourceLink({attribute.ref})"
    return attribute.type.lower()


def _default_text(value: object) -> str:
    if value is None:
        return ""
    if isinstance(value, bool):
        return "true" if value else "false"
    return str(value)


def _dotted_method(service: ServiceDoc, api_name: str) -> str:
    """The dotted method id GCP docs display for an internal name:
    ``networks_insert`` renders as ``compute.networks.insert``."""
    collection, __, verb = api_name.partition("_")
    return f"compute.{collection}.{verb}"


def _render_resource(service: ServiceDoc, res: ResourceDoc,
                     number: int) -> DocPage:
    lines = [
        f"REST Resource: {res.name}",
        f"Service: {service.description or service.name}",
        "",
    ]
    if res.description:
        lines.append(res.description)
        lines.append("")
    lines.append(f"parentResource: {res.parent or '(none)'}")
    if res.notfound_code:
        lines.append(f"missingResourceReason: {res.notfound_code}")
    lines.append("")
    lines.append("Resource representation:")
    lines.append("{")
    for attribute in res.attributes:
        default = _default_text(attribute.default)
        suffix = f"  // default: {default}" if default else ""
        lines.append(
            f'  "{attribute.name}": {_field_type(attribute)},{suffix}'
        )
    lines.append("}")
    lines.append("")
    lines.append("Methods:")
    for api in res.apis:
        lines.append(f"- {_dotted_method(service, api.name)}")
    lines.append("")
    for api in res.apis:
        lines.append(f"Method: {_dotted_method(service, api.name)}")
        lines.append(f"kind: {api.category}")
        if api.description:
            lines.append(api.description)
        lines.append("Request fields:")
        for p in api.params:
            requiredness = "required" if p.required else "optional"
            type_text = p.type.lower()
            if p.type == "Reference" and p.ref:
                type_text = f"resourceLink({p.ref})"
            lines.append(f"  {p.name}: {type_text} [{requiredness}]")
        if not api.params:
            lines.append("  (none)")
        lines.append("Semantics:")
        for behaviour in api.documented_rules():
            lines.append(f"  > {render_rule(behaviour)}")
        if not api.documented_rules():
            lines.append("  > This method has no documented side effects.")
        lines.append("")
    return DocPage(number=number, title=res.name, text="\n".join(lines))


def render_gcp_docs(service: ServiceDoc) -> list[DocPage]:
    """Render the catalog into per-resource discovery pages."""
    return [
        _render_resource(service, res, index + 1)
        for index, res in enumerate(service.resources)
    ]
