"""The EKS documentation catalog: 58 APIs (Table 1).

EKS appears in the paper's Table 1 as an example of incomplete manual
coverage (Moto emulates 15 of 58 APIs).  The catalog documents all 58
so the learned pipeline can be compared against the handcrafted
baseline on the same inventory.
"""

from __future__ import annotations

from .build import (
    api,
    attr,
    make_create,
    make_delete,
    make_describe,
    make_list,
    make_modify,
    param,
    resource,
)
from .model import rule, ServiceDoc

NOTFOUND = "ResourceNotFoundException"

KUBERNETES_VERSIONS = ("1.27", "1.28", "1.29", "1.30")


def _cluster() -> "resource":
    attrs = [
        attr("cluster_name"),
        attr("version", "Enum", enum=KUBERNETES_VERSIONS, default="1.29"),
        attr("status", "Enum", enum=("CREATING", "ACTIVE", "DELETING"),
             default="CREATING"),
        attr("endpoint_public_access", "Boolean", default=True),
        attr("tags", "Map"),
        attr("node_groups", "List"),
        attr("registered", "Boolean", default=False),
    ]
    create = make_create(
        "cluster",
        "CreateCluster",
        [param("cluster_name", required=True), param("version")],
        attrs,
        extra_rules=[
            rule("require_one_of", param="version",
                 values=KUBERNETES_VERSIONS, code="InvalidParameterException"),
            rule("set_attr_const", attr="status", value="ACTIVE"),
        ],
        desc="Creates an EKS control plane.",
    )
    delete = make_delete(
        "cluster",
        "DeleteCluster",
        guard_rules=[
            rule("check_list_empty", attr="node_groups",
                 code="ResourceInUseException"),
        ],
        desc="Deletes the specified cluster. All node groups must be "
             "deleted first.",
    )
    describe = make_describe("cluster", "DescribeCluster", attrs)
    listing = make_list("cluster", "ListClusters")
    update_config = make_modify(
        "cluster", "UpdateClusterConfig", "endpoint_public_access",
        param_type="Boolean",
        desc="Updates the endpoint access configuration of the cluster.",
    )
    update_version = api(
        "UpdateClusterVersion", "modify",
        [param("cluster_id", required=True), param("version", required=True)],
        [
            rule("require_param", param="cluster_id", code="MissingParameter"),
            rule("require_param", param="version", code="MissingParameter"),
            rule("require_one_of", param="version",
                 values=KUBERNETES_VERSIONS, code="InvalidParameterException"),
            rule("check_attr_is", attr="status", value="ACTIVE",
                 code="ResourceInUseException"),
            rule("set_attr_param", attr="version", param="version"),
        ],
        desc="Updates the Kubernetes version of the cluster.",
    )
    describe_versions = make_list("cluster", "DescribeClusterVersions")
    register = api(
        "RegisterCluster", "modify",
        [param("cluster_id", required=True)],
        [
            rule("require_param", param="cluster_id", code="MissingParameter"),
            rule("check_attr_is", attr="registered", value=False,
                 code="ResourceInUseException"),
            rule("set_attr_const", attr="registered", value=True),
        ],
        desc="Connects an external Kubernetes cluster to EKS.",
    )
    deregister = api(
        "DeregisterCluster", "modify",
        [param("cluster_id", required=True)],
        [
            rule("require_param", param="cluster_id", code="MissingParameter"),
            rule("check_attr_is", attr="registered", value=True,
                 code="ResourceNotFoundException"),
            rule("set_attr_const", attr="registered", value=False),
        ],
        desc="Disconnects a registered external cluster from EKS.",
    )
    tag = api(
        "TagResource", "modify",
        [param("cluster_id", required=True), param("tag_key", required=True),
         param("tag_value")],
        [
            rule("require_param", param="cluster_id", code="MissingParameter"),
            rule("require_param", param="tag_key", code="MissingParameter"),
            rule("map_put", attr="tags", key_param="tag_key",
                 value_param="tag_value"),
        ],
        desc="Adds a tag to the cluster.",
    )
    untag = api(
        "UntagResource", "modify",
        [param("cluster_id", required=True), param("tag_key", required=True)],
        [
            rule("require_param", param="cluster_id", code="MissingParameter"),
            rule("require_param", param="tag_key", code="MissingParameter"),
            rule("check_in_map", attr="tags", key_param="tag_key",
                 code="NotFoundException"),
            rule("map_remove", attr="tags", key_param="tag_key"),
        ],
        desc="Removes a tag from the cluster.",
    )
    list_tags = api(
        "ListTagsForResource", "describe",
        [param("cluster_id", required=True)],
        [rule("read_attr", attr="tags")],
        desc="Lists the tags on the cluster.",
    )
    update_access = make_modify(
        "cluster", "UpdateAccessConfig", "endpoint_public_access",
        param_type="Boolean",
        desc="Updates the access configuration of the cluster endpoint.",
    )
    describe_update = api(
        "DescribeUpdate", "describe",
        [param("cluster_id", required=True)],
        [rule("read_attr", attr="version"), rule("read_attr", attr="status")],
        desc="Describes an in-flight update to the cluster.",
    )
    list_updates = make_list("cluster", "ListUpdates")
    return resource(
        "cluster",
        attrs,
        [create, delete, describe, listing, update_config, update_version,
         describe_versions, register, deregister, tag, untag, list_tags,
         update_access, describe_update, list_updates],
        desc="A managed Kubernetes control plane.",
        notfound=NOTFOUND,
    )


def _node_group() -> "resource":
    attrs = [
        attr("node_group_name"),
        attr("cluster", "Reference", ref="cluster"),
        attr("instance_type"),
        attr("desired_size", "Integer", default=2),
        attr("status", "Enum", enum=("CREATING", "ACTIVE", "DELETING"),
             default="CREATING"),
        attr("version", "Enum", enum=KUBERNETES_VERSIONS, default="1.29"),
    ]
    create = make_create(
        "node_group",
        "CreateNodegroup",
        [
            param("cluster_id", "Reference", required=True, ref="cluster"),
            param("node_group_name", required=True),
            param("instance_type"),
            param("desired_size", "Integer"),
        ],
        attrs,
        extra_rules=[
            rule("check_ref_attr_is", ref="cluster_id", ref_attr="status",
                 value="ACTIVE", code="ResourceInUseException"),
            rule("link_ref", attr="cluster", param="cluster_id"),
            rule("track_in_ref", param="cluster_id", list_attr="node_groups",
                 source="id"),
            rule("set_attr_const", attr="status", value="ACTIVE"),
        ],
        desc="Creates a managed node group for the specified cluster.",
    )
    delete = make_delete(
        "node_group",
        "DeleteNodegroup",
        guard_rules=[
            rule("untrack_in_attr", attr="cluster", list_attr="node_groups",
                 source="id"),
        ],
        desc="Deletes the specified node group.",
    )
    describe = make_describe("node_group", "DescribeNodegroup", attrs)
    listing = make_list("node_group", "ListNodegroups")
    update_config = make_modify(
        "node_group", "UpdateNodegroupConfig", "desired_size",
        param_type="Integer",
        desc="Updates the scaling configuration of the node group.",
    )
    update_version = api(
        "UpdateNodegroupVersion", "modify",
        [param("node_group_id", required=True), param("version")],
        [
            rule("require_param", param="node_group_id",
                 code="MissingParameter"),
            rule("require_one_of", param="version",
                 values=KUBERNETES_VERSIONS, code="InvalidParameterException"),
            rule("set_attr_param", attr="version", param="version"),
        ],
        desc="Updates the Kubernetes version of the node group.",
    )
    return resource(
        "node_group",
        attrs,
        [create, delete, describe, listing, update_config, update_version],
        parent="cluster",
        desc="A group of managed worker nodes in a cluster.",
        notfound=NOTFOUND,
    )


def _simple_eks(
    name: str,
    stem: str,
    extra_attrs: list,
    verbs: tuple[str, ...],
    parent: str = "cluster",
    plural: str = "",
) -> "resource":
    """An EKS sub-resource following the standard verb pattern."""
    attrs = [
        attr("cluster", "Reference", ref="cluster"),
        attr("status", "Enum", enum=("CREATING", "ACTIVE"),
             default="CREATING"),
    ] + list(extra_attrs)
    apis = []
    if "create" in verbs:
        apis.append(make_create(
            name, f"Create{stem}",
            [param("cluster_id", "Reference", required=True, ref="cluster"),
             param("name", required=True)],
            attrs,
            extra_rules=[
                rule("link_ref", attr="cluster", param="cluster_id"),
                rule("set_attr_const", attr="status", value="ACTIVE"),
            ],
        ))
    if "associate" in verbs:
        apis.append(make_create(
            name, f"Associate{stem}",
            [param("cluster_id", "Reference", required=True, ref="cluster"),
             param("name", required=True)],
            attrs,
            extra_rules=[
                rule("link_ref", attr="cluster", param="cluster_id"),
                rule("set_attr_const", attr="status", value="ACTIVE"),
            ],
        ))
    if "delete" in verbs:
        apis.append(make_delete(name, f"Delete{stem}"))
    if "disassociate" in verbs:
        apis.append(make_delete(name, f"Disassociate{stem}"))
    if "describe" in verbs:
        apis.append(make_describe(name, f"Describe{stem}", attrs))
    if "update" in verbs:
        apis.append(make_modify(name, f"Update{stem}", "status"))
    if "list" in verbs:
        apis.append(make_list(name, f"List{plural or stem + 's'}"))
    return resource(name, attrs, apis, parent=parent,
                    notfound=NOTFOUND)


def build_eks_catalog() -> ServiceDoc:
    """The full EKS catalog: 58 APIs."""
    fargate = _simple_eks(
        "fargate_profile", "FargateProfile",
        [attr("pod_execution_role")],
        ("create", "delete", "describe", "list"),
    )
    addon = _simple_eks(
        "addon", "Addon",
        [attr("addon_version")],
        ("create", "delete", "describe", "update", "list"),
    )
    addon.apis.append(make_list("addon", "DescribeAddonVersions"))
    addon.apis.append(api(
        "DescribeAddonConfiguration", "describe",
        [param("addon_id", required=True)],
        [rule("read_attr", attr="addon_version")],
        desc="Returns the configuration options of an addon version.",
    ))
    idp = _simple_eks(
        "identity_provider_config", "IdentityProviderConfig",
        [attr("issuer_url")],
        ("associate", "disassociate", "describe", "list"),
    )
    access_entry = _simple_eks(
        "access_entry", "AccessEntry",
        [attr("principal_arn"), attr("policies", "List")],
        ("create", "delete", "describe", "update", "list",),
        plural="AccessEntries",
    )
    access_entry.apis.extend([
        api(
            "AssociateAccessPolicy", "modify",
            [param("access_entry_id", required=True),
             param("policy_arn", required=True)],
            [
                rule("require_param", param="access_entry_id",
                     code="MissingParameter"),
                rule("require_param", param="policy_arn",
                     code="MissingParameter"),
                rule("check_not_in_list", param="policy_arn", attr="policies",
                     code="ResourceInUseException"),
                rule("append_to_attr", attr="policies", param="policy_arn"),
            ],
            desc="Associates an access policy with an access entry.",
        ),
        api(
            "DisassociateAccessPolicy", "modify",
            [param("access_entry_id", required=True),
             param("policy_arn", required=True)],
            [
                rule("require_param", param="access_entry_id",
                     code="MissingParameter"),
                rule("require_param", param="policy_arn",
                     code="MissingParameter"),
                rule("check_in_list", param="policy_arn", attr="policies",
                     code="ResourceNotFoundException"),
                rule("remove_from_attr", attr="policies", param="policy_arn"),
            ],
            desc="Removes an access policy from an access entry.",
        ),
        api(
            "ListAssociatedAccessPolicies", "describe",
            [param("access_entry_id", required=True)],
            [rule("read_attr", attr="policies")],
            desc="Lists the policies associated with an access entry.",
        ),
        make_list("access_entry", "ListAccessPolicies"),
    ])
    pod_identity = _simple_eks(
        "pod_identity_association", "PodIdentityAssociation",
        [attr("service_account")],
        ("create", "delete", "describe", "update", "list"),
    )
    subscription = _simple_eks(
        "eks_anywhere_subscription", "EksAnywhereSubscription",
        [attr("term", "Integer", default=12)],
        ("create", "delete", "describe", "update", "list"),
        parent="",
    )
    insight = _simple_eks(
        "insight", "Insight",
        [attr("category")],
        ("describe", "list"),
    )
    insight.apis.append(make_modify("insight", "UpdateInsightStatus",
                                    "status"))
    return ServiceDoc(
        name="eks",
        provider="aws",
        resources=[
            _cluster(),
            _node_group(),
            fargate,
            addon,
            idp,
            access_entry,
            pod_identity,
            subscription,
            insight,
        ],
        description="Amazon Elastic Kubernetes Service.",
    )
