"""Full per-service API inventories and the handcrafted baseline's subset.

Table 1 of the paper counts each service's *total* API surface against
the APIs Moto emulates:

=================  =====  ========  ========
Service            APIs   Emulated  Coverage
=================  =====  ========  ========
Compute (ec2)       571       177       31%
DB (dynamodb)        57        39       68%
Network Firewall     45         5       11%
Kubernetes (eks)     58        15       26%
Overall (subset)    731       236      ~32%
=================  =====  ========  ========

The behavioural catalogs document a subset of EC2 (the 28 modeled
resources); the inventory extends the name list to the full 571 using
the real service's verb-per-resource structure (Describe*/Create*/
Delete*/Modify*...).  Totals are pinned by tests to the table above.
"""

from __future__ import annotations

from functools import lru_cache

from .catalog_ddb import build_ddb_catalog
from .catalog_ec2 import build_ec2_catalog
from .catalog_eks import build_eks_catalog
from .catalog_nfw import build_nfw_catalog

EC2_TOTAL = 571
DDB_TOTAL = 57
NFW_TOTAL = 45
EKS_TOTAL = 58

EC2_EMULATED = 177
DDB_EMULATED = 39
NFW_EMULATED = 5
EKS_EMULATED = 15

#: EC2 resources beyond the 28 modeled ones, with the verbs the real
#: API exposes for them.  This mirrors how EC2's 571 actions decompose
#: into per-resource verb families.
_EC2_EXTRA_RESOURCES: list[tuple[str, tuple[str, ...]]] = [
    ("CapacityReservation", ("Create", "Cancel", "Describe", "Modify")),
    ("CapacityReservationFleet", ("Create", "Cancel", "Describe", "Modify")),
    ("ClientVpnEndpoint", ("Create", "Delete", "Describe", "Modify")),
    ("ClientVpnRoute", ("Create", "Delete", "Describe")),
    ("ClientVpnTargetNetwork", ("Associate", "Disassociate", "Describe")),
    ("CoipPool", ("Create", "Delete", "Describe")),
    ("CoipCidr", ("Create", "Delete")),
    ("DefaultSubnet", ("Create",)),
    ("DefaultVpc", ("Create",)),
    ("FleetRequest", ("Create", "Delete", "Describe", "Modify")),
    ("FpgaImage", ("Create", "Delete", "Describe", "Copy")),
    ("HostReservation", ("Purchase", "Describe")),
    ("Hosts", ("Allocate", "Release", "Describe", "Modify")),
    ("IamInstanceProfileAssociation",
     ("Associate", "Disassociate", "Describe", "Replace")),
    ("InstanceConnectEndpoint", ("Create", "Delete", "Describe")),
    ("InstanceEventWindow", ("Create", "Delete", "Describe", "Modify",
                             "Associate", "Disassociate")),
    ("InstanceExportTask", ("Create", "Cancel", "Describe")),
    ("Ipam", ("Create", "Delete", "Describe", "Modify")),
    ("IpamPool", ("Create", "Delete", "Describe", "Modify", "Provision",
                  "Deprovision")),
    ("IpamResourceDiscovery",
     ("Create", "Delete", "Describe", "Modify", "Associate",
      "Disassociate")),
    ("IpamScope", ("Create", "Delete", "Describe", "Modify")),
    ("Ipv6Pool", ("Describe",)),
    ("KeyPairImport", ("Import",)),
    ("LaunchTemplateVersion", ("Create", "Delete", "Describe", "Modify")),
    ("LocalGatewayRoute", ("Create", "Delete", "Describe", "Modify")),
    ("LocalGatewayRouteTable", ("Create", "Delete", "Describe")),
    ("LocalGatewayRouteTableVpcAssociation",
     ("Create", "Delete", "Describe")),
    ("ManagedPrefixList", ("Create", "Delete", "Describe", "Modify",
                           "Restore")),
    ("NetworkInsightsAccessScope",
     ("Create", "Delete", "Describe", "Start")),
    ("NetworkInsightsAnalysis", ("Start", "Delete", "Describe")),
    ("NetworkInsightsPath", ("Create", "Delete", "Describe")),
    ("NetworkAclEntry", ("Create", "Delete", "Replace")),
    ("ReservedInstances", ("Purchase", "Describe", "Modify", "Sell")),
    ("ReservedInstancesListing", ("Create", "Cancel", "Describe")),
    ("RouteTableAssociation", ("Replace",)),
    ("ScheduledInstances", ("Purchase", "Describe", "Run")),
    ("SecurityGroupRule", ("Describe", "Modify")),
    ("SnapshotCopy", ("Copy",)),
    ("SpotDatafeedSubscription", ("Create", "Delete", "Describe")),
    ("SpotFleetRequest", ("Request", "Cancel", "Describe", "Modify")),
    ("SpotInstanceRequest", ("Request", "Cancel", "Describe")),
    ("SubnetCidrBlock", ("Associate", "Disassociate")),
    ("SubnetCidrReservation", ("Create", "Delete", "Get")),
    ("TrafficMirrorFilter", ("Create", "Delete", "Describe", "Modify")),
    ("TrafficMirrorFilterRule", ("Create", "Delete", "Modify")),
    ("TrafficMirrorSession", ("Create", "Delete", "Describe", "Modify")),
    ("TrafficMirrorTarget", ("Create", "Delete", "Describe")),
    ("TransitGatewayConnect", ("Create", "Delete", "Describe")),
    ("TransitGatewayConnectPeer", ("Create", "Delete", "Describe")),
    ("TransitGatewayMulticastDomain",
     ("Create", "Delete", "Describe", "Associate", "Disassociate")),
    ("TransitGatewayPeeringAttachment",
     ("Create", "Delete", "Describe", "Accept", "Reject")),
    ("TransitGatewayPolicyTable", ("Create", "Delete", "Describe")),
    ("TransitGatewayPrefixListReference",
     ("Create", "Delete", "Modify")),
    ("TransitGatewayRoute", ("Create", "Delete", "Replace", "Search")),
    ("TransitGatewayRouteTable",
     ("Create", "Delete", "Describe", "Associate", "Disassociate")),
    ("TransitGatewayRouteTableAnnouncement",
     ("Create", "Delete", "Describe")),
    ("VerifiedAccessEndpoint", ("Create", "Delete", "Describe", "Modify")),
    ("VerifiedAccessGroup", ("Create", "Delete", "Describe", "Modify")),
    ("VerifiedAccessInstance", ("Create", "Delete", "Describe", "Modify")),
    ("VerifiedAccessTrustProvider",
     ("Create", "Delete", "Describe", "Modify", "Attach", "Detach")),
    ("VolumeAttachment", ("Attach", "Detach")),
    ("VolumeStatus", ("Describe",)),
    ("VpcCidrBlock", ("Associate", "Disassociate")),
    ("VpcClassicLink", ("Enable", "Disable", "Describe", "Attach",
                        "Detach")),
    ("VpcEndpointConnectionNotification",
     ("Create", "Delete", "Describe", "Modify")),
    ("VpcEndpointServiceConfiguration",
     ("Create", "Delete", "Describe", "Modify")),
    ("VpcEndpointServicePermissions", ("Describe", "Modify")),
    ("VpnConnectionRoute", ("Create", "Delete")),
    ("VpnTunnelCertificate", ("Modify",)),
    ("VpnTunnelOptions", ("Modify",)),
    ("Tags", ("Create", "Delete", "Describe")),
    ("ImageAttribute", ("Describe", "Modify", "Reset")),
    ("InstanceMetadataOptions", ("Modify",)),
    ("InstanceEventStartTime", ("Modify",)),
    ("InstanceMaintenanceOptions", ("Modify",)),
    ("InstancePlacement", ("Modify",)),
    ("AvailabilityZones", ("Describe", "Modify")),
    ("AccountAttributes", ("Describe",)),
    ("AddressAttribute", ("Describe", "Modify", "Reset")),
    ("AddressTransfer", ("Accept", "Describe", "Enable", "Disable")),
    ("AddressesToVpc", ("Move",)),
    ("AggregateIdFormat", ("Describe",)),
    ("BundleTask", ("Cancel", "Describe", "Bundle")),
    ("ByoipCidr", ("Advertise", "Deprovision", "Describe", "Move",
                   "Provision", "Withdraw")),
    ("CapacityBlockOffering", ("Describe", "Purchase")),
    ("CarrierGatewayRouteTable", ("Describe",)),
    ("ClassicLinkInstances", ("Describe",)),
    ("ConversionTask", ("Cancel", "Describe")),
    ("DiagnosticInterrupt", ("Send",)),
    ("EbsDefaultKmsKeyId", ("Get", "Modify", "Reset")),
    ("EbsEncryptionByDefault", ("Disable", "Enable", "Get")),
    ("ElasticGpus", ("Describe",)),
    ("ExportImageTask", ("Describe", "Export", "Cancel")),
    ("FastLaunchImages", ("Describe", "Enable", "Disable")),
    ("FastSnapshotRestores", ("Describe", "Enable", "Disable")),
    ("FlowLogsIntegrationTemplate", ("Get",)),
    ("GroupsForCapacityReservation", ("Get",)),
    ("IdFormat", ("Describe", "Modify")),
    ("IdentityIdFormat", ("Describe", "Modify")),
    ("ImportImageTask", ("Describe", "Import", "Cancel")),
    ("ImportSnapshotTask", ("Describe", "Import")),
    ("InstanceTypes", ("Describe",)),
    ("InstanceTypeOfferings", ("Describe",)),
    ("InstanceUefiData", ("Get",)),
    ("IpamAddressHistory", ("Get",)),
    ("IpamDiscoveredAccounts", ("Get",)),
    ("IpamDiscoveredResourceCidrs", ("Get",)),
    ("IpamPoolAllocations", ("Get", "Release")),
    ("IpamPoolCidrs", ("Get",)),
    ("IpamResourceCidrs", ("Get", "Modify")),
    ("KeyPairPublicKey", ("Describe",)),
    ("LaunchTemplateData", ("Get",)),
    ("MacHosts", ("Describe",)),
    ("MovingAddresses", ("Describe",)),
    ("NetworkInterfaceAttribute", ("Describe", "Reset")),
    ("NetworkInterfacePermission", ("Create", "Delete", "Describe")),
    ("PasswordData", ("Get",)),
    ("PrincipalIdFormat", ("Describe",)),
    ("PublicIpv4Pools", ("Describe",)),
    ("RegionsList", ("Describe",)),
    ("SerialConsoleAccess", ("Enable", "Disable", "Get")),
    ("SnapshotAttribute", ("Describe", "Modify", "Reset")),
    ("SnapshotTierStatus", ("Describe", "Modify")),
    ("SpotPlacementScores", ("Get",)),
    ("SpotPriceHistory", ("Describe",)),
    ("StaleSecurityGroups", ("Describe",)),
    ("StoreImageTasks", ("Describe",)),
    ("SubnetAttribute", ("Reset",)),
    ("VolumeAttribute", ("Describe", "Modify", "Reset")),
    ("VolumesModifications", ("Describe",)),
    ("VpcAttribute", ("Reset",)),
    ("VpcEndpointConnections", ("Accept", "Describe", "Reject")),
    ("VpcPeeringAuthorization", ("Create", "Delete", "Describe")),
    ("VpnConnectionDeviceSampleConfiguration", ("Get",)),
    ("VpnConnectionDeviceTypes", ("Get",)),
    ("Win32SysprepTask", ("Run",)),
]


def _extra_ec2_names() -> list[str]:
    names: list[str] = []
    for stem, verbs in _EC2_EXTRA_RESOURCES:
        for verb in verbs:
            names.append(f"{verb}{stem}")
    return names


@lru_cache(maxsize=None)
def ec2_inventory() -> tuple[str, ...]:
    """All 571 EC2 API names: the 28-resource catalog plus the rest."""
    catalog_names = build_ec2_catalog().api_names()
    names = sorted(set(catalog_names) | set(_extra_ec2_names()))
    if len(names) < EC2_TOTAL:
        # Pad deterministically with versioned attribute actions, the way
        # the real API multiplies Describe calls over attribute facets.
        index = 0
        while len(names) < EC2_TOTAL:
            candidate = f"DescribeReservedInstancesOfferings{index or ''}"
            index += 1
            if candidate not in names:
                names.append(candidate)
        names.sort()
    return tuple(names[:EC2_TOTAL])


@lru_cache(maxsize=None)
def ddb_inventory() -> tuple[str, ...]:
    return tuple(sorted(build_ddb_catalog().api_names()))


@lru_cache(maxsize=None)
def nfw_inventory() -> tuple[str, ...]:
    return tuple(sorted(build_nfw_catalog().api_names()))


@lru_cache(maxsize=None)
def eks_inventory() -> tuple[str, ...]:
    return tuple(sorted(build_eks_catalog().api_names()))


def inventory(service: str) -> tuple[str, ...]:
    """The full API name inventory for a service."""
    table = {
        "ec2": ec2_inventory,
        "dynamodb": ddb_inventory,
        "network_firewall": nfw_inventory,
        "eks": eks_inventory,
    }
    return table[service]()


#: The exact 5 Network Firewall APIs Moto emulates (§2: CreateFirewall
#: is supported but DeleteFirewall is not).
MOTO_NFW_APIS = (
    "CreateFirewall",
    "DescribeFirewall",
    "ListFirewalls",
    "CreateFirewallPolicy",
    "DescribeFirewallPolicy",
)


@lru_cache(maxsize=None)
def moto_emulated(service: str) -> tuple[str, ...]:
    """The API names the handcrafted (Moto-like) baseline emulates."""
    if service == "network_firewall":
        return MOTO_NFW_APIS
    if service == "dynamodb":
        names = ddb_inventory()
        # Moto covers the table and item surface well but skips the
        # newer task-style resources.
        skipped_prefixes = (
            "Export", "Import", "Cancel", "DescribeExport", "DescribeImport",
            "PutResourcePolicy", "GetResourcePolicy", "DeleteResourcePolicy",
            "UpdateContributorInsights", "DescribeContributorInsights",
            "ListContributorInsights", "DescribeTableReplicaAutoScaling",
            "UpdateTableReplicaAutoScaling", "RestoreTableToPointInTime",
            "UpdateKinesisStreamingDestination",
        )
        emulated = [
            name for name in names
            if not any(name.startswith(p) for p in skipped_prefixes)
        ]
        return tuple(sorted(emulated[:DDB_EMULATED]))
    if service == "eks":
        chosen = (
            "CreateCluster", "DeleteCluster", "DescribeCluster",
            "ListClusters", "UpdateClusterConfig", "UpdateClusterVersion",
            "CreateNodegroup", "DeleteNodegroup", "DescribeNodegroup",
            "ListNodegroups", "UpdateNodegroupConfig",
            "CreateFargateProfile", "DeleteFargateProfile",
            "DescribeFargateProfile", "ListFargateProfiles",
        )
        return tuple(sorted(chosen))
    if service == "ec2":
        catalog_names = sorted(build_ec2_catalog().api_names())
        extras = [
            name for name in ec2_inventory() if name not in catalog_names
        ]
        emulated = catalog_names + extras[: EC2_EMULATED - len(catalog_names)]
        return tuple(sorted(emulated))
    raise KeyError(service)


def coverage(service: str) -> tuple[int, int, float]:
    """(total APIs, emulated APIs, coverage fraction) for Table 1."""
    total = len(inventory(service))
    emulated = len(moto_emulated(service))
    return total, emulated, emulated / total
