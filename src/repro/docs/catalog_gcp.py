"""A GCP-flavoured documentation catalog: the third provider.

The paper argues the approach is provider-agnostic ("a universal
emulator", §4.4) and that the provider-specific effort concentrates in
documentation wrangling (§5).  GCP exercises that: its reference
material is organised as REST *discovery* pages (one per resource,
methods listed as ``compute.networks.insert``), with its own error
vocabulary (camelCase reasons like ``resourceInUseByAnotherResource``)
and its own lifecycle verbs (insert/delete/get, stop = TERMINATED).

Method identifiers are dotted in GCP's documentation; the wrangler
normalizes ``compute.networks.insert`` to the identifier
``networks_insert`` (see :class:`repro.docs.wrangle.GcpDocParser`).
"""

from __future__ import annotations

from .build import api, attr, param, resource
from .model import rule, ServiceDoc

NOTFOUND = "notFound"

MACHINE_TYPES = ("e2-micro", "e2-small", "n2-standard-2")


def _network() -> "resource":
    attrs = [
        attr("ipv4_range"),
        attr("auto_create_subnetworks", "Boolean", default=False),
        attr("subnetwork_ranges", "List"),
        attr("firewall_rules", "List"),
        attr("routing_mode", "Enum", enum=("REGIONAL", "GLOBAL"),
             default="REGIONAL"),
    ]
    insert = api(
        "networks_insert",
        "create",
        [param("ipv4_range", required=True), param("routing_mode")],
        [
            rule("require_param", param="ipv4_range", code="required"),
            rule("check_valid_cidr", param="ipv4_range", code="invalid"),
            rule("require_one_of", param="routing_mode",
                 values=("REGIONAL", "GLOBAL"), code="invalid"),
            rule("set_attr_param", attr="ipv4_range", param="ipv4_range"),
            rule("set_attr_param", attr="routing_mode",
                 param="routing_mode"),
        ],
        desc="Creates a VPC network in the specified project.",
    )
    delete = api(
        "networks_delete",
        "destroy",
        [param("network_id", required=True)],
        [
            rule("require_param", param="network_id", code="required"),
            rule("check_list_empty", attr="subnetwork_ranges",
                 code="resourceInUseByAnotherResource"),
            rule("check_list_empty", attr="firewall_rules",
                 code="resourceInUseByAnotherResource"),
        ],
        desc="Deletes the specified network. All subnetworks and firewall "
             "rules must be deleted first.",
    )
    get = api(
        "networks_get",
        "describe",
        [param("network_id", required=True)],
        [rule("read_attr", attr="ipv4_range"),
         rule("read_attr", attr="routing_mode"),
         rule("read_attr", attr="auto_create_subnetworks")],
        desc="Returns the specified network.",
    )
    patch = api(
        "networks_patch",
        "modify",
        [param("network_id", required=True), param("routing_mode")],
        [
            rule("require_param", param="network_id", code="required"),
            rule("require_one_of", param="routing_mode",
                 values=("REGIONAL", "GLOBAL"), code="invalid"),
            rule("set_attr_param", attr="routing_mode",
                 param="routing_mode"),
        ],
        desc="Patches the specified network.",
    )
    listing = api("networks_list", "describe", [], [],
                  "Retrieves the list of networks in the project.")
    return resource(
        "network",
        attrs,
        [insert, delete, get, patch, listing],
        desc="A VPC network: the GCP analogue of an AWS VPC.",
        notfound=NOTFOUND,
    )


def _subnetwork() -> "resource":
    attrs = [
        attr("ip_cidr_range"),
        attr("network", "Reference", ref="network"),
        attr("region"),
        attr("private_ip_google_access", "Boolean", default=False),
        attr("instances", "List"),
    ]
    insert = api(
        "subnetworks_insert",
        "create",
        [
            param("network_id", "Reference", required=True, ref="network"),
            param("ip_cidr_range", required=True),
            param("region", required=True),
        ],
        [
            rule("require_param", param="network_id", code="required"),
            rule("require_param", param="ip_cidr_range", code="required"),
            rule("require_param", param="region", code="required"),
            rule("check_valid_cidr", param="ip_cidr_range", code="invalid"),
            rule("check_prefix_between", param="ip_cidr_range", lo=8, hi=29,
                 code="invalid"),
            rule("check_cidr_within", param="ip_cidr_range",
                 ref="network_id", ref_attr="ipv4_range",
                 code="invalid"),
            rule("check_no_overlap", param="ip_cidr_range",
                 ref="network_id", list_attr="subnetwork_ranges",
                 code="invalidIPCidrRange"),
            rule("link_ref", attr="network", param="network_id"),
            rule("set_attr_param", attr="ip_cidr_range",
                 param="ip_cidr_range"),
            rule("set_attr_param", attr="region", param="region"),
            rule("track_in_ref", param="network_id",
                 list_attr="subnetwork_ranges", source="ip_cidr_range"),
        ],
        desc="Creates a subnetwork in the specified network and region.",
    )
    delete = api(
        "subnetworks_delete",
        "destroy",
        [param("subnetwork_id", required=True)],
        [
            rule("require_param", param="subnetwork_id", code="required"),
            rule("check_list_empty", attr="instances",
                 code="resourceInUseByAnotherResource"),
            rule("untrack_in_attr", attr="network",
                 list_attr="subnetwork_ranges", source="ip_cidr_range"),
        ],
        desc="Deletes the specified subnetwork. All instances must be "
             "deleted first.",
    )
    get = api(
        "subnetworks_get",
        "describe",
        [param("subnetwork_id", required=True)],
        [rule("read_attr", attr="ip_cidr_range"),
         rule("read_attr", attr="region"),
         rule("read_attr", attr="private_ip_google_access")],
        desc="Returns the specified subnetwork.",
    )
    patch = api(
        "subnetworks_patch",
        "modify",
        [param("subnetwork_id", required=True),
         param("private_ip_google_access", "Boolean")],
        [
            rule("require_param", param="subnetwork_id", code="required"),
            rule("set_attr_param", attr="private_ip_google_access",
                 param="private_ip_google_access"),
        ],
        desc="Patches the specified subnetwork, e.g. toggling private "
             "Google access.",
    )
    return resource(
        "subnetwork",
        attrs,
        [insert, delete, get, patch],
        parent="network",
        desc="A regional IP range within a VPC network.",
        notfound=NOTFOUND,
    )


def _address() -> "resource":
    attrs = [
        attr("address"),
        attr("region"),
        attr("status", "Enum", enum=("RESERVED", "IN_USE"),
             default="RESERVED"),
        attr("user", "Reference", ref="instance"),
    ]
    insert = api(
        "addresses_insert",
        "create",
        [param("region", required=True)],
        [
            rule("require_param", param="region", code="required"),
            rule("set_attr_param", attr="region", param="region"),
            rule("set_attr_fresh", attr="address"),
        ],
        desc="Reserves a static external IP address in a region.",
    )
    delete = api(
        "addresses_delete",
        "destroy",
        [param("address_id", required=True)],
        [
            rule("require_param", param="address_id", code="required"),
            rule("check_attr_is", attr="status", value="RESERVED",
                 code="resourceInUseByAnotherResource"),
        ],
        desc="Deletes the specified address. The address must not be in "
             "use by an instance.",
    )
    get = api(
        "addresses_get",
        "describe",
        [param("address_id", required=True)],
        [rule("read_attr", attr="address"),
         rule("read_attr", attr="status"),
         rule("read_attr", attr="region")],
        desc="Returns the specified address.",
    )
    attach = api(
        "addresses_attach",
        "modify",
        [
            param("address_id", required=True),
            param("instance_id", "Reference", required=True,
                  ref="instance"),
        ],
        [
            rule("require_param", param="address_id", code="required"),
            rule("require_param", param="instance_id", code="required"),
            rule("check_attr_is", attr="status", value="RESERVED",
                 code="resourceInUseByAnotherResource"),
            rule("check_attr_matches_ref", attr="region",
                 ref="instance_id", ref_attr="region",
                 code="invalidRegion"),
            rule("link_ref", attr="user", param="instance_id"),
            rule("set_attr_const", attr="status", value="IN_USE"),
        ],
        desc="Attaches the address to an instance in the same region.",
    )
    detach = api(
        "addresses_detach",
        "modify",
        [param("address_id", required=True)],
        [
            rule("require_param", param="address_id", code="required"),
            rule("check_attr_is", attr="status", value="IN_USE",
                 code="invalid"),
            rule("clear_attr", attr="user"),
            rule("set_attr_const", attr="status", value="RESERVED"),
        ],
        desc="Detaches the address from its instance.",
    )
    return resource(
        "address",
        attrs,
        [insert, delete, get, attach, detach],
        desc="A reserved static external IP address.",
        notfound=NOTFOUND,
    )


def _instance() -> "resource":
    attrs = [
        attr("machine_type", "Enum", enum=MACHINE_TYPES,
             default="e2-micro"),
        attr("status", "Enum",
             enum=("PROVISIONING", "RUNNING", "STOPPING", "TERMINATED"),
             default="PROVISIONING"),
        attr("subnetwork", "Reference", ref="subnetwork"),
        attr("region"),
        attr("labels", "Map"),
    ]
    insert = api(
        "instances_insert",
        "create",
        [
            param("subnetwork_id", "Reference", required=True,
                  ref="subnetwork"),
            param("machine_type", required=True),
            param("region"),
        ],
        [
            rule("require_param", param="subnetwork_id", code="required"),
            rule("require_param", param="machine_type", code="required"),
            rule("require_one_of", param="machine_type",
                 values=MACHINE_TYPES, code="invalid"),
            rule("link_ref", attr="subnetwork", param="subnetwork_id"),
            rule("set_attr_param", attr="machine_type",
                 param="machine_type"),
            rule("set_attr_param", attr="region", param="region"),
            rule("set_attr_const", attr="status", value="RUNNING"),
            rule("track_in_ref", param="subnetwork_id",
                 list_attr="instances", source="id"),
        ],
        desc="Creates an instance in the specified subnetwork.",
    )
    delete = api(
        "instances_delete",
        "destroy",
        [param("instance_id", required=True)],
        [
            rule("require_param", param="instance_id", code="required"),
            rule("check_attr_is", attr="status", value="TERMINATED",
                 code="resourceNotReady"),
            rule("untrack_in_attr", attr="subnetwork",
                 list_attr="instances", source="id"),
        ],
        desc="Deletes the specified instance. The instance must be "
             "stopped (TERMINATED) first.",
    )
    get = api(
        "instances_get",
        "describe",
        [param("instance_id", required=True)],
        [rule("read_attr", attr="status"),
         rule("read_attr", attr="machine_type"),
         rule("read_attr", attr="region")],
        desc="Returns the specified instance.",
    )
    start = api(
        "instances_start",
        "modify",
        [param("instance_id", required=True)],
        [
            rule("require_param", param="instance_id", code="required"),
            rule("check_attr_is", attr="status", value="TERMINATED",
                 code="resourceNotReady"),
            rule("set_attr_const", attr="status", value="RUNNING"),
        ],
        desc="Starts a stopped instance.",
    )
    stop = api(
        "instances_stop",
        "modify",
        [param("instance_id", required=True)],
        [
            rule("require_param", param="instance_id", code="required"),
            rule("check_attr_is", attr="status", value="RUNNING",
                 code="resourceNotReady"),
            rule("set_attr_const", attr="status", value="TERMINATED"),
        ],
        desc="Stops a running instance.",
    )
    set_machine_type = api(
        "instances_setMachineType",
        "modify",
        [param("instance_id", required=True),
         param("machine_type", required=True)],
        [
            rule("require_param", param="instance_id", code="required"),
            rule("require_param", param="machine_type", code="required"),
            rule("require_one_of", param="machine_type",
                 values=MACHINE_TYPES, code="invalid"),
            rule("check_attr_is", attr="status", value="TERMINATED",
                 code="resourceNotReady"),
            rule("set_attr_param", attr="machine_type",
                 param="machine_type"),
        ],
        desc="Changes the machine type of a stopped instance.",
    )
    set_labels = api(
        "instances_setLabels",
        "modify",
        [param("instance_id", required=True),
         param("label_key", required=True), param("label_value")],
        [
            rule("require_param", param="instance_id", code="required"),
            rule("require_param", param="label_key", code="required"),
            rule("map_put", attr="labels", key_param="label_key",
                 value_param="label_value"),
        ],
        desc="Sets a label on the instance.",
    )
    return resource(
        "instance",
        attrs,
        [insert, delete, get, start, stop, set_machine_type, set_labels],
        parent="subnetwork",
        desc="A Compute Engine virtual machine.",
        notfound=NOTFOUND,
    )


def _firewall_rule() -> "resource":
    attrs = [
        attr("network", "Reference", ref="network"),
        attr("direction", "Enum", enum=("INGRESS", "EGRESS"),
             default="INGRESS"),
        attr("priority", "Integer", default=1000),
        attr("source_ranges", "List"),
        attr("disabled", "Boolean", default=False),
    ]
    insert = api(
        "firewalls_insert",
        "create",
        [
            param("network_id", "Reference", required=True, ref="network"),
            param("direction"),
            param("priority", "Integer"),
        ],
        [
            rule("require_param", param="network_id", code="required"),
            rule("require_one_of", param="direction",
                 values=("INGRESS", "EGRESS"), code="invalid"),
            rule("link_ref", attr="network", param="network_id"),
            rule("set_attr_param", attr="direction", param="direction"),
            rule("set_attr_param", attr="priority", param="priority"),
            rule("track_in_ref", param="network_id",
                 list_attr="firewall_rules", source="id"),
        ],
        desc="Creates a firewall rule on the specified network.",
    )
    delete = api(
        "firewalls_delete",
        "destroy",
        [param("firewall_rule_id", required=True)],
        [
            rule("require_param", param="firewall_rule_id",
                 code="required"),
            rule("untrack_in_attr", attr="network",
                 list_attr="firewall_rules", source="id"),
        ],
        desc="Deletes the specified firewall rule.",
    )
    get = api(
        "firewalls_get",
        "describe",
        [param("firewall_rule_id", required=True)],
        [rule("read_attr", attr="direction"),
         rule("read_attr", attr="priority"),
         rule("read_attr", attr="disabled")],
        desc="Returns the specified firewall rule.",
    )
    add_range = api(
        "firewalls_addSourceRange",
        "modify",
        [param("firewall_rule_id", required=True),
         param("source_range", required=True)],
        [
            rule("require_param", param="firewall_rule_id",
                 code="required"),
            rule("require_param", param="source_range", code="required"),
            rule("check_valid_cidr", param="source_range", code="invalid"),
            rule("check_not_in_list", param="source_range",
                 attr="source_ranges", code="duplicate"),
            rule("append_to_attr", attr="source_ranges",
                 param="source_range"),
        ],
        desc="Adds a source range to the firewall rule.",
    )
    patch = api(
        "firewalls_patch",
        "modify",
        [param("firewall_rule_id", required=True),
         param("disabled", "Boolean")],
        [
            rule("require_param", param="firewall_rule_id",
                 code="required"),
            rule("set_attr_param", attr="disabled", param="disabled"),
        ],
        desc="Patches the specified firewall rule.",
    )
    return resource(
        "firewall_rule",
        attrs,
        [insert, delete, get, add_range, patch],
        parent="network",
        desc="A VPC firewall rule.",
        notfound=NOTFOUND,
    )


def _disk() -> "resource":
    attrs = [
        attr("size_gb", "Integer", default=10),
        attr("disk_type", "Enum", enum=("pd-standard", "pd-ssd"),
             default="pd-standard"),
        attr("user", "Reference", ref="instance"),
        attr("region"),
    ]
    insert = api(
        "disks_insert",
        "create",
        [param("size_gb", "Integer"), param("disk_type"),
         param("region", required=True)],
        [
            rule("require_param", param="region", code="required"),
            rule("require_one_of", param="disk_type",
                 values=("pd-standard", "pd-ssd"), code="invalid"),
            rule("set_attr_param", attr="size_gb", param="size_gb"),
            rule("set_attr_param", attr="disk_type", param="disk_type"),
            rule("set_attr_param", attr="region", param="region"),
        ],
        desc="Creates a persistent disk.",
    )
    delete = api(
        "disks_delete",
        "destroy",
        [param("disk_id", required=True)],
        [
            rule("require_param", param="disk_id", code="required"),
            rule("check_attr_unset", attr="user",
                 code="resourceInUseByAnotherResource"),
        ],
        desc="Deletes the specified disk. The disk must be detached "
             "first.",
    )
    get = api(
        "disks_get",
        "describe",
        [param("disk_id", required=True)],
        [rule("read_attr", attr="size_gb"),
         rule("read_attr", attr="disk_type"),
         rule("read_attr", attr="user")],
        desc="Returns the specified disk.",
    )
    attach = api(
        "disks_attach",
        "modify",
        [param("disk_id", required=True),
         param("instance_id", "Reference", required=True, ref="instance")],
        [
            rule("require_param", param="disk_id", code="required"),
            rule("require_param", param="instance_id", code="required"),
            rule("check_attr_unset", attr="user",
                 code="resourceInUseByAnotherResource"),
            rule("link_ref", attr="user", param="instance_id"),
        ],
        desc="Attaches the disk to an instance.",
    )
    detach = api(
        "disks_detach",
        "modify",
        [param("disk_id", required=True)],
        [
            rule("require_param", param="disk_id", code="required"),
            rule("check_attr_set", attr="user", code="invalid"),
            rule("clear_attr", attr="user"),
        ],
        desc="Detaches the disk from its instance.",
    )
    return resource(
        "disk",
        attrs,
        [insert, delete, get, attach, detach],
        desc="A persistent disk volume.",
        notfound=NOTFOUND,
    )


def build_gcp_catalog() -> ServiceDoc:
    """The GCP Compute Engine networking catalog (6 resources)."""
    return ServiceDoc(
        name="gcp_compute",
        provider="gcp",
        resources=[
            _network(),
            _subnetwork(),
            _address(),
            _instance(),
            _firewall_rule(),
            _disk(),
        ],
        description="Google Compute Engine: VPC networks and instances.",
    )
