"""The AWS Network Firewall documentation catalog: 8 resources, 45 APIs.

The paper highlights Network Firewall as the coverage worst-case: Moto
emulates only 5 of its 45 APIs (Table 1) and LocalStack none, while the
learned prototype captures all 45 through automated generation (§5).
The catalog therefore documents every API so extraction can reach full
coverage.
"""

from __future__ import annotations

from .build import (
    api,
    attr,
    make_create,
    make_delete,
    make_describe,
    make_list,
    make_modify,
    param,
    resource,
)
from .model import rule, ServiceDoc

NOTFOUND = "ResourceNotFoundException"


def _firewall() -> "resource":
    attrs = [
        attr("firewall_name"),
        attr("vpc", "Reference", ref="vpc"),
        attr("firewall_policy", "Reference", ref="firewall_policy"),
        attr("subnets", "List"),
        attr("delete_protection", "Boolean", default=False),
        attr("firewall_policy_change_protection", "Boolean", default=False),
        attr("subnet_change_protection", "Boolean", default=False),
        attr("description"),
        attr("analysis_enabled", "Boolean", default=False),
        attr("status", "Enum", enum=("provisioning", "ready"),
             default="provisioning"),
    ]
    create = make_create(
        "firewall",
        "CreateFirewall",
        [
            param("firewall_name", required=True),
            param("firewall_policy_id", "Reference", required=True,
                  ref="firewall_policy"),
            param("description"),
        ],
        attrs,
        extra_rules=[
            rule("link_ref", attr="firewall_policy",
                 param="firewall_policy_id"),
            rule("track_in_ref", param="firewall_policy_id",
                 list_attr="associations", source="id"),
            rule("set_attr_const", attr="status", value="ready"),
        ],
        desc="Creates a Network Firewall firewall tied to a firewall policy.",
    )
    delete = make_delete(
        "firewall",
        "DeleteFirewall",
        guard_rules=[
            rule("check_attr_is", attr="delete_protection", value=False,
                 code="InvalidOperationException"),
            rule("check_list_empty", attr="subnets",
                 code="InvalidOperationException"),
            rule("untrack_in_attr", attr="firewall_policy",
                 list_attr="associations", source="id"),
        ],
        desc="Deletes the specified firewall. Delete protection must be "
             "disabled and all subnet associations removed first.",
    )
    describe = make_describe("firewall", "DescribeFirewall", attrs)
    associate_subnets = api(
        "AssociateSubnets",
        "modify",
        [param("firewall_id", required=True), param("subnet_id", required=True)],
        [
            rule("require_param", param="firewall_id", code="MissingParameter"),
            rule("require_param", param="subnet_id", code="MissingParameter"),
            rule("check_attr_is", attr="subnet_change_protection",
                 value=False, code="InvalidOperationException"),
            rule("check_not_in_list", param="subnet_id", attr="subnets",
                 code="InvalidRequestException"),
            rule("append_to_attr", attr="subnets", param="subnet_id"),
        ],
        desc="Associates a subnet with the firewall's endpoints.",
    )
    disassociate_subnets = api(
        "DisassociateSubnets",
        "modify",
        [param("firewall_id", required=True), param("subnet_id", required=True)],
        [
            rule("require_param", param="firewall_id", code="MissingParameter"),
            rule("require_param", param="subnet_id", code="MissingParameter"),
            rule("check_attr_is", attr="subnet_change_protection",
                 value=False, code="InvalidOperationException"),
            rule("check_in_list", param="subnet_id", attr="subnets",
                 code="ResourceNotFoundException"),
            rule("remove_from_attr", attr="subnets", param="subnet_id"),
        ],
        desc="Removes a subnet association from the firewall.",
    )
    associate_policy = api(
        "AssociateFirewallPolicy",
        "modify",
        [
            param("firewall_id", required=True),
            param("firewall_policy_id", "Reference", required=True,
                  ref="firewall_policy"),
        ],
        [
            rule("require_param", param="firewall_id", code="MissingParameter"),
            rule("require_param", param="firewall_policy_id",
                 code="MissingParameter"),
            rule("check_attr_is", attr="firewall_policy_change_protection",
                 value=False, code="InvalidOperationException"),
            rule("link_ref", attr="firewall_policy",
                 param="firewall_policy_id"),
        ],
        desc="Swaps the firewall policy attached to the firewall.",
    )
    update_description = make_modify(
        "firewall", "UpdateFirewallDescription", "description",
        desc="Updates the firewall's description.",
    )
    update_delete_protection = make_modify(
        "firewall", "UpdateFirewallDeleteProtection", "delete_protection",
        param_type="Boolean",
        desc="Enables or disables the firewall's deletion protection.",
    )
    update_policy_protection = make_modify(
        "firewall", "UpdateFirewallPolicyChangeProtection",
        "firewall_policy_change_protection", param_type="Boolean",
        desc="Enables or disables protection against policy changes.",
    )
    update_subnet_protection = make_modify(
        "firewall", "UpdateSubnetChangeProtection",
        "subnet_change_protection", param_type="Boolean",
        desc="Enables or disables protection against subnet changes.",
    )
    update_analysis = make_modify(
        "firewall", "UpdateFirewallAnalysisSettings", "analysis_enabled",
        param_type="Boolean",
        desc="Enables or disables traffic analysis for the firewall.",
    )
    listing = make_list("firewall", "ListFirewalls")
    return resource(
        "firewall",
        attrs,
        [create, delete, describe, listing, associate_subnets,
         disassociate_subnets, associate_policy, update_description,
         update_delete_protection, update_policy_protection,
         update_subnet_protection, update_analysis],
        desc="A stateful, managed network firewall for a VPC.",
        notfound=NOTFOUND,
    )


def _firewall_policy() -> "resource":
    attrs = [
        attr("policy_name"),
        attr("description"),
        attr("stateless_default_action",
             "Enum", enum=("pass", "drop", "forward"), default="forward"),
        attr("associations", "List"),
        attr("rule_group", "Reference", ref="rule_group"),
    ]
    create = make_create(
        "firewall_policy",
        "CreateFirewallPolicy",
        [
            param("policy_name", required=True),
            param("stateless_default_action"),
            param("rule_group_id", "Reference", ref="rule_group"),
            param("description"),
        ],
        attrs,
        extra_rules=[
            rule("require_one_of", param="stateless_default_action",
                 values=("pass", "drop", "forward"),
                 code="InvalidRequestException"),
            rule("link_ref", attr="rule_group", param="rule_group_id"),
            rule("track_in_ref", param="rule_group_id",
                 list_attr="associations", source="id"),
        ],
        desc="Creates a firewall policy from stateless and stateful rule "
             "group references.",
    )
    delete = make_delete(
        "firewall_policy",
        "DeleteFirewallPolicy",
        guard_rules=[
            rule("check_list_empty", attr="associations",
                 code="InvalidOperationException"),
        ],
        desc="Deletes the specified firewall policy. The policy must not be "
             "in use by any firewall.",
    )
    describe = make_describe("firewall_policy", "DescribeFirewallPolicy",
                             attrs)
    describe_metadata = api(
        "DescribeFirewallPolicyMetadata",
        "describe",
        [param("firewall_policy_id", required=True)],
        [rule("read_attr", attr="policy_name"),
         rule("read_attr", attr="description")],
        desc="Returns the high-level metadata of a firewall policy.",
    )
    update = api(
        "UpdateFirewallPolicy",
        "modify",
        [
            param("firewall_policy_id", required=True),
            param("stateless_default_action"),
        ],
        [
            rule("require_param", param="firewall_policy_id",
                 code="MissingParameter"),
            rule("require_one_of", param="stateless_default_action",
                 values=("pass", "drop", "forward"),
                 code="InvalidRequestException"),
            rule("set_attr_param", attr="stateless_default_action",
                 param="stateless_default_action"),
        ],
        desc="Updates the rule settings of the specified firewall policy.",
    )
    update_description = make_modify(
        "firewall_policy", "UpdateFirewallPolicyDescription", "description",
        desc="Updates the description of the firewall policy.",
    )
    listing = make_list("firewall_policy", "ListFirewallPolicies")
    return resource(
        "firewall_policy",
        attrs,
        [create, delete, describe, describe_metadata, update,
         update_description, listing],
        desc="The behaviour definition of a firewall: rule groups plus "
             "default actions.",
        notfound=NOTFOUND,
    )


def _rule_group() -> "resource":
    attrs = [
        attr("group_name"),
        attr("type", "Enum", enum=("STATELESS", "STATEFUL"),
             default="STATEFUL"),
        attr("capacity", "Integer"),
        attr("rules", "List"),
        attr("associations", "List"),
        attr("description"),
    ]
    create = make_create(
        "rule_group",
        "CreateRuleGroup",
        [
            param("group_name", required=True),
            param("type"),
            param("capacity", "Integer", required=True),
            param("description"),
        ],
        attrs,
        extra_rules=[
            rule("require_one_of", param="type",
                 values=("STATELESS", "STATEFUL"),
                 code="InvalidRequestException"),
        ],
        desc="Creates a rule group: a reusable set of firewall rules.",
    )
    delete = make_delete(
        "rule_group",
        "DeleteRuleGroup",
        guard_rules=[
            rule("check_list_empty", attr="associations",
                 code="InvalidOperationException"),
        ],
        desc="Deletes the specified rule group. The group must not be "
             "referenced by any firewall policy.",
    )
    describe = make_describe("rule_group", "DescribeRuleGroup", attrs)
    describe_metadata = api(
        "DescribeRuleGroupMetadata",
        "describe",
        [param("rule_group_id", required=True)],
        [rule("read_attr", attr="group_name"),
         rule("read_attr", attr="type"),
         rule("read_attr", attr="capacity")],
        desc="Returns the high-level metadata of a rule group.",
    )
    describe_summary = api(
        "DescribeRuleGroupSummary",
        "describe",
        [param("rule_group_id", required=True)],
        [rule("read_attr", attr="group_name"),
         rule("read_attr", attr="rules")],
        desc="Returns a summary of the rules in a rule group.",
    )
    update = api(
        "UpdateRuleGroup",
        "modify",
        [param("rule_group_id", required=True), param("rule", required=True)],
        [
            rule("require_param", param="rule_group_id",
                 code="MissingParameter"),
            rule("require_param", param="rule", code="MissingParameter"),
            rule("check_not_in_list", param="rule", attr="rules",
                 code="InvalidRequestException"),
            rule("append_to_attr", attr="rules", param="rule"),
        ],
        desc="Adds a rule to the specified rule group.",
    )
    listing = make_list("rule_group", "ListRuleGroups")
    return resource(
        "rule_group",
        attrs,
        [create, delete, describe, describe_metadata, describe_summary,
         update, listing],
        desc="A reusable collection of stateless or stateful firewall rules.",
        notfound=NOTFOUND,
    )


def _tls_inspection_configuration() -> "resource":
    attrs = [
        attr("configuration_name"),
        attr("description"),
        attr("certificate_arn"),
        attr("scope"),
    ]
    create = make_create(
        "tls_inspection_configuration",
        "CreateTLSInspectionConfiguration",
        [
            param("configuration_name", required=True),
            param("certificate_arn", required=True),
            param("scope"),
            param("description"),
        ],
        attrs,
        desc="Creates a TLS inspection configuration for decrypting and "
             "re-encrypting traffic.",
    )
    delete = make_delete(
        "tls_inspection_configuration", "DeleteTLSInspectionConfiguration",
        desc="Deletes the specified TLS inspection configuration.",
    )
    describe = make_describe(
        "tls_inspection_configuration", "DescribeTLSInspectionConfiguration",
        attrs,
    )
    update = make_modify(
        "tls_inspection_configuration", "UpdateTLSInspectionConfiguration",
        "certificate_arn",
        desc="Updates the certificate used by the TLS inspection "
             "configuration.",
    )
    listing = make_list("tls_inspection_configuration",
                        "ListTLSInspectionConfigurations")
    return resource(
        "tls_inspection_configuration",
        attrs,
        [create, delete, describe, update, listing],
        desc="Settings for TLS traffic decryption and inspection.",
        notfound=NOTFOUND,
    )


def _logging_configuration() -> "resource":
    attrs = [
        attr("firewall", "Reference", ref="firewall"),
        attr("log_type", "Enum", enum=("ALERT", "FLOW", "TLS"),
             default="ALERT"),
        attr("log_destination"),
    ]
    create = make_create(
        "logging_configuration",
        "CreateLoggingConfiguration",
        [
            param("firewall_id", "Reference", required=True, ref="firewall"),
            param("log_type"),
            param("log_destination", required=True),
        ],
        attrs,
        extra_rules=[
            rule("require_one_of", param="log_type",
                 values=("ALERT", "FLOW", "TLS"),
                 code="InvalidRequestException"),
            rule("link_ref", attr="firewall", param="firewall_id"),
        ],
        desc="Creates a logging configuration for the specified firewall.",
    )
    delete = make_delete("logging_configuration",
                         "DeleteLoggingConfiguration",
                         desc="Deletes the specified logging configuration.")
    describe = make_describe("logging_configuration",
                             "DescribeLoggingConfiguration", attrs)
    update = make_modify(
        "logging_configuration", "UpdateLoggingConfiguration",
        "log_destination",
        desc="Updates where the firewall's logs are delivered.",
    )
    return resource(
        "logging_configuration",
        attrs,
        [create, delete, describe, update],
        parent="firewall",
        desc="Defines how a firewall delivers alert and flow logs.",
        notfound=NOTFOUND,
    )


def _vpc_endpoint_association() -> "resource":
    attrs = [
        attr("firewall", "Reference", ref="firewall"),
        attr("subnet_id"),
        attr("status", "Enum", enum=("associating", "ready"),
             default="associating"),
    ]
    create = make_create(
        "vpc_endpoint_association",
        "CreateVpcEndpointAssociation",
        [
            param("firewall_id", "Reference", required=True, ref="firewall"),
            param("subnet_id", required=True),
        ],
        attrs,
        extra_rules=[
            rule("link_ref", attr="firewall", param="firewall_id"),
            rule("set_attr_const", attr="status", value="ready"),
        ],
        desc="Creates a firewall endpoint in the specified subnet.",
    )
    delete = make_delete("vpc_endpoint_association",
                         "DeleteVpcEndpointAssociation",
                         desc="Deletes the specified endpoint association.")
    describe = make_describe("vpc_endpoint_association",
                             "DescribeVpcEndpointAssociation", attrs)
    listing = make_list("vpc_endpoint_association",
                        "ListVpcEndpointAssociations")
    return resource(
        "vpc_endpoint_association",
        attrs,
        [create, delete, describe, listing],
        parent="firewall",
        desc="An additional firewall endpoint placed in a VPC subnet.",
        notfound=NOTFOUND,
    )


def _analysis_report() -> "resource":
    attrs = [
        attr("firewall", "Reference", ref="firewall"),
        attr("report_type", "Enum", enum=("TLS_SNI", "HTTP_HOST"),
             default="TLS_SNI"),
        attr("status", "Enum", enum=("running", "completed"),
             default="running"),
        attr("findings", "List"),
    ]
    start = make_create(
        "analysis_report",
        "StartAnalysisReport",
        [
            param("firewall_id", "Reference", required=True, ref="firewall"),
            param("report_type"),
        ],
        attrs,
        extra_rules=[
            rule("require_one_of", param="report_type",
                 values=("TLS_SNI", "HTTP_HOST"),
                 code="InvalidRequestException"),
            rule("link_ref", attr="firewall", param="firewall_id"),
            rule("set_attr_const", attr="status", value="completed"),
        ],
        desc="Starts a traffic analysis report for the specified firewall.",
    )
    results = api(
        "GetAnalysisReportResults",
        "describe",
        [param("analysis_report_id", required=True)],
        [rule("read_attr", attr="status"), rule("read_attr", attr="findings")],
        desc="Returns the findings of a completed analysis report.",
    )
    listing = make_list("analysis_report", "ListAnalysisReports")
    return resource(
        "analysis_report",
        attrs,
        [start, results, listing],
        parent="firewall",
        desc="An on-demand analysis of traffic through a firewall.",
        notfound=NOTFOUND,
    )


def _flow_operation() -> "resource":
    attrs = [
        attr("firewall", "Reference", ref="firewall"),
        attr("operation_type", "Enum", enum=("FLOW_CAPTURE", "FLOW_FLUSH"),
             default="FLOW_CAPTURE"),
        attr("status", "Enum", enum=("running", "completed"),
             default="running"),
    ]
    start = make_create(
        "flow_operation",
        "StartFlowCapture",
        [param("firewall_id", "Reference", required=True, ref="firewall")],
        attrs,
        extra_rules=[
            rule("link_ref", attr="firewall", param="firewall_id"),
            rule("set_attr_const", attr="status", value="completed"),
        ],
        desc="Begins capturing the active flows through a firewall.",
    )
    describe = make_describe("flow_operation", "DescribeFlowOperation", attrs)
    listing = make_list("flow_operation", "ListFlowOperations")
    return resource(
        "flow_operation",
        attrs,
        [start, describe, listing],
        parent="firewall",
        desc="A flow capture or flush operation on a firewall.",
        notfound=NOTFOUND,
    )


def build_nfw_catalog() -> ServiceDoc:
    """The full Network Firewall catalog: 8 resources, 45 APIs."""
    return ServiceDoc(
        name="network_firewall",
        provider="aws",
        resources=[
            _firewall(),
            _firewall_policy(),
            _rule_group(),
            _tls_inspection_configuration(),
            _logging_configuration(),
            _vpc_endpoint_association(),
            _analysis_report(),
            _flow_operation(),
        ],
        description="AWS Network Firewall: managed network protection for "
                    "VPCs.",
    )
