"""Render a service catalog as Azure-style web reference pages.

Unlike AWS's single paginated PDF, Azure scatters reference material
across per-resource web pages with markdown structure (§4.1, §5
"Multi-cloud": the primary additional effort lies in documentation
wrangling).  One page per resource; properties as a table; operations
as headed sections with bulleted behaviour.
"""

from __future__ import annotations

from .model import DocPage, ResourceDoc, ServiceDoc
from .prose import render_rule


def _default_text(value: object) -> str:
    if value is None:
        return ""
    if isinstance(value, bool):
        return "true" if value else "false"
    return str(value)


def _type_text(attribute) -> str:
    if attribute.type == "Enum" and attribute.enum_values:
        return "Enum: " + " | ".join(attribute.enum_values)
    if attribute.type == "Reference" and attribute.ref:
        return f"Reference -> {attribute.ref}"
    return attribute.type


def _render_resource(service: ServiceDoc, res: ResourceDoc,
                     number: int) -> DocPage:
    lines = [
        f"# {service.description or service.name}",
        f"## {res.name}",
        "",
    ]
    if res.description:
        lines.append(res.description)
        lines.append("")
    lines.append(f"> Parent resource: {res.parent or 'none'}")
    if res.notfound_code:
        lines.append(f"> Error for missing resource: {res.notfound_code}")
    lines.append("")
    lines.append("### Properties")
    lines.append("| name | type | default |")
    lines.append("| --- | --- | --- |")
    for attribute in res.attributes:
        lines.append(
            f"| {attribute.name} | {_type_text(attribute)} | "
            f"{_default_text(attribute.default)} |"
        )
    lines.append("")
    for api in res.apis:
        lines.append(f"### Operation {api.name} ({api.category})")
        if api.description:
            lines.append(api.description)
        lines.append("")
        lines.append("Parameters:")
        for p in api.params:
            requiredness = "required" if p.required else "optional"
            type_text = p.type
            if p.type == "Reference" and p.ref:
                type_text = f"Reference -> {p.ref}"
            lines.append(f"- {p.name}: {type_text} ({requiredness})")
        if not api.params:
            lines.append("- (none)")
        lines.append("")
        for behaviour in api.documented_rules():
            lines.append("* " + render_rule(behaviour))
        lines.append("")
    return DocPage(number=number, title=res.name, text="\n".join(lines))


def render_azure_docs(service: ServiceDoc) -> list[DocPage]:
    """Render the catalog into per-resource Azure web pages."""
    return [
        _render_resource(service, res, index + 1)
        for index, res in enumerate(service.resources)
    ]
