"""Helpers for authoring documentation catalogs compactly.

Cloud APIs are heavily patterned (§3: create/destroy/describe/modify),
so the catalogs build most APIs from these combinators and hand-write
only the genuinely service-specific behaviour.
"""

from __future__ import annotations

from .model import ApiDoc, ApiParam, AttributeDoc, ResourceDoc, Rule, rule


def attr(
    name: str,
    type: str = "String",
    enum: tuple[str, ...] = (),
    default: object = None,
    ref: str = "",
) -> AttributeDoc:
    return AttributeDoc(
        name=name, type=type, enum_values=tuple(enum), default=default, ref=ref
    )


def param(
    name: str, type: str = "String", required: bool = False, ref: str = ""
) -> ApiParam:
    return ApiParam(name=name, type=type, required=required, ref=ref)


def api(
    name: str,
    category: str,
    params: list[ApiParam] | None = None,
    rules: list[Rule] | None = None,
    desc: str = "",
) -> ApiDoc:
    return ApiDoc(
        name=name,
        category=category,
        params=list(params or []),
        rules=list(rules or []),
        description=desc,
    )


def require_rules(params: list[ApiParam]) -> list[Rule]:
    """``MissingParameter`` checks for every required parameter."""
    return [
        rule("require_param", param=p.name, code="MissingParameter")
        for p in params
        if p.required
    ]


def set_rules(params: list[ApiParam], attrs: set[str]) -> list[Rule]:
    """``set_attr_param`` for every parameter that names an attribute."""
    rules: list[Rule] = []
    for p in params:
        if p.name in attrs:
            if p.ref:
                rules.append(rule("link_ref", attr=p.name, param=p.name))
            else:
                rules.append(rule("set_attr_param", attr=p.name, param=p.name))
    return rules


def make_create(
    resource: str,
    verb: str,
    params: list[ApiParam],
    attrs: list[AttributeDoc],
    extra_rules: list[Rule] | None = None,
    desc: str = "",
) -> ApiDoc:
    """A create-class API: required-param checks, then attribute writes."""
    attr_names = {a.name for a in attrs}
    rules = require_rules(params) + list(extra_rules or []) + set_rules(
        params, attr_names
    )
    return api(verb, "create", params, rules, desc)


def make_delete(
    resource: str,
    verb: str,
    guard_rules: list[Rule] | None = None,
    desc: str = "",
) -> ApiDoc:
    """A destroy-class API guarded by dependency checks."""
    id_param = param(f"{resource}_id", required=True)
    rules = require_rules([id_param]) + list(guard_rules or [])
    return api(verb, "destroy", [id_param], rules, desc)


def make_describe(
    resource: str,
    verb: str,
    attrs: list[AttributeDoc],
    desc: str = "",
) -> ApiDoc:
    """A describe-class API returning every documented attribute."""
    id_param = param(f"{resource}_id", required=True)
    rules = [rule("read_attr", attr=a.name) for a in attrs]
    return api(verb, "describe", [id_param], rules, desc)


def make_list(resource: str, verb: str, desc: str = "") -> ApiDoc:
    """A list-class API: enumerates all resources of the type.

    Modelled as a parameterless describe; the framework answers it from
    the registry without running a transition body.
    """
    return api(
        verb, "describe", [], [],
        desc or f"Lists all {resource.replace('_', ' ')} resources.",
    )


def make_modify(
    resource: str,
    verb: str,
    attr_name: str,
    value_param: str = "",
    pre_rules: list[Rule] | None = None,
    param_type: str = "String",
    desc: str = "",
) -> ApiDoc:
    """A modify-class API setting one attribute from one parameter."""
    source = value_param or attr_name
    params = [
        param(f"{resource}_id", required=True),
        param(source, type=param_type),
    ]
    rules = (
        require_rules(params)
        + list(pre_rules or [])
        + [rule("set_attr_param", attr=attr_name, param=source)]
    )
    return api(verb, "modify", params, rules, desc)


def resource(
    name: str,
    attrs: list[AttributeDoc],
    apis: list[ApiDoc],
    parent: str = "",
    desc: str = "",
    notfound: str = "",
) -> ResourceDoc:
    return ResourceDoc(
        name=name,
        attributes=list(attrs),
        apis=list(apis),
        parent=parent,
        description=desc,
        notfound_code=notfound,
    )
