"""Documentation wrangling: parse rendered provider pages back into a
structured corpus (§4.1).

This is the symbolic preprocessing step the paper proposes instead of
RAG: cloud docs are semi-structured with a set template indexed by
resource type, so a parser can rebuild per-resource information and
hand the LLM a small, focused context per resource.

Each provider has its own pagination and layout, hence one parser per
provider (the paper's Azure/GCP point); both produce the same
:class:`~repro.docs.model.ServiceDoc` shape.
"""

from __future__ import annotations

import re

from .model import (
    ApiDoc,
    ApiParam,
    AttributeDoc,
    DocPage,
    ResourceDoc,
    ServiceDoc,
)
from .prose import parse_rule


class WrangleError(Exception):
    """The pages do not follow the expected documentation template."""


_ATTR_LINE = re.compile(
    r"- (?P<name>\w+) \((?P<type>[^)]+)\)(?: \[default: (?P<default>[^\]]*)\])?"
)
_PARAM_LINE = re.compile(
    r"- (?P<name>\w+) \((?P<type>[^,]+), (?P<req>required|optional)\)"
)
_BEHAVIOR_LINE = re.compile(r"\d+\. (?P<sentence>.*)")


def _decode_default(text: str | None) -> object:
    if text is None:
        return None
    if text == "true":
        return True
    if text == "false":
        return False
    if re.fullmatch(r"-?\d+", text):
        return int(text)
    return text


def _decode_attr_type(text: str) -> tuple[str, tuple[str, ...], str]:
    """Returns (type, enum_values, ref)."""
    if text.startswith("Enum"):
        values: tuple[str, ...] = ()
        if ":" in text:
            values = tuple(v.strip() for v in text.split(":", 1)[1].split("|"))
        return "Enum", values, ""
    if text.startswith("Reference"):
        ref = text.split("->", 1)[1].strip() if "->" in text else ""
        return "Reference", (), ref
    return text.strip(), (), ""


class AwsDocParser:
    """Parses AWS-PDF-style pages (see :mod:`repro.docs.render_aws`)."""

    def parse(self, pages: list[DocPage], service: str = "",
              provider: str = "aws") -> ServiceDoc:
        doc = ServiceDoc(name=service, provider=provider)
        current: ResourceDoc | None = None
        for page in pages:
            lines = page.text.splitlines()
            fields = _page_fields(lines)
            if "Action" in fields:
                if current is None or fields.get("Resource") != current.name:
                    current = self._resource_for(doc, fields.get("Resource", ""))
                current.apis.append(self._parse_api_page(lines, fields))
            elif "Resource" in fields:
                current = self._parse_resource_page(lines, fields)
                doc.resources.append(current)
        if not doc.resources:
            raise WrangleError("no resource pages found")
        return doc

    def _resource_for(self, doc: ServiceDoc, name: str) -> ResourceDoc:
        for res in doc.resources:
            if res.name == name:
                return res
        # An API page arrived before its resource page; AWS PDFs are
        # ordered, but tolerate shuffled input.
        res = ResourceDoc(name=name)
        doc.resources.append(res)
        return res

    def _parse_resource_page(
        self, lines: list[str], fields: dict[str, str]
    ) -> ResourceDoc:
        res = ResourceDoc(name=fields["Resource"])
        contained = fields.get("Contained in", "")
        if contained and not contained.startswith("-"):
            res.parent = contained
        res.notfound_code = fields.get("Not-found error code", "")
        in_attrs = False
        for line in lines:
            stripped = line.strip()
            if stripped == "Attributes":
                in_attrs = True
                continue
            if stripped == "Actions":
                in_attrs = False
                continue
            if in_attrs:
                match = _ATTR_LINE.match(stripped)
                if match:
                    type_name, enum_values, ref = _decode_attr_type(
                        match.group("type")
                    )
                    res.attributes.append(
                        AttributeDoc(
                            name=match.group("name"),
                            type=type_name,
                            enum_values=enum_values,
                            default=_decode_default(match.group("default")),
                            ref=ref,
                        )
                    )
        return res

    def _parse_api_page(
        self, lines: list[str], fields: dict[str, str]
    ) -> ApiDoc:
        api = ApiDoc(name=fields["Action"], category=fields.get("Category", ""))
        section = ""
        description: list[str] = []
        for line in lines:
            stripped = line.strip()
            if stripped in ("Request Parameters", "Behavior", "Errors"):
                section = stripped
                continue
            if section == "" and stripped and ":" not in stripped and not (
                stripped.startswith("Page")
            ):
                description.append(stripped)
            elif section == "Request Parameters":
                match = _PARAM_LINE.match(stripped)
                if match:
                    type_text = match.group("type")
                    ref = ""
                    if type_text.startswith("Reference"):
                        if "->" in type_text:
                            ref = type_text.split("->", 1)[1].strip()
                        type_text = "Reference"
                    api.params.append(
                        ApiParam(
                            name=match.group("name"),
                            type=type_text.strip(),
                            required=match.group("req") == "required",
                            ref=ref,
                        )
                    )
            elif section == "Behavior":
                match = _BEHAVIOR_LINE.match(stripped)
                if match:
                    behaviour = parse_rule(match.group("sentence"))
                    if behaviour is not None:
                        api.rules.append(behaviour)
        api.description = " ".join(description).strip()
        return api


def _page_fields(lines: list[str]) -> dict[str, str]:
    """Extract ``Key: value`` header fields from a page."""
    fields: dict[str, str] = {}
    for line in lines:
        stripped = line.strip()
        if ": " in stripped:
            key, value = stripped.split(": ", 1)
            if key in ("Resource", "Action", "Category", "Contained in",
                       "Not-found error code", "Operation", "Parent resource",
                       "Error for missing resource"):
                fields[key] = value.strip()
        elif stripped.startswith("Contained in:"):
            fields["Contained in"] = stripped.split(":", 1)[1].strip()
    return fields


class AzureDocParser:
    """Parses Azure-web-style pages (see :mod:`repro.docs.render_azure`).

    Azure distributes reference material across per-resource web pages
    with markdown-ish structure instead of one paginated PDF; this
    parser handles that layout and emits the same ServiceDoc shape.
    """

    _OPERATION = re.compile(r"### Operation (?P<name>\w+) \((?P<cat>\w+)\)")
    _PROPERTY = re.compile(
        r"\| (?P<name>\w+) \| (?P<type>[^|]+) \| (?P<default>[^|]*) \|"
    )
    _AZ_PARAM = re.compile(
        r"- (?P<name>\w+): (?P<type>[^(]+) \((?P<req>required|optional)\)"
    )

    def parse(self, pages: list[DocPage], service: str = "",
              provider: str = "azure") -> ServiceDoc:
        doc = ServiceDoc(name=service, provider=provider)
        for page in pages:
            doc.resources.append(self._parse_resource(page))
        if not doc.resources:
            raise WrangleError("no resource pages found")
        return doc

    def _parse_resource(self, page: DocPage) -> ResourceDoc:
        res = ResourceDoc(name="")
        api: ApiDoc | None = None
        for line in page.text.splitlines():
            stripped = line.strip()
            if stripped.startswith("## ") and not res.name:
                res.name = stripped[3:].strip()
                continue
            if stripped.startswith("> Parent resource:"):
                parent = stripped.split(":", 1)[1].strip()
                res.parent = "" if parent == "none" else parent
                continue
            if stripped.startswith("> Error for missing resource:"):
                res.notfound_code = stripped.split(":", 1)[1].strip()
                continue
            operation = self._OPERATION.match(stripped)
            if operation:
                api = ApiDoc(name=operation.group("name"),
                             category=operation.group("cat"))
                res.apis.append(api)
                continue
            if api is None:
                prop = self._PROPERTY.match(stripped)
                if prop and prop.group("name") != "name":
                    type_name, enum_values, ref = _decode_attr_type(
                        prop.group("type").strip()
                    )
                    default_text = prop.group("default").strip()
                    res.attributes.append(
                        AttributeDoc(
                            name=prop.group("name"),
                            type=type_name,
                            enum_values=enum_values,
                            default=_decode_default(default_text or None),
                            ref=ref,
                        )
                    )
                continue
            match = self._AZ_PARAM.match(stripped)
            if match:
                type_text = match.group("type").strip()
                ref = ""
                if type_text.startswith("Reference"):
                    if "->" in type_text:
                        ref = type_text.split("->", 1)[1].strip()
                    type_text = "Reference"
                api.params.append(
                    ApiParam(
                        name=match.group("name"),
                        type=type_text,
                        required=match.group("req") == "required",
                        ref=ref,
                    )
                )
                continue
            if stripped.startswith("* "):
                behaviour = parse_rule(stripped[2:])
                if behaviour is not None:
                    api.rules.append(behaviour)
        if not res.name:
            raise WrangleError(f"page {page.number} has no resource heading")
        return res


class GcpDocParser:
    """Parses GCP-discovery-style pages (see :mod:`repro.docs.render_gcp`).

    GCP lists dotted method ids (``compute.networks.insert``); the
    parser normalizes them to grammar-legal identifiers
    (``networks_insert``), the identifier convention every downstream
    stage uses.
    """

    # The type may itself contain commas (enum[a, b, c]); the trailing
    # comma before the optional default comment delimits it.
    _FIELD = re.compile(
        r'"(?P<name>\w+)": (?P<type>.+),(?:\s*// default: '
        r"(?P<default>.*))?$"
    )
    _METHOD = re.compile(r"Method: compute\.(?P<collection>\w+)\."
                         r"(?P<verb>\w+)")
    _REQUEST_FIELD = re.compile(
        r"(?P<name>\w+): (?P<type>[^\[]+) \[(?P<req>required|optional)\]"
    )

    def parse(self, pages: list[DocPage], service: str = "",
              provider: str = "gcp") -> ServiceDoc:
        doc = ServiceDoc(name=service, provider=provider)
        for page in pages:
            doc.resources.append(self._parse_resource(page))
        if not doc.resources:
            raise WrangleError("no resource pages found")
        return doc

    @staticmethod
    def _decode_type(text: str) -> tuple[str, tuple[str, ...], str]:
        text = text.strip()
        if text.startswith("enum["):
            values = tuple(
                v.strip() for v in text[len("enum["):-1].split(",")
            )
            return "Enum", values, ""
        if text.startswith("resourceLink("):
            return "Reference", (), text[len("resourceLink("):-1]
        table = {"string": "String", "integer": "Integer",
                 "boolean": "Boolean", "list": "List", "map": "Map"}
        return table.get(text, "String"), (), ""

    def _parse_resource(self, page: DocPage) -> ResourceDoc:
        res = ResourceDoc(name="")
        api: ApiDoc | None = None
        section = ""
        for line in page.text.splitlines():
            stripped = line.strip()
            if stripped.startswith("REST Resource:"):
                res.name = stripped.split(":", 1)[1].strip()
                continue
            if stripped.startswith("parentResource:"):
                parent = stripped.split(":", 1)[1].strip()
                res.parent = "" if parent == "(none)" else parent
                continue
            if stripped.startswith("missingResourceReason:"):
                res.notfound_code = stripped.split(":", 1)[1].strip()
                continue
            method = self._METHOD.match(stripped)
            if method:
                api = ApiDoc(
                    name=f"{method.group('collection')}_"
                         f"{method.group('verb')}",
                    category="",
                )
                res.apis.append(api)
                section = ""
                continue
            if api is not None and stripped.startswith("kind:"):
                api.category = stripped.split(":", 1)[1].strip()
                continue
            if stripped == "Request fields:":
                section = "request"
                continue
            if stripped == "Semantics:":
                section = "semantics"
                continue
            if api is None:
                field_match = self._FIELD.search(stripped)
                if field_match:
                    type_name, enum_values, ref = self._decode_type(
                        field_match.group("type")
                    )
                    default_text = (field_match.group("default") or "").strip()
                    res.attributes.append(
                        AttributeDoc(
                            name=field_match.group("name"),
                            type=type_name,
                            enum_values=enum_values,
                            default=_decode_default(default_text or None),
                            ref=ref,
                        )
                    )
                continue
            if section == "request":
                request_match = self._REQUEST_FIELD.match(stripped)
                if request_match:
                    type_name, __, ref = self._decode_type(
                        request_match.group("type")
                    )
                    api.params.append(
                        ApiParam(
                            name=request_match.group("name"),
                            type=type_name,
                            required=request_match.group("req")
                            == "required",
                            ref=ref,
                        )
                    )
                continue
            if section == "semantics" and stripped.startswith("> "):
                behaviour = parse_rule(stripped[2:])
                if behaviour is not None:
                    api.rules.append(behaviour)
        if not res.name:
            raise WrangleError(f"page {page.number} has no REST Resource "
                               "heading")
        return res


def wrangle(pages: list[DocPage], provider: str, service: str = "") -> ServiceDoc:
    """Parse rendered pages with the provider-appropriate parser."""
    if provider == "aws":
        return AwsDocParser().parse(pages, service=service)
    if provider == "azure":
        return AzureDocParser().parse(pages, service=service)
    if provider == "gcp":
        return GcpDocParser().parse(pages, service=service)
    raise WrangleError(f"no documentation parser for provider {provider!r}")
