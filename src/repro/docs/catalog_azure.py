"""An Azure-flavoured documentation catalog for multi-cloud emulation (§5).

The paper replicates the workflow on Azure and reports that the main
extra effort is documentation wrangling — Azure scatters definitions
across per-resource web pages rather than one PDF.  This catalog models
Azure's networking core (virtual networks, subnets, public IPs, NICs,
NSGs, VMs) with Azure's own API naming (camelCase operations,
createOrUpdate verbs) and error vocabulary, rendered through
:mod:`repro.docs.render_azure` into the web-page layout.
"""

from __future__ import annotations

from .build import api, attr, param, resource
from .model import rule, ServiceDoc

NOTFOUND = "ResourceNotFound"

VM_SIZES = ("Standard_B1s", "Standard_B2s", "Standard_D2s_v3")


def _virtual_network() -> "resource":
    attrs = [
        attr("address_space"),
        attr("location"),
        attr("provisioning_state", "Enum", enum=("Updating", "Succeeded"),
             default="Updating"),
        attr("subnet_prefixes", "List"),
        attr("peerings", "List"),
    ]
    create = api(
        "createOrUpdateVirtualNetwork",
        "create",
        [param("address_space", required=True), param("location",
                                                      required=True)],
        [
            rule("require_param", param="address_space",
                 code="InvalidRequestFormat"),
            rule("require_param", param="location", code="InvalidRequestFormat"),
            rule("check_valid_cidr", param="address_space",
                 code="InvalidAddressPrefixFormat"),
            rule("set_attr_param", attr="address_space",
                 param="address_space"),
            rule("set_attr_param", attr="location", param="location"),
            rule("set_attr_const", attr="provisioning_state",
                 value="Succeeded"),
        ],
        desc="Creates or updates a virtual network in the specified "
             "resource group.",
    )
    delete = api(
        "deleteVirtualNetwork",
        "destroy",
        [param("virtual_network_id", required=True)],
        [
            rule("require_param", param="virtual_network_id",
                 code="InvalidRequestFormat"),
            rule("check_list_empty", attr="subnet_prefixes",
                 code="InUseSubnetCannotBeDeleted"),
        ],
        desc="Deletes the specified virtual network. The network must "
             "contain no subnets.",
    )
    get = api(
        "getVirtualNetwork",
        "describe",
        [param("virtual_network_id", required=True)],
        [rule("read_attr", attr="address_space"),
         rule("read_attr", attr="location"),
         rule("read_attr", attr="provisioning_state")],
        desc="Gets the specified virtual network.",
    )
    return resource(
        "virtual_network",
        attrs,
        [create, delete, get],
        desc="An isolated network in Azure, analogous to an AWS VPC.",
        notfound=NOTFOUND,
    )


def _subnet() -> "resource":
    attrs = [
        attr("address_prefix"),
        attr("virtual_network", "Reference", ref="virtual_network"),
        attr("provisioning_state", "Enum", enum=("Updating", "Succeeded"),
             default="Updating"),
        attr("ip_configurations", "List"),
    ]
    create = api(
        "createOrUpdateSubnet",
        "create",
        [
            param("virtual_network_id", "Reference", required=True,
                  ref="virtual_network"),
            param("address_prefix", required=True),
        ],
        [
            rule("require_param", param="virtual_network_id",
                 code="InvalidRequestFormat"),
            rule("require_param", param="address_prefix",
                 code="InvalidRequestFormat"),
            rule("check_valid_cidr", param="address_prefix",
                 code="InvalidAddressPrefixFormat"),
            rule("check_prefix_between", param="address_prefix", lo=8, hi=29,
                 code="InvalidAddressPrefixFormat"),
            rule("check_cidr_within", param="address_prefix",
                 ref="virtual_network_id", ref_attr="address_space",
                 code="SubnetNotInVnet"),
            rule("check_no_overlap", param="address_prefix",
                 ref="virtual_network_id", list_attr="subnet_prefixes",
                 code="NetcfgSubnetRangesOverlap"),
            rule("link_ref", attr="virtual_network",
                 param="virtual_network_id"),
            rule("set_attr_param", attr="address_prefix",
                 param="address_prefix"),
            rule("track_in_ref", param="virtual_network_id",
                 list_attr="subnet_prefixes", source="address_prefix"),
            rule("set_attr_const", attr="provisioning_state",
                 value="Succeeded"),
        ],
        desc="Creates or updates a subnet in the specified virtual network.",
    )
    delete = api(
        "deleteSubnet",
        "destroy",
        [param("subnet_id", required=True)],
        [
            rule("require_param", param="subnet_id",
                 code="InvalidRequestFormat"),
            rule("check_list_empty", attr="ip_configurations",
                 code="InUseSubnetCannotBeDeleted"),
            rule("untrack_in_attr", attr="virtual_network",
                 list_attr="subnet_prefixes", source="address_prefix"),
        ],
        desc="Deletes the specified subnet. All IP configurations must be "
             "removed first.",
    )
    get = api(
        "getSubnet",
        "describe",
        [param("subnet_id", required=True)],
        [rule("read_attr", attr="address_prefix"),
         rule("read_attr", attr="provisioning_state")],
        desc="Gets the specified subnet.",
    )
    return resource(
        "subnet",
        attrs,
        [create, delete, get],
        parent="virtual_network",
        desc="An address range within a virtual network.",
        notfound=NOTFOUND,
    )


def _public_ip_address() -> "resource":
    attrs = [
        attr("location"),
        attr("allocation_method", "Enum", enum=("Static", "Dynamic"),
             default="Dynamic"),
        attr("ip_address"),
        attr("ip_configuration", "Reference", ref="network_interface"),
    ]
    create = api(
        "createOrUpdatePublicIPAddress",
        "create",
        [param("location", required=True), param("allocation_method")],
        [
            rule("require_param", param="location",
                 code="InvalidRequestFormat"),
            rule("require_one_of", param="allocation_method",
                 values=("Static", "Dynamic"), code="InvalidRequestFormat"),
            rule("set_attr_param", attr="location", param="location"),
            rule("set_attr_param", attr="allocation_method",
                 param="allocation_method"),
            rule("set_attr_fresh", attr="ip_address"),
        ],
        desc="Creates or updates a public IP address resource.",
    )
    delete = api(
        "deletePublicIPAddress",
        "destroy",
        [param("public_ip_address_id", required=True)],
        [
            rule("require_param", param="public_ip_address_id",
                 code="InvalidRequestFormat"),
            rule("check_attr_unset", attr="ip_configuration",
                 code="PublicIPAddressCannotBeDeleted"),
        ],
        desc="Deletes the specified public IP address. The address must "
             "not be attached to an IP configuration.",
    )
    get = api(
        "getPublicIPAddress",
        "describe",
        [param("public_ip_address_id", required=True)],
        [rule("read_attr", attr="ip_address"),
         rule("read_attr", attr="allocation_method"),
         rule("read_attr", attr="ip_configuration")],
        desc="Gets the specified public IP address.",
    )
    return resource(
        "public_ip_address",
        attrs,
        [create, delete, get],
        desc="A public IP address assignable to a network interface.",
        notfound=NOTFOUND,
    )


def _network_interface() -> "resource":
    attrs = [
        attr("subnet", "Reference", ref="subnet"),
        attr("location"),
        attr("public_ip", "Reference", ref="public_ip_address"),
        attr("virtual_machine", "Reference", ref="virtual_machine"),
        attr("network_security_group", "Reference",
             ref="network_security_group"),
    ]
    create = api(
        "createOrUpdateNetworkInterface",
        "create",
        [
            param("subnet_id", "Reference", required=True, ref="subnet"),
            param("location", required=True),
        ],
        [
            rule("require_param", param="subnet_id",
                 code="InvalidRequestFormat"),
            rule("require_param", param="location",
                 code="InvalidRequestFormat"),
            rule("link_ref", attr="subnet", param="subnet_id"),
            rule("set_attr_param", attr="location", param="location"),
            rule("track_in_ref", param="subnet_id",
                 list_attr="ip_configurations", source="id"),
        ],
        desc="Creates or updates a network interface in a subnet.",
    )
    associate_ip = api(
        "associatePublicIPAddress",
        "modify",
        [
            param("network_interface_id", required=True),
            param("public_ip_address_id", "Reference", required=True,
                  ref="public_ip_address"),
        ],
        [
            rule("require_param", param="network_interface_id",
                 code="InvalidRequestFormat"),
            rule("require_param", param="public_ip_address_id",
                 code="InvalidRequestFormat"),
            rule("check_attr_unset", attr="public_ip",
                 code="PublicIPAddressInUse"),
            rule("check_attr_matches_ref", attr="location",
                 ref="public_ip_address_id", ref_attr="location",
                 code="LocationMismatch"),
            rule("link_ref", attr="public_ip", param="public_ip_address_id"),
            rule("call_ref", param="public_ip_address_id",
                 transition="attachIPConfiguration"),
        ],
        desc="Associates a public IP address with the network interface. "
             "Both resources must be in the same location.",
    )
    dissociate_ip = api(
        "dissociatePublicIPAddress",
        "modify",
        [param("network_interface_id", required=True)],
        [
            rule("require_param", param="network_interface_id",
                 code="InvalidRequestFormat"),
            rule("check_attr_set", attr="public_ip",
                 code="PublicIPAddressNotAssociated"),
            rule("call_attr", attr="public_ip",
                 transition="detachIPConfiguration"),
            rule("clear_attr", attr="public_ip"),
        ],
        desc="Removes the public IP association from the network interface.",
    )
    delete = api(
        "deleteNetworkInterface",
        "destroy",
        [param("network_interface_id", required=True)],
        [
            rule("require_param", param="network_interface_id",
                 code="InvalidRequestFormat"),
            rule("check_attr_unset", attr="virtual_machine",
                 code="NicInUse"),
            rule("check_attr_unset", attr="public_ip",
                 code="PublicIPAddressInUse"),
            rule("untrack_in_attr", attr="subnet",
                 list_attr="ip_configurations", source="id"),
        ],
        desc="Deletes the specified network interface. It must be detached "
             "from any virtual machine and public IP first.",
    )
    get = api(
        "getNetworkInterface",
        "describe",
        [param("network_interface_id", required=True)],
        [rule("read_attr", attr="location"),
         rule("read_attr", attr="public_ip"),
         rule("read_attr", attr="virtual_machine")],
        desc="Gets the specified network interface.",
    )
    return resource(
        "network_interface",
        attrs,
        [create, associate_ip, dissociate_ip, delete, get],
        parent="subnet",
        desc="A network interface card usable by a virtual machine.",
        notfound=NOTFOUND,
    )


def _network_security_group() -> "resource":
    attrs = [
        attr("location"),
        attr("security_rules", "List"),
    ]
    create = api(
        "createOrUpdateNetworkSecurityGroup",
        "create",
        [param("location", required=True)],
        [
            rule("require_param", param="location",
                 code="InvalidRequestFormat"),
            rule("set_attr_param", attr="location", param="location"),
        ],
        desc="Creates or updates a network security group.",
    )
    add_rule = api(
        "createSecurityRule",
        "modify",
        [
            param("network_security_group_id", required=True),
            param("rule_name", required=True),
        ],
        [
            rule("require_param", param="network_security_group_id",
                 code="InvalidRequestFormat"),
            rule("require_param", param="rule_name",
                 code="InvalidRequestFormat"),
            rule("check_not_in_list", param="rule_name",
                 attr="security_rules", code="SecurityRuleAlreadyExists"),
            rule("append_to_attr", attr="security_rules", param="rule_name"),
        ],
        desc="Adds a security rule to the network security group.",
    )
    remove_rule = api(
        "deleteSecurityRule",
        "modify",
        [
            param("network_security_group_id", required=True),
            param("rule_name", required=True),
        ],
        [
            rule("require_param", param="network_security_group_id",
                 code="InvalidRequestFormat"),
            rule("require_param", param="rule_name",
                 code="InvalidRequestFormat"),
            rule("check_in_list", param="rule_name", attr="security_rules",
                 code="SecurityRuleNotFound"),
            rule("remove_from_attr", attr="security_rules",
                 param="rule_name"),
        ],
        desc="Removes a security rule from the network security group.",
    )
    delete = api(
        "deleteNetworkSecurityGroup",
        "destroy",
        [param("network_security_group_id", required=True)],
        [
            rule("require_param", param="network_security_group_id",
                 code="InvalidRequestFormat"),
        ],
        desc="Deletes the specified network security group.",
    )
    get = api(
        "getNetworkSecurityGroup",
        "describe",
        [param("network_security_group_id", required=True)],
        [rule("read_attr", attr="security_rules"),
         rule("read_attr", attr="location")],
        desc="Gets the specified network security group.",
    )
    return resource(
        "network_security_group",
        attrs,
        [create, add_rule, remove_rule, delete, get],
        desc="A set of security rules filtering network traffic.",
        notfound=NOTFOUND,
    )


def _virtual_machine() -> "resource":
    attrs = [
        attr("vm_size", "Enum", enum=VM_SIZES, default="Standard_B1s"),
        attr("location"),
        attr("power_state", "Enum",
             enum=("starting", "running", "deallocating", "deallocated"),
             default="starting"),
        attr("network_interface", "Reference", ref="network_interface"),
    ]
    create = api(
        "createOrUpdateVirtualMachine",
        "create",
        [
            param("network_interface_id", "Reference", required=True,
                  ref="network_interface"),
            param("vm_size", required=True),
            param("location", required=True),
        ],
        [
            rule("require_param", param="network_interface_id",
                 code="InvalidRequestFormat"),
            rule("require_param", param="vm_size", code="InvalidRequestFormat"),
            rule("require_param", param="location",
                 code="InvalidRequestFormat"),
            rule("require_one_of", param="vm_size", values=VM_SIZES,
                 code="InvalidParameter"),
            rule("link_ref", attr="network_interface",
                 param="network_interface_id"),
            rule("call_ref", param="network_interface_id",
                 transition="attachVirtualMachine"),
            rule("set_attr_param", attr="vm_size", param="vm_size"),
            rule("set_attr_param", attr="location", param="location"),
            rule("set_attr_const", attr="power_state", value="running"),
        ],
        desc="Creates or updates a virtual machine using an existing "
             "network interface.",
    )
    start = api(
        "startVirtualMachine",
        "modify",
        [param("virtual_machine_id", required=True)],
        [
            rule("require_param", param="virtual_machine_id",
                 code="InvalidRequestFormat"),
            rule("check_attr_is", attr="power_state", value="deallocated",
                 code="OperationNotAllowed"),
            rule("set_attr_const", attr="power_state", value="running"),
        ],
        desc="Starts a deallocated virtual machine.",
    )
    deallocate = api(
        "deallocateVirtualMachine",
        "modify",
        [param("virtual_machine_id", required=True)],
        [
            rule("require_param", param="virtual_machine_id",
                 code="InvalidRequestFormat"),
            rule("check_attr_is", attr="power_state", value="running",
                 code="OperationNotAllowed"),
            rule("set_attr_const", attr="power_state", value="deallocated"),
        ],
        desc="Shuts down the virtual machine and releases its compute "
             "resources.",
    )
    resize = api(
        "resizeVirtualMachine",
        "modify",
        [param("virtual_machine_id", required=True), param("vm_size",
                                                           required=True)],
        [
            rule("require_param", param="virtual_machine_id",
                 code="InvalidRequestFormat"),
            rule("require_param", param="vm_size", code="InvalidRequestFormat"),
            rule("require_one_of", param="vm_size", values=VM_SIZES,
                 code="InvalidParameter"),
            rule("check_attr_is", attr="power_state", value="deallocated",
                 code="OperationNotAllowed"),
            rule("set_attr_param", attr="vm_size", param="vm_size"),
        ],
        desc="Changes the size of a deallocated virtual machine.",
    )
    delete = api(
        "deleteVirtualMachine",
        "destroy",
        [param("virtual_machine_id", required=True)],
        [
            rule("require_param", param="virtual_machine_id",
                 code="InvalidRequestFormat"),
            rule("check_attr_is", attr="power_state", value="deallocated",
                 code="OperationNotAllowed"),
            rule("call_attr", attr="network_interface",
                 transition="detachVirtualMachine"),
        ],
        desc="Deletes the specified virtual machine. The machine must be "
             "deallocated first.",
    )
    get = api(
        "getVirtualMachine",
        "describe",
        [param("virtual_machine_id", required=True)],
        [rule("read_attr", attr="power_state"),
         rule("read_attr", attr="vm_size"),
         rule("read_attr", attr="location")],
        desc="Gets the specified virtual machine.",
    )
    return resource(
        "virtual_machine",
        attrs,
        [create, start, deallocate, resize, delete, get],
        desc="A compute instance in Azure.",
        notfound=NOTFOUND,
    )


def _helper_transitions() -> list["resource"]:
    """Reverse-direction operations documented on the target resources.

    Azure's docs describe IP-configuration attachment from both sides;
    we document the receiving side's operations so cross-resource calls
    resolve (the specification-linking step patches these together).
    """
    ip_attach = api(
        "attachIPConfiguration",
        "modify",
        [param("nic_ref", "Reference", ref="network_interface")],
        [rule("link_ref", attr="ip_configuration", param="nic_ref")],
        desc="Records the owning IP configuration on the public IP address.",
    )
    ip_detach = api(
        "detachIPConfiguration",
        "modify",
        [],
        [rule("clear_attr", attr="ip_configuration")],
        desc="Clears the owning IP configuration of the public IP address.",
    )
    nic_attach = api(
        "attachVirtualMachine",
        "modify",
        [param("vm_ref", "Reference", ref="virtual_machine")],
        [rule("link_ref", attr="virtual_machine", param="vm_ref")],
        desc="Records the attached virtual machine on the network interface.",
    )
    nic_detach = api(
        "detachVirtualMachine",
        "modify",
        [],
        [rule("clear_attr", attr="virtual_machine")],
        desc="Clears the attached virtual machine of the network interface.",
    )
    return [(ip_attach, ip_detach), (nic_attach, nic_detach)]


def build_azure_catalog() -> ServiceDoc:
    """The Azure networking/compute catalog used for multi-cloud emulation."""
    resources = [
        _virtual_network(),
        _subnet(),
        _public_ip_address(),
        _network_interface(),
        _network_security_group(),
        _virtual_machine(),
    ]
    (ip_attach, ip_detach), (nic_attach, nic_detach) = _helper_transitions()
    for res in resources:
        if res.name == "public_ip_address":
            res.apis.extend([ip_attach, ip_detach])
        if res.name == "network_interface":
            res.apis.extend([nic_attach, nic_detach])
    return ServiceDoc(
        name="azure_network",
        provider="azure",
        resources=resources,
        description="Azure Virtual Network and Compute REST reference.",
    )
