"""The DynamoDB documentation catalog: 7 resources, 57 APIs (Table 1).

DynamoDB's error convention differs from EC2's: resources are addressed
by name and missing resources raise ``ResourceNotFoundException``
rather than ``Invalid*ID.NotFound``.  The catalog carries this as the
per-resource not-found code, which extraction passes to the emulator —
one of the provider-specific behaviours the paper's approach has to
learn rather than hard-code.
"""

from __future__ import annotations

from .build import (
    api,
    attr,
    make_create,
    make_delete,
    make_describe,
    make_list,
    make_modify,
    param,
    resource,
)
from .model import rule, ServiceDoc

NOTFOUND = "ResourceNotFoundException"

BILLING_MODES = ("PROVISIONED", "PAY_PER_REQUEST")


def _table() -> "resource":
    attrs = [
        attr("table_name"),
        attr("billing_mode", "Enum", enum=BILLING_MODES,
             default="PROVISIONED"),
        attr("read_capacity", "Integer", default=5),
        attr("write_capacity", "Integer", default=5),
        attr("status", "Enum", enum=("CREATING", "ACTIVE", "DELETING"),
             default="CREATING"),
        attr("items", "Map"),
        attr("ttl_enabled", "Boolean", default=False),
        attr("pitr_enabled", "Boolean", default=False),
        attr("stream_enabled", "Boolean", default=False),
        attr("deletion_protection", "Boolean", default=False),
        attr("tags", "Map"),
        attr("insights_enabled", "Boolean", default=False),
        attr("replica_auto_scaling", "Boolean", default=False),
    ]
    create = make_create(
        "table",
        "CreateTable",
        [
            param("table_name", required=True),
            param("billing_mode"),
            param("read_capacity", "Integer"),
            param("write_capacity", "Integer"),
        ],
        attrs,
        extra_rules=[
            rule("require_one_of", param="billing_mode",
                 values=BILLING_MODES, code="ValidationException"),
            rule("set_attr_const", attr="status", value="ACTIVE"),
        ],
        desc="Creates a new table in your account.",
    )
    delete = make_delete(
        "table",
        "DeleteTable",
        guard_rules=[
            rule("check_attr_is", attr="deletion_protection", value=False,
                 code="ValidationException"),
            rule("check_attr_is", attr="status", value="ACTIVE",
                 code="ResourceInUseException"),
        ],
        desc="Deletes the specified table. Deletion protection must be "
             "disabled.",
    )
    update = api(
        "UpdateTable",
        "modify",
        [
            param("table_id", required=True),
            param("billing_mode"),
            param("read_capacity", "Integer"),
            param("write_capacity", "Integer"),
            param("deletion_protection", "Boolean"),
        ],
        [
            rule("require_param", param="table_id", code="MissingParameter"),
            rule("require_one_of", param="billing_mode",
                 values=BILLING_MODES, code="ValidationException"),
            rule("set_attr_param", attr="billing_mode", param="billing_mode"),
            rule("set_attr_param", attr="read_capacity",
                 param="read_capacity"),
            rule("set_attr_param", attr="write_capacity",
                 param="write_capacity"),
            rule("set_attr_param", attr="deletion_protection",
                 param="deletion_protection"),
        ],
        desc="Modifies the provisioned throughput or billing settings of a "
             "table.",
    )
    describe = make_describe("table", "DescribeTable", attrs)
    listing = make_list("table", "ListTables")

    put_item = api(
        "PutItem", "modify",
        [param("table_id", required=True), param("item_key", required=True),
         param("item_value")],
        [
            rule("require_param", param="table_id", code="MissingParameter"),
            rule("require_param", param="item_key", code="MissingParameter"),
            rule("check_attr_is", attr="status", value="ACTIVE",
                 code="ResourceNotFoundException"),
            rule("map_put", attr="items", key_param="item_key",
                 value_param="item_value"),
        ],
        desc="Creates or replaces an item in the table.",
    )
    get_item = api(
        "GetItem", "describe",
        [param("table_id", required=True), param("item_key", required=True)],
        [rule("map_read", attr="items", key_param="item_key")],
        desc="Returns the attributes of the item with the given key.",
    )
    update_item = api(
        "UpdateItem", "modify",
        [param("table_id", required=True), param("item_key", required=True),
         param("item_value")],
        [
            rule("require_param", param="table_id", code="MissingParameter"),
            rule("require_param", param="item_key", code="MissingParameter"),
            rule("check_in_map", attr="items", key_param="item_key",
                 code="ConditionalCheckFailedException"),
            rule("map_put", attr="items", key_param="item_key",
                 value_param="item_value"),
        ],
        desc="Edits an existing item's attributes.",
    )
    delete_item = api(
        "DeleteItem", "modify",
        [param("table_id", required=True), param("item_key", required=True)],
        [
            rule("require_param", param="table_id", code="MissingParameter"),
            rule("require_param", param="item_key", code="MissingParameter"),
            rule("check_in_map", attr="items", key_param="item_key",
                 code="ConditionalCheckFailedException"),
            rule("map_remove", attr="items", key_param="item_key"),
        ],
        desc="Deletes a single item by primary key.",
    )
    query = api(
        "Query", "describe",
        [param("table_id", required=True)],
        [rule("read_attr", attr="items")],
        desc="Finds items based on primary key values.",
    )
    scan = api(
        "Scan", "describe",
        [param("table_id", required=True)],
        [rule("read_attr", attr="items")],
        desc="Returns every item in the table.",
    )
    batch_get = api(
        "BatchGetItem", "describe",
        [param("table_id", required=True)],
        [rule("read_attr", attr="items")],
        desc="Returns the attributes of multiple items.",
    )
    batch_write = api(
        "BatchWriteItem", "modify",
        [param("table_id", required=True), param("item_key", required=True),
         param("item_value")],
        [
            rule("require_param", param="table_id", code="MissingParameter"),
            rule("require_param", param="item_key", code="MissingParameter"),
            rule("map_put", attr="items", key_param="item_key",
                 value_param="item_value"),
        ],
        desc="Puts or deletes multiple items in one call.",
    )
    transact_get = api(
        "TransactGetItems", "describe",
        [param("table_id", required=True)],
        [rule("read_attr", attr="items")],
        desc="Atomically retrieves multiple items.",
    )
    transact_write = api(
        "TransactWriteItems", "modify",
        [param("table_id", required=True), param("item_key", required=True),
         param("item_value")],
        [
            rule("require_param", param="table_id", code="MissingParameter"),
            rule("require_param", param="item_key", code="MissingParameter"),
            rule("check_attr_is", attr="status", value="ACTIVE",
                 code="ResourceNotFoundException"),
            rule("map_put", attr="items", key_param="item_key",
                 value_param="item_value"),
        ],
        desc="Atomically writes multiple items.",
    )
    execute_statement = api(
        "ExecuteStatement", "describe",
        [param("table_id", required=True)],
        [rule("read_attr", attr="items")],
        desc="Runs a PartiQL statement against the table.",
    )
    batch_execute = api(
        "BatchExecuteStatement", "describe",
        [param("table_id", required=True)],
        [rule("read_attr", attr="items")],
        desc="Runs multiple PartiQL statements.",
    )
    execute_transaction = api(
        "ExecuteTransaction", "describe",
        [param("table_id", required=True)],
        [rule("read_attr", attr="items")],
        desc="Runs multiple PartiQL statements atomically.",
    )
    describe_ttl = api(
        "DescribeTimeToLive", "describe",
        [param("table_id", required=True)],
        [rule("read_attr", attr="ttl_enabled")],
        desc="Returns the table's time-to-live settings.",
    )
    update_ttl = make_modify(
        "table", "UpdateTimeToLive", "ttl_enabled", param_type="Boolean",
        desc="Enables or disables time-to-live for the table.",
    )
    describe_backups = api(
        "DescribeContinuousBackups", "describe",
        [param("table_id", required=True)],
        [rule("read_attr", attr="pitr_enabled")],
        desc="Returns the continuous backup and point-in-time recovery "
             "status.",
    )
    update_backups = make_modify(
        "table", "UpdateContinuousBackups", "pitr_enabled",
        param_type="Boolean",
        desc="Enables or disables point-in-time recovery.",
    )
    tag_resource = api(
        "TagResource", "modify",
        [param("table_id", required=True), param("tag_key", required=True),
         param("tag_value")],
        [
            rule("require_param", param="table_id", code="MissingParameter"),
            rule("require_param", param="tag_key", code="MissingParameter"),
            rule("map_put", attr="tags", key_param="tag_key",
                 value_param="tag_value"),
        ],
        desc="Adds a tag to the table.",
    )
    untag_resource = api(
        "UntagResource", "modify",
        [param("table_id", required=True), param("tag_key", required=True)],
        [
            rule("require_param", param="table_id", code="MissingParameter"),
            rule("require_param", param="tag_key", code="MissingParameter"),
            rule("check_in_map", attr="tags", key_param="tag_key",
                 code="ResourceNotFoundException"),
            rule("map_remove", attr="tags", key_param="tag_key"),
        ],
        desc="Removes a tag from the table.",
    )
    list_tags = api(
        "ListTagsOfResource", "describe",
        [param("table_id", required=True)],
        [rule("read_attr", attr="tags")],
        desc="Lists the tags on the table.",
    )
    enable_kinesis = make_modify(
        "table", "EnableKinesisStreamingDestination", "stream_enabled",
        param_type="Boolean",
        desc="Starts streaming table changes to a Kinesis data stream.",
    )
    disable_kinesis = api(
        "DisableKinesisStreamingDestination", "modify",
        [param("table_id", required=True)],
        [
            rule("require_param", param="table_id", code="MissingParameter"),
            rule("check_attr_is", attr="stream_enabled", value=True,
                 code="ValidationException"),
            rule("set_attr_const", attr="stream_enabled", value=False),
        ],
        desc="Stops streaming table changes to Kinesis.",
    )
    describe_kinesis = api(
        "DescribeKinesisStreamingDestination", "describe",
        [param("table_id", required=True)],
        [rule("read_attr", attr="stream_enabled")],
        desc="Returns the Kinesis streaming status of the table.",
    )
    describe_autoscaling = api(
        "DescribeTableReplicaAutoScaling", "describe",
        [param("table_id", required=True)],
        [rule("read_attr", attr="replica_auto_scaling")],
        desc="Describes the auto-scaling settings of the table's replicas.",
    )
    update_autoscaling = make_modify(
        "table", "UpdateTableReplicaAutoScaling", "replica_auto_scaling",
        param_type="Boolean",
        desc="Updates the auto-scaling settings of the table's replicas.",
    )
    return resource(
        "table",
        attrs,
        [create, delete, update, describe, listing, put_item, get_item,
         update_item, delete_item, query, scan, batch_get, batch_write,
         transact_get, transact_write, execute_statement, batch_execute,
         execute_transaction, describe_ttl, update_ttl, describe_backups,
         update_backups, tag_resource, untag_resource, list_tags,
         enable_kinesis, disable_kinesis, describe_kinesis,
         describe_autoscaling, update_autoscaling],
        desc="A DynamoDB table: a collection of items addressed by key.",
        notfound=NOTFOUND,
    )


def _backup() -> "resource":
    attrs = [
        attr("backup_name"),
        attr("table", "Reference", ref="table"),
        attr("status", "Enum", enum=("CREATING", "AVAILABLE", "DELETED"),
             default="CREATING"),
    ]
    create = make_create(
        "backup",
        "CreateBackup",
        [
            param("table_id", "Reference", required=True, ref="table"),
            param("backup_name", required=True),
        ],
        attrs,
        extra_rules=[
            rule("check_ref_attr_is", ref="table_id", ref_attr="status",
                 value="ACTIVE", code="TableNotFoundException"),
            rule("link_ref", attr="table", param="table_id"),
            rule("set_attr_const", attr="status", value="AVAILABLE"),
        ],
        desc="Creates an on-demand backup of the specified table.",
    )
    delete = make_delete(
        "backup",
        "DeleteBackup",
        guard_rules=[
            rule("check_attr_is", attr="status", value="AVAILABLE",
                 code="BackupInUseException"),
        ],
        desc="Deletes the specified backup.",
    )
    describe = make_describe("backup", "DescribeBackup", attrs)
    listing = make_list("backup", "ListBackups")
    restore = api(
        "RestoreTableFromBackup", "modify",
        [param("backup_id", required=True)],
        [
            rule("require_param", param="backup_id", code="MissingParameter"),
            rule("check_attr_is", attr="status", value="AVAILABLE",
                 code="BackupInUseException"),
        ],
        desc="Creates a new table from an existing backup.",
    )
    restore_pitr = api(
        "RestoreTableToPointInTime", "modify",
        [param("backup_id", required=True)],
        [
            rule("require_param", param="backup_id", code="MissingParameter"),
            rule("check_attr_is", attr="status", value="AVAILABLE",
                 code="BackupInUseException"),
        ],
        desc="Restores a table to a point in time.",
    )
    return resource(
        "backup",
        attrs,
        [create, delete, describe, listing, restore, restore_pitr],
        parent="table",
        desc="An on-demand backup of a table.",
        notfound="BackupNotFoundException",
    )


def _global_table() -> "resource":
    attrs = [
        attr("global_table_name"),
        attr("regions", "List"),
        attr("status", "Enum", enum=("CREATING", "ACTIVE"),
             default="CREATING"),
        attr("auto_scaling", "Boolean", default=False),
    ]
    create = make_create(
        "global_table",
        "CreateGlobalTable",
        [param("global_table_name", required=True), param("region")],
        attrs,
        extra_rules=[
            rule("set_attr_const", attr="status", value="ACTIVE"),
            rule("append_to_attr", attr="regions", param="region"),
        ],
        desc="Creates a global table from existing replica tables.",
    )
    delete = make_delete("global_table", "DeleteGlobalTable",
                         desc="Deletes the specified global table.")
    describe = make_describe("global_table", "DescribeGlobalTable", attrs)
    listing = make_list("global_table", "ListGlobalTables")
    update = api(
        "UpdateGlobalTable", "modify",
        [param("global_table_id", required=True),
         param("region", required=True)],
        [
            rule("require_param", param="global_table_id",
                 code="MissingParameter"),
            rule("require_param", param="region", code="MissingParameter"),
            rule("check_not_in_list", param="region", attr="regions",
                 code="ReplicaAlreadyExistsException"),
            rule("append_to_attr", attr="regions", param="region"),
        ],
        desc="Adds a replica in a new region to the global table.",
    )
    describe_settings = api(
        "DescribeGlobalTableSettings", "describe",
        [param("global_table_id", required=True)],
        [rule("read_attr", attr="regions"),
         rule("read_attr", attr="auto_scaling")],
        desc="Describes the region-specific settings of a global table.",
    )
    update_settings = make_modify(
        "global_table", "UpdateGlobalTableSettings", "auto_scaling",
        param_type="Boolean",
        desc="Updates the settings of a global table.",
    )
    return resource(
        "global_table",
        attrs,
        [create, delete, describe, listing, update, describe_settings,
         update_settings],
        desc="A multi-region, multi-active replicated table.",
        notfound="GlobalTableNotFoundException",
    )


def _export_task() -> "resource":
    attrs = [
        attr("table", "Reference", ref="table"),
        attr("s3_bucket"),
        attr("status", "Enum", enum=("IN_PROGRESS", "COMPLETED", "CANCELLED"),
             default="IN_PROGRESS"),
    ]
    export = make_create(
        "export_task",
        "ExportTableToPointInTime",
        [
            param("table_id", "Reference", required=True, ref="table"),
            param("s3_bucket", required=True),
        ],
        attrs,
        extra_rules=[
            rule("check_ref_attr_is", ref="table_id", ref_attr="pitr_enabled",
                 value=True, code="PointInTimeRecoveryUnavailableException"),
            rule("link_ref", attr="table", param="table_id"),
            rule("set_attr_const", attr="status", value="COMPLETED"),
        ],
        desc="Exports table data to an S3 bucket. Point-in-time recovery "
             "must be enabled on the table.",
    )
    describe = make_describe("export_task", "DescribeExport", attrs)
    listing = make_list("export_task", "ListExports")
    cancel = api(
        "CancelExportTask", "modify",
        [param("export_task_id", required=True)],
        [
            rule("require_param", param="export_task_id",
                 code="MissingParameter"),
            rule("check_attr_is", attr="status", value="IN_PROGRESS",
                 code="ExportConflictException"),
            rule("set_attr_const", attr="status", value="CANCELLED"),
        ],
        desc="Cancels an in-progress export.",
    )
    return resource(
        "export_task",
        attrs,
        [export, describe, listing, cancel],
        parent="table",
        desc="An export of table data to S3.",
        notfound="ExportNotFoundException",
    )


def _import_task() -> "resource":
    attrs = [
        attr("s3_bucket"),
        attr("target_table_name"),
        attr("status", "Enum", enum=("IN_PROGRESS", "COMPLETED", "CANCELLED"),
             default="IN_PROGRESS"),
    ]
    start = make_create(
        "import_task",
        "ImportTable",
        [param("s3_bucket", required=True),
         param("target_table_name", required=True)],
        attrs,
        extra_rules=[rule("set_attr_const", attr="status", value="COMPLETED")],
        desc="Imports table data from an S3 bucket into a new table.",
    )
    describe = make_describe("import_task", "DescribeImport", attrs)
    listing = make_list("import_task", "ListImports")
    cancel = api(
        "CancelImportTask", "modify",
        [param("import_task_id", required=True)],
        [
            rule("require_param", param="import_task_id",
                 code="MissingParameter"),
            rule("check_attr_is", attr="status", value="IN_PROGRESS",
                 code="ImportConflictException"),
            rule("set_attr_const", attr="status", value="CANCELLED"),
        ],
        desc="Cancels an in-progress import.",
    )
    return resource(
        "import_task",
        attrs,
        [start, describe, listing, cancel],
        desc="An import of S3 data into a new table.",
        notfound="ImportNotFoundException",
    )


def _resource_policy() -> "resource":
    attrs = [
        attr("table", "Reference", ref="table"),
        attr("policy_document"),
    ]
    put = make_create(
        "resource_policy",
        "PutResourcePolicy",
        [
            param("table_id", "Reference", required=True, ref="table"),
            param("policy_document", required=True),
        ],
        attrs,
        extra_rules=[rule("link_ref", attr="table", param="table_id")],
        desc="Attaches a resource-based policy to a table.",
    )
    get = make_describe("resource_policy", "GetResourcePolicy", attrs)
    delete = make_delete("resource_policy", "DeleteResourcePolicy",
                         desc="Deletes the resource-based policy of a table.")
    return resource(
        "resource_policy",
        attrs,
        [put, get, delete],
        parent="table",
        desc="A resource-based IAM policy attached to a table.",
        notfound="PolicyNotFoundException",
    )


def _contributor_insights() -> "resource":
    attrs = [
        attr("table", "Reference", ref="table"),
        attr("status", "Enum", enum=("ENABLED", "DISABLED"),
             default="DISABLED"),
    ]
    update = make_create(
        "contributor_insights",
        "UpdateContributorInsights",
        [param("table_id", "Reference", required=True, ref="table")],
        attrs,
        extra_rules=[
            rule("link_ref", attr="table", param="table_id"),
            rule("set_attr_const", attr="status", value="ENABLED"),
        ],
        desc="Enables CloudWatch Contributor Insights for a table.",
    )
    describe = make_describe("contributor_insights",
                             "DescribeContributorInsights", attrs)
    listing = make_list("contributor_insights", "ListContributorInsights")
    return resource(
        "contributor_insights",
        attrs,
        [update, describe, listing],
        parent="table",
        desc="Contributor Insights configuration for a table.",
        notfound=NOTFOUND,
    )


def build_ddb_catalog() -> ServiceDoc:
    """The full DynamoDB catalog: 7 resources, 57 APIs."""
    return ServiceDoc(
        name="dynamodb",
        provider="aws",
        resources=[
            _table(),
            _backup(),
            _global_table(),
            _export_task(),
            _import_task(),
            _resource_policy(),
            _contributor_insights(),
        ],
        description="Amazon DynamoDB: a serverless key-value database.",
    )
