"""Prose rendering and parsing of behaviour rules.

Cloud docs describe behaviour in stylized natural language.  Each rule
kind has one sentence template here; the renderer produces the sentence
and the parser recovers the rule from it with an auto-derived regex.
The corpus renderers emit these sentences into pages, and the wrangler
and simulated LLM must parse them back out of surrounding page
structure — so documentation really is the only channel between the
catalog and the synthesizer, as in the paper's workflow (Fig. 2).
"""

from __future__ import annotations

import re

from .model import Rule, rule

#: Sentence template per rule kind.  Attribute and parameter names are
#: backtick-quoted, the way API references typeset identifiers.
TEMPLATES: dict[str, str] = {
    "set_attr_param": (
        "Sets the `{attr}` attribute to the value of the `{param}` "
        "request parameter."
    ),
    "set_attr_const": "Sets the `{attr}` attribute to `{value}`.",
    "set_attr_fresh": (
        "Assigns a freshly generated identifier to the `{attr}` attribute."
    ),
    "clear_attr": "Clears the `{attr}` attribute.",
    "append_to_attr": "Appends the value of `{param}` to the `{attr}` list.",
    "remove_from_attr": "Removes the value of `{param}` from the `{attr}` list.",
    "map_put": (
        "Stores the value of `{value_param}` under the key given by "
        "`{key_param}` in the `{attr}` map."
    ),
    "map_remove": (
        "Removes the entry keyed by `{key_param}` from the `{attr}` map."
    ),
    "map_read": (
        "Returns the entry of the `{attr}` map keyed by `{key_param}` in "
        "the response."
    ),
    "read_attr": "Returns the `{attr}` attribute in the response.",
    "link_ref": (
        "Stores a reference to the resource identified by `{param}` in "
        "the `{attr}` attribute."
    ),
    "call_ref": (
        "Notifies the resource identified by `{param}` by triggering its "
        "{transition} operation."
    ),
    "call_attr": (
        "Notifies the resource referenced by the `{attr}` attribute by "
        "triggering its {transition} operation."
    ),
    "track_in_ref": (
        "Records the value of `{source}` in the `{list_attr}` list of the "
        "resource identified by `{param}`."
    ),
    "untrack_in_attr": (
        "Removes the value of `{source}` from the `{list_attr}` list of "
        "the resource referenced by the `{attr}` attribute."
    ),
    "require_param": (
        "Fails with the error code {code} if the `{param}` request "
        "parameter is missing."
    ),
    "require_one_of": (
        "Fails with the error code {code} unless the `{param}` request "
        "parameter is one of: {values}."
    ),
    "check_valid_cidr": (
        "Fails with the error code {code} if the `{param}` request "
        "parameter is not a valid IPv4 CIDR block."
    ),
    "check_prefix_between": (
        "Fails with the error code {code} if the netmask prefix length of "
        "`{param}` is smaller than /{lo} or larger than /{hi}."
    ),
    "check_cidr_within": (
        "Fails with the error code {code} if the CIDR block in `{param}` "
        "does not lie within the `{ref_attr}` of the resource identified "
        "by `{ref}`."
    ),
    "check_no_overlap": (
        "Fails with the error code {code} if the CIDR block in `{param}` "
        "overlaps an entry in the `{list_attr}` list of the resource "
        "identified by `{ref}`."
    ),
    "check_attr_is": (
        "Fails with the error code {code} unless the `{attr}` attribute "
        "is `{value}`."
    ),
    "check_attr_is_not": (
        "Fails with the error code {code} if the `{attr}` attribute is "
        "`{value}`."
    ),
    "check_attr_set": (
        "Fails with the error code {code} unless the `{attr}` attribute "
        "is set."
    ),
    "check_attr_unset": (
        "Fails with the error code {code} while the `{attr}` attribute is "
        "still set."
    ),
    "check_list_empty": (
        "Fails with the error code {code} while the `{attr}` list is not "
        "empty."
    ),
    "check_attr_matches_ref": (
        "Fails with the error code {code} unless the `{attr}` attribute "
        "equals the `{ref_attr}` attribute of the resource identified by "
        "`{ref}`."
    ),
    "check_ref_attr_is": (
        "Fails with the error code {code} unless the `{ref_attr}` "
        "attribute of the resource identified by `{ref}` is `{value}`."
    ),
    "check_in_list": (
        "Fails with the error code {code} unless the value of `{param}` "
        "is present in the `{attr}` list."
    ),
    "check_not_in_list": (
        "Fails with the error code {code} if the value of `{param}` is "
        "already present in the `{attr}` list."
    ),
    "check_in_map": (
        "Fails with the error code {code} unless the `{attr}` map contains "
        "an entry keyed by `{key_param}`."
    ),
    "check_param_implies_attr": (
        "If the `{param}` request parameter is `{value}`, fails with the "
        "error code {code} unless the `{attr}` attribute is `{attr_value}`."
    ),
}

#: Regex fragment per template field.
_FIELD_PATTERNS = {
    "attr": r"(?P<attr>[A-Za-z_][A-Za-z0-9_]*)",
    "param": r"(?P<param>[A-Za-z_][A-Za-z0-9_]*)",
    "source": r"(?P<source>[A-Za-z_][A-Za-z0-9_]*)",
    "list_attr": r"(?P<list_attr>[A-Za-z_][A-Za-z0-9_]*)",
    "ref": r"(?P<ref>[A-Za-z_][A-Za-z0-9_]*)",
    "ref_attr": r"(?P<ref_attr>[A-Za-z_][A-Za-z0-9_]*)",
    "transition": r"(?P<transition>[A-Za-z][A-Za-z0-9_]*)",
    "key_param": r"(?P<key_param>[A-Za-z_][A-Za-z0-9_]*)",
    "value_param": r"(?P<value_param>[A-Za-z_][A-Za-z0-9_]*)",
    "code": r"(?P<code>[A-Za-z][A-Za-z0-9._]*)",
    "value": r"(?P<value>[^`]+)",
    "attr_value": r"(?P<attr_value>[^`]+)",
    "values": r"(?P<values>'[^']*'(?:, '[^']*')*)",
    "lo": r"(?P<lo>\d+)",
    "hi": r"(?P<hi>\d+)",
}

_PLACEHOLDER = re.compile(r"\{(\w+)\}")


def _compile(template: str) -> re.Pattern[str]:
    pattern = ""
    position = 0
    for match in _PLACEHOLDER.finditer(template):
        pattern += re.escape(template[position : match.start()])
        pattern += _FIELD_PATTERNS[match.group(1)]
        position = match.end()
    pattern += re.escape(template[position:])
    return re.compile("^" + pattern + "$")


_COMPILED: list[tuple[str, re.Pattern[str]]] = [
    (kind, _compile(template)) for kind, template in TEMPLATES.items()
]


def _encode_value(value: object) -> str:
    if isinstance(value, bool):
        return "true" if value else "false"
    if value is None:
        return "null"
    return str(value)


def _decode_value(text: str) -> object:
    stripped = text.strip()
    if stripped == "true":
        return True
    if stripped == "false":
        return False
    if stripped == "null":
        return None
    if re.fullmatch(r"-?\d+", stripped):
        return int(stripped)
    return stripped


def render_rule(behaviour: Rule) -> str:
    """Render one rule to its documentation sentence."""
    template = TEMPLATES[behaviour.kind]
    fields = behaviour.as_dict()
    rendered: dict[str, str] = {}
    for key, value in fields.items():
        if key in ("value", "attr_value"):
            rendered[key] = _encode_value(value)
        elif key == "values":
            rendered[key] = ", ".join(f"'{item}'" for item in value)  # type: ignore[union-attr]
        else:
            rendered[key] = str(value)
    return template.format(**rendered)


def parse_rule(sentence: str) -> Rule | None:
    """Parse one documentation sentence back into a rule.

    Returns ``None`` for sentences that are not behaviour statements
    (narrative text, headings), which the caller skips.
    """
    text = " ".join(sentence.split())
    for kind, pattern in _COMPILED:
        match = pattern.match(text)
        if match is None:
            continue
        fields: dict[str, object] = {}
        for key, value in match.groupdict().items():
            if key in ("value", "attr_value"):
                fields[key] = _decode_value(value)
            elif key == "values":
                fields[key] = tuple(
                    item.strip().strip("'") for item in value.split(",")
                )
            elif key in ("lo", "hi"):
                fields[key] = int(value)
            else:
                fields[key] = value
        return rule(kind, **fields)
    return None
